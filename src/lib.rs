//! # gsql
//!
//! A SQL engine with first-class reachability and shortest-path queries —
//! a from-scratch Rust reproduction of *Extending SQL for Computing
//! Shortest Paths* (Dean De Leo & Peter Boncz, GRADES'17, the graph-data
//! workshop of SIGMOD/PODS 2017).
//!
//! ```sql
//! SELECT p1.firstName, p2.firstName, CHEAPEST SUM(f: weight) AS (cost, path)
//! FROM persons p1, persons p2
//! WHERE p1.id = ? AND p2.id = ?
//!   AND p1.id REACHES p2.id OVER friends f EDGE (src, dst)
//! ```
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`Database`] — the shared engine entry point (from `gsql-core`);
//! * [`Session`] — per-connection state: `SET`/`SHOW` settings, prepared
//!   statements with a version-invalidated plan cache, `EXPLAIN ANALYZE`;
//! * [`storage`] — columnar tables, values, the catalog;
//! * [`parser`] — the SQL front-end with the paper's grammar extensions;
//! * [`graph`] — CSR, BFS, Dijkstra + radix queue;
//! * [`datagen`] — the LDBC-SNB-like dataset generator.
//!
//! ## Quickstart
//!
//! ```
//! use gsql::{Database, Value};
//!
//! let db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL);
//!      INSERT INTO friends VALUES (1, 2), (2, 3), (3, 4), (1, 4);",
//! )
//! .unwrap();
//!
//! let hops = db
//!     .query_with_params(
//!         "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
//!         &[Value::Int(1), Value::Int(3)],
//!     )
//!     .unwrap();
//! assert_eq!(hops.row(0)[0], Value::Int(2));
//! ```

pub use gsql_core::{
    Database, Deadline, Error, ExecContext, ExecStats, GraphIndexRegistry, LogicalPlan,
    PlanCacheStats, PreparedStatement, QueryResult, Result, Session, SessionSettings,
    SharedPlanCache,
};
pub use gsql_storage::{Column, DataType, Date, PathValue, Schema, Table, Value};

/// The columnar storage substrate.
pub use gsql_storage as storage;

/// The SQL front-end.
pub use gsql_parser as parser;

/// The graph runtime (CSR, BFS, Dijkstra with radix queue).
pub use gsql_graph as graph;

/// The query engine internals (binder, plans, executor, baselines).
pub use gsql_core as engine;

/// Synthetic dataset generators (LDBC-SNB-like social network, road grids).
pub use gsql_datagen as datagen;
