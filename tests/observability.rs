//! Engine-wide observability, end to end: the metrics registry counts
//! queries/pipelines/traversals monotonically at several thread counts,
//! `SET trace` yields a well-formed span tree (through the session API and
//! over HTTP), the slow-query log triggers and evicts, `/metrics` renders
//! valid Prometheus exposition text, and tracing never perturbs results
//! (thread-equivalence with the collector on).
//!
//! Assertions are tolerant of the CI environment matrix: `GSQL_PATH_INDEX`
//! / `GSQL_PATH_INDEX_KIND` change which traversal kinds fire (so kind
//! labels are asserted only when present), and `GSQL_TRACE=verbose` adds
//! per-operator spans (so span counts are lower bounds, never exact).

use gsql::{Database, Value};
use gsql_obs::{QueryOutcome, QueryVerb, SlowLog, SlowQueryRecord, ACCEL_KINDS};
use gsql_server::json::{self, Json};
use gsql_server::{client, serve, ServerConfig};

/// A deterministic digraph plus a `people` table for graph-join shapes
/// (same generator family as the path-index suite, smaller).
fn graph_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE people (id INTEGER NOT NULL, grp INTEGER NOT NULL)").unwrap();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut edges = String::new();
    for i in 0..400 {
        let s = next() % 80;
        let d = next() % 80;
        let w = next() % 16 + 1;
        if i > 0 {
            edges.push_str(", ");
        }
        edges.push_str(&format!("({s}, {d}, {w})"));
    }
    db.execute(&format!("INSERT INTO e VALUES {edges}")).unwrap();
    let mut people = String::new();
    for id in 0..80 {
        if id > 0 {
            people.push_str(", ");
        }
        people.push_str(&format!("({id}, {})", id % 8));
    }
    db.execute(&format!("INSERT INTO people VALUES {people}")).unwrap();
    db
}

/// Sum of traversal counters across every accelerator kind.
fn traversals_all_kinds(m: &gsql_obs::EngineMetrics) -> u64 {
    ACCEL_KINDS.iter().map(|k| m.traversals_total(k)).sum()
}

// ---------------------------------------------------------------------------
// 1. Metrics monotonicity
// ---------------------------------------------------------------------------

/// Every statement increments exactly one `(verb, outcome)` counter, the
/// pipeline/morsel/traversal counters grow with matching work, and the
/// plan cache counters follow hits — at one worker and at four.
#[test]
fn metrics_count_queries_pipelines_and_traversals() {
    for threads in ["1", "4"] {
        let db = graph_db();
        let m = db.metrics();
        let session = db.session();
        session.set("threads", threads).unwrap();
        session.set("pipeline", "on").unwrap();

        let base_ok = m.queries_total(QueryVerb::Select, QueryOutcome::Ok);
        let base_err = m.queries_total(QueryVerb::Select, QueryOutcome::Error);
        let base_pipelines = m.pipelines_total();
        let base_morsels = m.morsels_total();
        let base_latency = m.query_latency().snapshot().count;

        for _ in 0..5 {
            session.query("SELECT id FROM people WHERE grp = 3").unwrap();
        }
        assert_eq!(
            m.queries_total(QueryVerb::Select, QueryOutcome::Ok),
            base_ok + 5,
            "threads {threads}: one ok-select per statement"
        );
        assert!(
            m.pipelines_total() >= base_pipelines + 5,
            "threads {threads}: each pipelined query records >= 1 pipeline \
             ({} -> {})",
            base_pipelines,
            m.pipelines_total()
        );
        assert!(m.morsels_total() > base_morsels, "threads {threads}: morsel throughput must grow");
        assert!(
            m.query_latency().snapshot().count >= base_latency + 5,
            "threads {threads}: every statement observes end-to-end latency"
        );

        // A bind error is an error-outcome select, not an ok one.
        assert!(session.query("SELECT no_such_column FROM people").is_err());
        assert_eq!(m.queries_total(QueryVerb::Select, QueryOutcome::Error), base_err + 1);
        assert_eq!(m.queries_total(QueryVerb::Select, QueryOutcome::Ok), base_ok + 5);

        // DML counts under its own verb.
        let base_ins = m.queries_total(QueryVerb::Insert, QueryOutcome::Ok);
        session.execute("INSERT INTO people VALUES (900, 0)").unwrap();
        assert_eq!(m.queries_total(QueryVerb::Insert, QueryOutcome::Ok), base_ins + 1);

        // Re-running an identical statement is a plan-cache hit, synced to
        // the registry counters.
        let base_hits = m.plan_cache_hits.get();
        session.query("SELECT count(*) FROM people").unwrap();
        session.query("SELECT count(*) FROM people").unwrap();
        assert!(
            m.plan_cache_hits.get() > base_hits,
            "threads {threads}: repeated SQL must hit the plan cache"
        );

        // A shortest-path query records at least one traversal under some
        // accelerator kind (which kind depends on the index environment).
        let base_trav = traversals_all_kinds(m);
        session
            .query_with_params(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                &[Value::Int(1), Value::Int(40)],
            )
            .unwrap();
        assert!(
            traversals_all_kinds(m) > base_trav,
            "threads {threads}: traversal counters must grow"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Trace span tree
// ---------------------------------------------------------------------------

/// Find the first span named `name` anywhere in a trace forest.
fn find_span<'j>(spans: &'j [Json], name: &str) -> Option<&'j Json> {
    for span in spans {
        if span.get("name").and_then(Json::as_str) == Some(name) {
            return Some(span);
        }
        if let Some(children) = span.get("children").and_then(Json::as_array) {
            if let Some(hit) = find_span(children, name) {
                return Some(hit);
            }
        }
    }
    None
}

fn attr<'j>(span: &'j Json, key: &str) -> Option<&'j Json> {
    span.get("attrs").and_then(|a| a.get(key))
}

/// `SET trace = on` records a statement -> bind/optimize/execute ->
/// pipeline span tree for a fused pipeline, and a traversal span with
/// pair/settled counts for a batched graph join.
#[test]
fn trace_records_span_tree_for_pipeline_and_graph_join() {
    let db = graph_db();
    db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    let session = db.session();
    session.set("trace", "on").unwrap();
    session.set("pipeline", "on").unwrap();

    // Fused pipeline shape.
    session.query("SELECT id FROM people WHERE grp = 2").unwrap();
    let doc = json::parse(&session.last_trace_json().expect("trace ring populated")).unwrap();
    let roots = doc.as_array().expect("trace JSON is a span array");
    let statement = find_span(roots, "statement").expect("statement root span");
    assert_eq!(attr(statement, "verb").and_then(Json::as_str), Some("select"));
    assert_eq!(attr(statement, "outcome").and_then(Json::as_str), Some("ok"));
    assert!(
        attr(statement, "parse_us").and_then(Json::as_i64).is_some(),
        "statement span carries parse time: {doc:?}"
    );
    assert!(find_span(roots, "execute").is_some(), "execute child span: {doc:?}");
    let pipeline = find_span(roots, "pipeline").expect("pipeline span under execute");
    assert!(
        attr(pipeline, "morsels").and_then(Json::as_i64).unwrap_or(0) >= 1,
        "pipeline span counts morsels: {pipeline:?}"
    );
    assert!(
        attr(pipeline, "queue_wait_us").and_then(Json::as_i64).is_some(),
        "pipeline span carries queue wait: {pipeline:?}"
    );

    // A fresh statement replaces the ring head; bind/optimize only appear
    // on a cache miss, so check them on the first execution of a new SQL.
    let batch = "SELECT p1.id, p2.id, CHEAPEST SUM(f: f.w) AS cost \
                 FROM people p1, people p2 \
                 WHERE p1.grp = 1 AND p2.grp = 4 AND p1.id REACHES p2.id OVER e f EDGE (s, d)";
    session.query(batch).unwrap();
    let doc = json::parse(&session.last_trace_json().unwrap()).unwrap();
    let roots = doc.as_array().unwrap();
    assert!(find_span(roots, "bind").is_some(), "bind span on first plan: {doc:?}");
    assert!(find_span(roots, "optimize").is_some(), "optimize span on first plan: {doc:?}");
    let traversal = find_span(roots, "traversal").expect("traversal span for the graph join");
    assert!(
        attr(traversal, "pairs").and_then(Json::as_i64).unwrap_or(0) >= 1,
        "traversal span counts pairs: {traversal:?}"
    );
    assert!(
        attr(traversal, "settled").and_then(Json::as_i64).is_some(),
        "traversal span counts settled vertices: {traversal:?}"
    );
    // The kind label is present exactly when an accelerator ran (absent
    // under GSQL_PATH_INDEX=off); when present it must be a known kind.
    if let Some(kind) = attr(traversal, "kind").and_then(Json::as_str) {
        assert!(ACCEL_KINDS.contains(&kind), "unknown traversal kind {kind:?}");
    }

    // The repeated statement is served from the plan cache and says so.
    session.query(batch).unwrap();
    let doc = json::parse(&session.last_trace_json().unwrap()).unwrap();
    let statement = find_span(doc.as_array().unwrap(), "statement").unwrap();
    assert_eq!(attr(statement, "plan_cache").and_then(Json::as_str), Some("hit"));

    // The ring retains history, newest last.
    let history = session.trace_history();
    assert!(history.len() >= 3, "ring keeps the battery: {}", history.len());
    assert_eq!(history.last(), session.last_trace_json().as_ref());

    // Satellite: EXPLAIN ANALYZE pipeline summaries report queue wait.
    let t = session.query("EXPLAIN ANALYZE SELECT id FROM people WHERE grp = 5").unwrap();
    let text: Vec<String> = t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect();
    let full = text.join("\n");
    let pipeline_line = text
        .iter()
        .find(|l| l.starts_with("Pipeline "))
        .unwrap_or_else(|| panic!("no pipeline summary in:\n{full}"));
    assert!(pipeline_line.contains("queue-wait avg="), "line was: {pipeline_line}");
    assert!(pipeline_line.contains("max="), "line was: {pipeline_line}");
}

// ---------------------------------------------------------------------------
// 3. Slow-query log
// ---------------------------------------------------------------------------

/// Statements over the `slow_query_ms` threshold land in the ring with
/// hash, verb, and span summary; fast statements do not.
#[test]
fn slow_query_log_triggers_on_threshold() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INTEGER NOT NULL)").unwrap();
    let rows: Vec<String> = (0..300).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", "))).unwrap();

    let session = db.session();
    session.set("trace", "on").unwrap();

    // Fast statement under a generous threshold: nothing logged.
    session.set("slow_query_ms", "10000").unwrap();
    session.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(db.slow_log().len(), 0, "fast statements stay out of the log");

    // A 90k-row cross-join aggregate comfortably exceeds 1 ms.
    session.set("slow_query_ms", "1").unwrap();
    let slow_sql = "SELECT count(*) FROM t a, t b WHERE a.x <= b.x";
    session.query(slow_sql).unwrap();
    assert!(!db.slow_log().is_empty(), "slow statement must be logged");

    let entry = db.slow_log().entries().pop().unwrap();
    assert_eq!(entry.verb, "select");
    assert_eq!(entry.outcome, "ok");
    assert!(entry.elapsed_us >= 1000, "elapsed {}us under the 1ms threshold", entry.elapsed_us);
    assert!(!entry.sql_hash.is_empty(), "sql hash recorded");
    assert!(!entry.plan_fingerprint.is_empty(), "plan fingerprint recorded");
    assert!(
        entry.settings.iter().any(|(n, v)| n == "slow_query_ms" && v == "1"),
        "settings snapshot: {:?}",
        entry.settings
    );
    assert!(
        entry.spans.iter().any(|(n, dur)| n == "statement" && *dur > 0),
        "span summary from the trace: {:?}",
        entry.spans
    );

    // The surface renders as one JSON document.
    let doc = json::parse(&db.slow_log().render_json()).unwrap();
    assert!(doc.get("count").and_then(Json::as_i64).unwrap_or(0) >= 1);
    let first = doc.get("entries").and_then(Json::as_array).unwrap().first().unwrap();
    assert!(first.get("sql_hash").and_then(Json::as_str).is_some());
    assert!(first.get("elapsed_us").and_then(Json::as_i64).is_some());
}

/// The ring is bounded: pushing past capacity evicts oldest-first.
#[test]
fn slow_query_ring_evicts_oldest() {
    let log = SlowLog::with_stderr(2, false);
    for n in 1..=3u64 {
        log.push(SlowQueryRecord {
            unix_us: n,
            sql_hash: format!("{n:x}"),
            plan_fingerprint: String::new(),
            verb: "select".to_string(),
            outcome: "ok".to_string(),
            elapsed_us: n * 500,
            settings: Vec::new(),
            spans: Vec::new(),
        });
    }
    assert_eq!(log.len(), 2);
    let kept: Vec<u64> = log.entries().iter().map(|r| r.unix_us).collect();
    assert_eq!(kept, vec![2, 3], "oldest record evicted first");
}

// ---------------------------------------------------------------------------
// 4. /metrics exposition over HTTP
// ---------------------------------------------------------------------------

/// One exposition sample: `name 3` or `name{labels} 3`.
fn parse_sample(line: &str) -> Option<(String, f64)> {
    let (name_part, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let name = match name_part.split_once('{') {
        Some((n, labels)) => {
            if !labels.ends_with('}') {
                return None;
            }
            n
        }
        None => name_part,
    };
    let well_formed = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    well_formed.then(|| (name.to_string(), value))
}

/// Serve a database, drive a known request mix, and check the exposition:
/// every line parses, the engine/admission/plan-cache families are
/// present, and the per-endpoint latency histogram counts exactly the
/// requests each endpoint answered.
#[test]
fn metrics_endpoint_renders_valid_exposition() {
    let db = std::sync::Arc::new(graph_db());
    let server = serve(
        std::sync::Arc::clone(&db),
        ServerConfig { workers: 2, queue_depth: 32, ..ServerConfig::default() },
    )
    .expect("server failed to start");
    let addr = server.addr();

    let body = Json::Object(vec![(
        "sql".to_string(),
        Json::from("SELECT count(*) AS n FROM people WHERE grp = 1"),
    )])
    .encode();
    for _ in 0..2 {
        let resp = client::post(addr, "/query", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert_eq!(client::get(addr, "/health").unwrap().status, 200);
    assert_eq!(client::get(addr, "/stats").unwrap().status, 200);

    let resp = client::get(addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let exposition = resp.body;
    server.shutdown();

    // Every non-comment line is a well-formed sample.
    let mut samples: Vec<(String, f64)> = Vec::new();
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample =
            parse_sample(line).unwrap_or_else(|| panic!("malformed exposition line: {line}"));
        samples.push(sample);
    }
    assert!(samples.len() > 20, "expected a populated exposition, got {}", samples.len());

    // Engine families: queries, plan cache, pipelines, traversals.
    for family in [
        "# TYPE gsql_queries_total counter",
        "# TYPE gsql_query_duration_microseconds histogram",
        "# TYPE gsql_plan_cache_hits_total counter",
        "# TYPE gsql_plan_cache_misses_total counter",
        "# TYPE gsql_plan_cache_entries gauge",
        "# TYPE gsql_pipelines_total counter",
        "# TYPE gsql_pipeline_morsels_total counter",
        "# TYPE gsql_traversals_total counter",
        "# TYPE gsql_traversal_settled_vertices histogram",
        // Serving tier: admission control and per-endpoint latency.
        "# TYPE gsql_http_admitted_total counter",
        "# TYPE gsql_http_responded_total counter",
        "# TYPE gsql_http_refused_total counter",
        "# TYPE gsql_http_queue_depth gauge",
        "# TYPE gsql_http_queue_wait_microseconds histogram",
        "# TYPE gsql_http_request_duration_microseconds histogram",
    ] {
        assert!(exposition.contains(family), "missing exposition family: {family}");
    }

    // The two /query statements are ok-selects.
    let ok_selects = exposition
        .lines()
        .find(|l| l.starts_with("gsql_queries_total{verb=\"select\",outcome=\"ok\"}"))
        .and_then(parse_sample)
        .map(|(_, v)| v)
        .unwrap_or(0.0);
    assert!(ok_selects >= 2.0, "ok-select counter saw the /query statements: {ok_selects}");

    // Per-endpoint latency counts match the request mix exactly: the
    // /metrics response renders before settling itself, so its own
    // endpoint reads zero.
    for (endpoint, want) in [("query", 2.0), ("health", 1.0), ("stats", 1.0), ("metrics", 0.0)] {
        let line_start =
            format!("gsql_http_request_duration_microseconds_count{{endpoint=\"{endpoint}\"}}");
        let got = exposition
            .lines()
            .find(|l| l.starts_with(&line_start))
            .and_then(parse_sample)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no latency count for endpoint {endpoint}"));
        assert_eq!(got, want, "endpoint {endpoint} latency count");
    }
}

/// `"trace": true` on a /query request returns the span tree inline.
#[test]
fn http_query_returns_inline_trace_on_request() {
    let db = std::sync::Arc::new(graph_db());
    let server =
        serve(std::sync::Arc::clone(&db), ServerConfig::default()).expect("server failed to start");
    let addr = server.addr();

    let body = Json::Object(vec![
        ("sql".to_string(), Json::from("SELECT count(*) FROM people")),
        ("trace".to_string(), Json::Bool(true)),
    ])
    .encode();
    let resp = client::post(addr, "/query", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = json::parse(&resp.body).unwrap();
    let trace = doc.get("trace").and_then(Json::as_array).expect("inline trace span array");
    let statement = find_span(trace, "statement").expect("statement span over HTTP");
    assert_eq!(attr(statement, "outcome").and_then(Json::as_str), Some("ok"));
    assert!(find_span(trace, "execute").is_some());

    // Without the flag the response has no trace member.
    let plain =
        Json::Object(vec![("sql".to_string(), Json::from("SELECT count(*) FROM people"))]).encode();
    let resp = client::post(addr, "/query", &plain).unwrap();
    assert_eq!(resp.status, 200);
    assert!(json::parse(&resp.body).unwrap().get("trace").is_none());
    server.shutdown();
}

// ---------------------------------------------------------------------------
// 5. Thread-equivalence with tracing on
// ---------------------------------------------------------------------------

/// Render a result table to a canonical string.
fn render(t: &gsql::Table) -> String {
    t.rows().map(|r| format!("{r:?}")).collect::<Vec<_>>().join("\n")
}

/// Tracing must be observation-only: with the collector on, results are
/// byte-identical across worker counts and identical to the untraced run.
#[test]
fn tracing_preserves_thread_equivalence() {
    let db = graph_db();
    db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    let battery = [
        "SELECT id, grp FROM people WHERE grp < 3 ORDER BY id".to_string(),
        "SELECT grp, count(*) AS n FROM people GROUP BY grp ORDER BY grp".to_string(),
        "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE 1 REACHES 40 OVER e f EDGE (s, d)".to_string(),
        "SELECT p1.id, p2.id, CHEAPEST SUM(1) AS hops FROM people p1, people p2 \
         WHERE p1.grp = 0 AND p2.grp = 5 AND p1.id REACHES p2.id OVER e EDGE (s, d)"
            .to_string(),
    ];

    let run = |threads: &str, trace: &str| -> Vec<String> {
        let session = db.session();
        session.set("threads", threads).unwrap();
        session.set("pipeline", "on").unwrap();
        session.set("trace", trace).unwrap();
        battery.iter().map(|sql| render(&session.query(sql).unwrap())).collect()
    };

    let traced_1 = run("1", "on");
    let traced_4 = run("4", "on");
    let verbose_4 = run("4", "verbose");
    let untraced_4 = run("4", "off");
    for (i, sql) in battery.iter().enumerate() {
        assert_eq!(traced_1[i], traced_4[i], "threads diverged under trace: {sql}");
        assert_eq!(traced_4[i], untraced_4[i], "tracing changed results: {sql}");
        assert_eq!(traced_4[i], verbose_4[i], "verbose tracing changed results: {sql}");
    }
}
