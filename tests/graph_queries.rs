//! Graph-query semantics at the public SQL surface: directionality,
//! algorithm selection, graph indices, snapshots, and edge cases.

use gsql::{Database, Value};

fn chain_db() -> Database {
    // 1 -> 2 -> 3 -> 4 (directed chain) plus a costly shortcut 1 -> 4.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL);
         INSERT INTO e VALUES (1, 2, 1), (2, 3, 1), (3, 4, 1), (1, 4, 10);",
    )
    .unwrap();
    db
}

fn q13(db: &Database, s: i64, d: i64) -> Option<i64> {
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(s), Value::Int(d)],
        )
        .unwrap();
    if t.is_empty() {
        None
    } else {
        t.row(0)[0].as_int()
    }
}

#[test]
fn edges_are_directed() {
    let db = chain_db();
    assert_eq!(q13(&db, 1, 4), Some(1)); // the shortcut counts 1 hop
    assert_eq!(q13(&db, 4, 1), None); // nothing points back
}

#[test]
fn reversing_edge_roles_reverses_the_graph() {
    let db = chain_db();
    // EDGE (d, s) flips every edge.
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (d, s)",
            &[Value::Int(4), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(1));
}

#[test]
fn weighted_prefers_cheap_detour_unweighted_prefers_shortcut() {
    let db = chain_db();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: 1) AS hops, CHEAPEST SUM(x: w) AS cost
             WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(1)); // shortcut
    assert_eq!(t.row(0)[1], Value::Int(3)); // 1+1+1 detour
}

#[test]
fn constant_weight_scales_hop_count() {
    let db = chain_db();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: 7) AS c WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(14)); // 2 hops * 7
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: 2.5) AS c WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Double(5.0));
}

#[test]
fn expression_weights_are_evaluated_per_edge() {
    let db = chain_db();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: w * w) AS c WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    // Detour: 1+1+1 = 3; shortcut: 100. Detour wins.
    assert_eq!(t.row(0)[0], Value::Int(3));
}

#[test]
fn float_weights_use_float_costs() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER, d INTEGER, w DOUBLE);
         INSERT INTO e VALUES (1, 2, 0.25), (2, 3, 0.5);",
    )
    .unwrap();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: w) AS c WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Double(0.75));
}

#[test]
fn zero_and_negative_weights_rejected_at_runtime() {
    let db = chain_db();
    for bad in ["0", "-1", "w - 1"] {
        let err = db
            .query_with_params(
                &format!("SELECT CHEAPEST SUM(x: {bad}) WHERE ? REACHES ? OVER e x EDGE (s, d)"),
                &[Value::Int(1), Value::Int(2)],
            )
            .unwrap_err();
        assert!(err.to_string().contains("strictly greater than 0"), "weight {bad}: {err}");
    }
}

#[test]
fn null_weight_rejected() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER, d INTEGER, w INTEGER);
         INSERT INTO e VALUES (1, 2, 1), (2, 3, NULL);",
    )
    .unwrap();
    let err = db
        .query_with_params(
            "SELECT CHEAPEST SUM(x: w) WHERE ? REACHES ? OVER e x EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap_err();
    assert!(err.to_string().contains("NULL"), "{err}");
}

#[test]
fn ties_return_exactly_one_path() {
    // Two equally cheap paths 1->2->4 and 1->3->4: the function "always
    // picks and returns one of the suitable alternatives".
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER, d INTEGER);
         INSERT INTO e VALUES (1, 2), (1, 3), (2, 4), (3, 4);",
    )
    .unwrap();
    let t = db
        .query_with_params(
            "SELECT T.cost, R.s, R.d FROM (
               SELECT CHEAPEST SUM(x: 1) AS (cost, path)
               WHERE ? REACHES ? OVER e x EDGE (s, d)
             ) T, UNNEST(T.path) AS R ORDER BY R.s",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 2); // one path of two edges, not both paths
    assert_eq!(t.row(0)[0], Value::Int(2));
    // The two edges must chain 1 -> m -> 4 for one middle vertex m.
    let mid = t.row(0)[2].as_int().unwrap();
    assert!(mid == 2 || mid == 3);
    assert_eq!(t.row(1)[1].as_int().unwrap(), mid);
}

#[test]
fn graph_snapshot_isolated_from_later_dml() {
    // A query's path values reference the edge snapshot taken at execution
    // time; mutating the table afterwards must not change materialized
    // results (MonetDB-style full materialization).
    let db = chain_db();
    let before = db
        .query_with_params(
            "SELECT T.cost, R.s, R.d FROM (
               SELECT CHEAPEST SUM(x: w) AS (cost, path)
               WHERE ? REACHES ? OVER e x EDGE (s, d)
             ) T, UNNEST(T.path) AS R",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    db.execute("DELETE FROM e").unwrap();
    // The previously returned table still holds the original rows.
    assert_eq!(before.row_count(), 3);
    assert_eq!(before.row(0)[1], Value::Int(1));
    // And a fresh query sees the empty graph.
    assert_eq!(q13(&db, 1, 4), None);
}

#[test]
fn graph_index_matches_inline_construction() {
    let db = chain_db();
    let without: Vec<Option<i64>> = (1..=4).map(|d| q13(&db, 1, d)).collect();
    db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();
    let with: Vec<Option<i64>> = (1..=4).map(|d| q13(&db, 1, d)).collect();
    assert_eq!(without, with);
    // The index only matches its exact (table, src, dst) configuration;
    // the reversed query must still be correct (built inline).
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (d, s)",
            &[Value::Int(2), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(1));
}

#[test]
fn indexed_bidirectional_path_equals_unindexed_results() {
    // With a graph index, single-pair unweighted queries take the
    // bidirectional-BFS fast path; every answer (cost, path validity,
    // reachability) must be identical to the unindexed run.
    let db = Database::new();
    let mut script = String::from("CREATE TABLE e (s INTEGER, d INTEGER); INSERT INTO e VALUES ");
    // A lattice with some extra chords.
    for v in 0..40 {
        script.push_str(&format!("({v}, {}), ", v + 1));
        if v % 7 == 0 {
            script.push_str(&format!("({v}, {}), ", (v + 13) % 41));
        }
    }
    script.push_str("(40, 0);");
    db.execute_script(&script).unwrap();

    let q = "SELECT T.c, R.s, R.d FROM (
               SELECT CHEAPEST SUM(x: 1) AS (c, p)
               WHERE ? REACHES ? OVER e x EDGE (s, d)
             ) T, UNNEST(T.p) AS R";
    let pairs: Vec<(i64, i64)> = (0..25).map(|i| ((i * 3) % 41, (i * 17) % 41)).collect();
    let mut before = Vec::new();
    for &(s, d) in &pairs {
        let t = db.query_with_params(q, &[Value::Int(s), Value::Int(d)]).unwrap();
        // Record (rows, cost, endpoints chain validity).
        let cost = if t.is_empty() { None } else { t.row(0)[0].as_int() };
        before.push((t.row_count(), cost));
        // Path chains correctly.
        let mut at = s;
        for row in t.rows() {
            assert_eq!(row[1].as_int(), Some(at));
            at = row[2].as_int().unwrap();
        }
    }
    db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let t = db.query_with_params(q, &[Value::Int(s), Value::Int(d)]).unwrap();
        let cost = if t.is_empty() { None } else { t.row(0)[0].as_int() };
        assert_eq!((t.row_count(), cost), before[i], "pair ({s},{d})");
        let mut at = s;
        for row in t.rows() {
            assert_eq!(row[1].as_int(), Some(at), "pair ({s},{d})");
            at = row[2].as_int().unwrap();
        }
        if !t.is_empty() {
            assert_eq!(at, d, "pair ({s},{d})");
        }
    }
}

#[test]
fn empty_edge_table_yields_no_vertices() {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER, d INTEGER)").unwrap();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(1), Value::Int(1)],
        )
        .unwrap();
    // Even x = y needs x to be a vertex; the empty graph has none.
    assert_eq!(t.row_count(), 0);
}

#[test]
fn null_endpoints_in_edges_are_ignored() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER, d INTEGER);
         INSERT INTO e VALUES (1, 2), (NULL, 3), (2, NULL), (2, 3);",
    )
    .unwrap();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2)); // via the (2,3) edge
}

#[test]
fn null_source_or_dest_filtered_out() {
    let db = chain_db();
    db.execute("CREATE TABLE probes (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO probes VALUES (1, 3), (NULL, 3), (1, NULL)").unwrap();
    let t = db
        .query(
            "SELECT probes.a, probes.b, CHEAPEST SUM(1) AS c FROM probes
             WHERE probes.a REACHES probes.b OVER e EDGE (s, d)",
        )
        .unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::Int(1));
}

#[test]
fn big_batch_grouping_is_consistent() {
    // Many pairs sharing few sources: batch answers must equal singles.
    let db = Database::new();
    let mut script = String::from("CREATE TABLE e (s INTEGER, d INTEGER); INSERT INTO e VALUES ");
    // A binary-ish tree over 63 nodes.
    for v in 1..32 {
        script.push_str(&format!("({v}, {}), ({v}, {}), ", 2 * v, 2 * v + 1));
    }
    script.push_str("(63, 1);");
    db.execute_script(&script).unwrap();

    let mut values = String::new();
    for i in 0..40 {
        if i > 0 {
            values.push_str(", ");
        }
        values.push_str(&format!("({}, {})", 1 + i % 3, 1 + (i * 7) % 63));
    }
    let batch = db
        .query(&format!(
            "WITH pairs (a, b) AS (VALUES {values})
             SELECT pairs.a, pairs.b, CHEAPEST SUM(1) AS c FROM pairs
             WHERE pairs.a REACHES pairs.b OVER e EDGE (s, d)"
        ))
        .unwrap();
    for row in batch.rows() {
        let (a, b, c) = (row[0].as_int().unwrap(), row[1].as_int().unwrap(), row[2].clone());
        let single = db
            .query_with_params(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                &[Value::Int(a), Value::Int(b)],
            )
            .unwrap();
        assert_eq!(single.row(0)[0], c, "pair ({a},{b})");
    }
}
