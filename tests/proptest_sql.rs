//! Property-based tests at the SQL surface: the whole pipeline
//! (parse → bind → optimize → graph runtime → materialize) against
//! executable models, with proptest shrinking pointing at minimal
//! counterexamples.

use gsql::{Database, Value};
use proptest::prelude::*;

/// Random directed graph as an edge list over vertices 1..=n.
fn graph_strategy() -> impl Strategy<Value = (i64, Vec<(i64, i64, i64)>)> {
    (2i64..14).prop_flat_map(|n| {
        let edge = (1..=n, 1..=n, 1i64..9).prop_map(|(s, d, w)| (s, d, w));
        (Just(n), prop::collection::vec(edge, 1..40))
    })
}

fn build_db(edges: &[(i64, i64, i64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER, d INTEGER, w INTEGER)").unwrap();
    let mut sql = String::from("INSERT INTO e VALUES ");
    for (i, (s, d, w)) in edges.iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(&format!("({s}, {d}, {w})"));
    }
    db.execute(&sql).unwrap();
    db
}

/// Reference weighted distances via Bellman-Ford over the edge list;
/// respects the vertex-membership rule (endpoints must appear in an edge).
fn model_distance(
    n: i64,
    edges: &[(i64, i64, i64)],
    src: i64,
    dst: i64,
    unit: bool,
) -> Option<i64> {
    let is_vertex =
        |v: i64| edges.iter().any(|&(s, d, _)| s == v || d == v);
    if !is_vertex(src) || !is_vertex(dst) {
        return None;
    }
    let mut dist = vec![None::<i64>; (n + 1) as usize];
    dist[src as usize] = Some(0);
    for _ in 0..=n {
        for &(s, d, w) in edges {
            let w = if unit { 1 } else { w };
            if let Some(ds) = dist[s as usize] {
                if dist[d as usize].is_none_or(|old| ds + w < old) {
                    dist[d as usize] = Some(ds + w);
                }
            }
        }
    }
    dist[dst as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `CHEAPEST SUM(1)` through SQL equals BFS distances of the model.
    #[test]
    fn sql_unweighted_distance_matches_model((n, edges) in graph_strategy()) {
        let db = build_db(&edges);
        let session = db.session();
        let stmt = session
            .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)")
            .unwrap();
        for src in 1..=n.min(5) {
            for dst in 1..=n.min(5) {
                let t = stmt
                    .query(&session, &[Value::Int(src), Value::Int(dst)])
                    .unwrap();
                let got = if t.is_empty() { None } else { t.row(0)[0].as_int() };
                let want = model_distance(n, &edges, src, dst, true);
                prop_assert_eq!(got, want, "pair ({}, {})", src, dst);
            }
        }
    }

    /// Weighted `CHEAPEST SUM(e: w)` equals Bellman-Ford.
    #[test]
    fn sql_weighted_distance_matches_model((n, edges) in graph_strategy()) {
        let db = build_db(&edges);
        let session = db.session();
        let stmt = session
            .prepare("SELECT CHEAPEST SUM(x: w) WHERE ? REACHES ? OVER e x EDGE (s, d)")
            .unwrap();
        for src in 1..=n.min(4) {
            for dst in 1..=n.min(4) {
                let t = stmt
                    .query(&session, &[Value::Int(src), Value::Int(dst)])
                    .unwrap();
                let got = if t.is_empty() { None } else { t.row(0)[0].as_int() };
                let want = model_distance(n, &edges, src, dst, false);
                prop_assert_eq!(got, want, "pair ({}, {})", src, dst);
            }
        }
    }

    /// Batched pairs through the VALUES-CTE shape agree with single-pair
    /// queries, and unreachable pairs are absent from the batch result.
    #[test]
    fn sql_batched_equals_singles((n, edges) in graph_strategy(),
                                  pair_seed in prop::collection::vec((1i64..14, 1i64..14), 1..10)) {
        let db = build_db(&edges);
        let pairs: Vec<(i64, i64)> = pair_seed
            .into_iter()
            .map(|(a, b)| (1 + (a - 1) % n, 1 + (b - 1) % n))
            .collect();
        let mut values = String::new();
        for (i, (a, b)) in pairs.iter().enumerate() {
            if i > 0 {
                values.push_str(", ");
            }
            values.push_str(&format!("({a}, {b})"));
        }
        let batch = db
            .query(&format!(
                "WITH p (a, b) AS (VALUES {values})
                 SELECT p.a, p.b, CHEAPEST SUM(1) AS c FROM p
                 WHERE p.a REACHES p.b OVER e EDGE (s, d)"
            ))
            .unwrap();
        // Build the batch answer map.
        let mut got: std::collections::HashMap<(i64, i64), i64> = std::collections::HashMap::new();
        for row in batch.rows() {
            got.insert(
                (row[0].as_int().unwrap(), row[1].as_int().unwrap()),
                row[2].as_int().unwrap(),
            );
        }
        for &(a, b) in &pairs {
            let want = model_distance(n, &edges, a, b, true);
            prop_assert_eq!(got.get(&(a, b)).copied(), want, "pair ({}, {})", a, b);
        }
    }

    /// Every path returned through SQL UNNEST chains source→dest and its
    /// weights sum to the reported cost.
    #[test]
    fn sql_unnested_paths_are_valid((n, edges) in graph_strategy()) {
        let db = build_db(&edges);
        let session = db.session();
        let stmt = session
            .prepare(
                "SELECT T.cost, R.s, R.d, R.w, R.ordinality FROM (
                   SELECT CHEAPEST SUM(x: w) AS (cost, path)
                   WHERE ? REACHES ? OVER e x EDGE (s, d)
                 ) T, UNNEST(T.path) WITH ORDINALITY AS R ORDER BY R.ordinality",
            )
            .unwrap();
        for src in 1..=n.min(4) {
            for dst in 1..=n.min(4) {
                if src == dst {
                    continue;
                }
                let t = stmt
                    .query(&session, &[Value::Int(src), Value::Int(dst)])
                    .unwrap();
                if t.is_empty() {
                    continue;
                }
                let cost = t.row(0)[0].as_int().unwrap();
                let mut at = src;
                let mut acc = 0i64;
                for (i, row) in t.rows().enumerate() {
                    prop_assert_eq!(row[4].as_int(), Some(i as i64 + 1), "ordinality");
                    prop_assert_eq!(row[1].as_int(), Some(at), "chain at hop {}", i);
                    at = row[2].as_int().unwrap();
                    acc += row[3].as_int().unwrap();
                }
                prop_assert_eq!(at, dst);
                prop_assert_eq!(acc, cost);
            }
        }
    }

    /// Reachability (no CHEAPEST SUM) selects exactly the model's pairs.
    #[test]
    fn sql_reachability_filter_matches_model((n, edges) in graph_strategy()) {
        let db = build_db(&edges);
        // All-pairs via graph join between two person lists.
        let mut values = String::new();
        for i in 1..=n {
            if i > 1 {
                values.push_str(", ");
            }
            values.push_str(&format!("({i})"));
        }
        let t = db
            .query(&format!(
                "WITH v (id) AS (VALUES {values})
                 SELECT a.id, b.id FROM v a, v b
                 WHERE a.id REACHES b.id OVER e EDGE (s, d)"
            ))
            .unwrap();
        let mut got: std::collections::HashSet<(i64, i64)> = std::collections::HashSet::new();
        for row in t.rows() {
            got.insert((row[0].as_int().unwrap(), row[1].as_int().unwrap()));
        }
        for a in 1..=n {
            for b in 1..=n {
                let want = model_distance(n, &edges, a, b, true).is_some();
                prop_assert_eq!(got.contains(&(a, b)), want, "pair ({}, {})", a, b);
            }
        }
    }
}
