//! Error-surface tests: every failure mode should produce a specific,
//! actionable message — parse errors with positions, bind errors naming the
//! offender, and the paper-mandated runtime exceptions.

use gsql::{Database, Error, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE persons (id INTEGER PRIMARY KEY, name VARCHAR);
         CREATE TABLE friends (src INTEGER, dst INTEGER, w DOUBLE, label VARCHAR);
         INSERT INTO persons VALUES (1, 'a'), (2, 'b');
         INSERT INTO friends VALUES (1, 2, 1.0, 'x');",
    )
    .unwrap();
    db
}

fn expect_err(db: &Database, sql: &str, needle: &str) {
    let err = db.execute(sql).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(needle), "sql {sql:?}\n  error: {msg}\n  expected to contain {needle:?}");
}

#[test]
fn parse_errors_have_positions() {
    let db = db();
    match db.execute("SELECT *\nFROM").unwrap_err() {
        Error::Parse(e) => {
            assert_eq!(e.line, 2);
            assert!(e.to_string().contains("parse error at 2:"));
        }
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn unknown_objects() {
    let db = db();
    expect_err(&db, "SELECT * FROM nope", "does not exist");
    expect_err(&db, "SELECT nope FROM persons", "no column 'nope'");
    expect_err(&db, "SELECT p.id FROM persons q", "no column 'p.id'");
    expect_err(&db, "DROP TABLE nope", "does not exist");
    expect_err(&db, "DESCRIBE nope", "does not exist");
    expect_err(&db, "SELECT frob(1)", "unknown function");
    expect_err(&db, "DROP GRAPH INDEX nope", "does not exist");
}

#[test]
fn reaches_binding_errors() {
    let db = db();
    // Edge columns with mismatched types.
    expect_err(
        &db,
        "SELECT id FROM persons WHERE id REACHES id OVER friends EDGE (src, label)",
        "matching types",
    );
    // X type incompatible with the edge key type.
    expect_err(
        &db,
        "SELECT id FROM persons WHERE name REACHES id OVER friends EDGE (src, dst)",
        "type VARCHAR but the EDGE key type is INTEGER",
    );
    // Vertex keys must be equality-friendly: DOUBLE is not allowed.
    expect_err(
        &db,
        "SELECT id FROM persons WHERE id REACHES id OVER friends EDGE (w, w)",
        "cannot be used as a graph vertex key",
    );
    // CHEAPEST SUM without any reachability predicate.
    expect_err(&db, "SELECT CHEAPEST SUM(1) FROM persons", "requires a REACHES predicate");
    // Unbound tuple variable.
    expect_err(
        &db,
        "SELECT CHEAPEST SUM(zz: 1) WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)",
        "tuple variable",
    );
    // Ambiguous unbound CHEAPEST SUM with two predicates.
    expect_err(
        &db,
        "SELECT CHEAPEST SUM(1) WHERE 1 REACHES 2 OVER friends a EDGE (src, dst) \
         AND 2 REACHES 1 OVER friends b EDGE (src, dst)",
        "must name a tuple variable",
    );
    // REACHES buried under OR is rejected (only top-level conjuncts).
    expect_err(
        &db,
        "SELECT id FROM persons WHERE id = 1 OR id REACHES id OVER friends EDGE (src, dst)",
        "top-level conjunct",
    );
    // Non-numeric weight.
    expect_err(
        &db,
        "SELECT CHEAPEST SUM(f: label) WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)",
        "numeric",
    );
    // Parameter weight without a cast has unknown type.
    expect_err(
        &db,
        "SELECT CHEAPEST SUM(f: ?) WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)",
        "CAST",
    );
}

#[test]
fn unnest_binding_errors() {
    let db = db();
    expect_err(&db, "SELECT * FROM persons, UNNEST(persons.id) AS r", "PATH");
    // A leading UNNEST has nothing to be lateral to: its argument cannot
    // resolve.
    expect_err(&db, "SELECT * FROM UNNEST(persons.id) AS r", "in scope");
    // Wrong number of column aliases.
    expect_err(
        &db,
        "SELECT * FROM (
            SELECT CHEAPEST SUM(f: 1) AS (c, p)
            WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)
         ) T, UNNEST(T.p) AS r (one, two)",
        "alias list",
    );
}

#[test]
fn dml_errors() {
    let db = db();
    expect_err(&db, "INSERT INTO persons VALUES (1)", "columns");
    expect_err(&db, "INSERT INTO persons (id, id) VALUES (1, 2)", "duplicate column");
    expect_err(&db, "INSERT INTO persons (id, nope) VALUES (1, 2)", "nope");
    expect_err(&db, "UPDATE persons SET nope = 1", "nope");
    // NOT NULL violation through INSERT.
    expect_err(&db, "INSERT INTO persons VALUES (NULL, 'x')", "NULL");
    // Duplicate table.
    expect_err(&db, "CREATE TABLE persons (x INTEGER)", "already exists");
}

#[test]
fn type_errors_in_expressions() {
    let db = db();
    expect_err(&db, "SELECT name + 1 FROM persons", "numeric");
    expect_err(&db, "SELECT id FROM persons WHERE name", "BOOLEAN");
    expect_err(&db, "SELECT id FROM persons WHERE id = name", "incompatible");
    expect_err(&db, "SELECT NOT id FROM persons", "BOOLEAN");
    expect_err(&db, "SELECT id LIKE 'x' FROM persons", "VARCHAR");
    expect_err(&db, "SELECT UPPER(id) FROM persons", "string");
}

#[test]
fn runtime_errors() {
    let db = db();
    expect_err(&db, "SELECT 1 / 0", "division by zero");
    expect_err(&db, "SELECT CAST('abc' AS INTEGER)", "cannot cast");
    expect_err(&db, "SELECT CAST('2011-13-40' AS DATE)", "invalid date");
    // Missing parameter value.
    let err = db.query("SELECT CAST(? AS INTEGER)").unwrap_err();
    assert!(err.to_string().contains("parameter"), "{err}");
}

#[test]
fn limit_offset_validation() {
    let db = db();
    expect_err(&db, "SELECT id FROM persons LIMIT -1", "non-negative");
    expect_err(&db, "SELECT id FROM persons LIMIT 'x'", "non-negative");
}

#[test]
fn union_arity_and_type_checks() {
    let db = db();
    expect_err(&db, "SELECT 1 UNION SELECT 1, 2", "different arities");
    expect_err(&db, "SELECT 1 UNION SELECT 'x'", "incompatible types");
}

#[test]
fn cte_errors() {
    let db = db();
    expect_err(&db, "WITH a AS (SELECT 1), a AS (SELECT 2) SELECT * FROM a", "duplicate CTE");
    // Self-referencing CTE is not supported (no recursion): the inner
    // reference falls through to the catalog and fails.
    expect_err(&db, "WITH a AS (SELECT * FROM a) SELECT * FROM a", "does not exist");
    expect_err(&db, "WITH a (x, y) AS (SELECT 1) SELECT * FROM a", "column list");
}

#[test]
fn paths_cannot_be_stored_in_physical_tables() {
    // The paper's §3.3 limitation holds structurally here: no DDL type can
    // receive a PATH value, so persisting one is a type error.
    let db = db();
    db.execute("CREATE TABLE sink (p VARCHAR)").unwrap();
    let err = db
        .execute(
            "INSERT INTO sink SELECT path FROM (
               SELECT CHEAPEST SUM(f: 1) AS (c, path)
               WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)
             ) t",
        )
        .unwrap_err();
    assert!(err.to_string().contains("PATH"), "{err}");
}

#[test]
fn mixing_cheapest_with_aggregation_is_reported() {
    let db = db();
    let err = db
        .execute(
            "SELECT COUNT(*), CHEAPEST SUM(1) \
             WHERE 1 REACHES 2 OVER friends EDGE (src, dst) GROUP BY 1",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("derived table"), "{err}");
}

#[test]
fn script_stops_at_first_error_side_effects_kept() {
    let db = db();
    let err = db
        .execute_script(
            "INSERT INTO persons VALUES (3, 'c'); \
             SELECT * FROM nope; \
             INSERT INTO persons VALUES (4, 'd');",
        )
        .unwrap_err();
    assert!(err.to_string().contains("nope"));
    // First insert happened, third did not.
    let count = db.query("SELECT COUNT(*) FROM persons").unwrap();
    assert_eq!(count.row(0)[0], Value::Int(3));
}
