//! Nested-table (PATH) semantics beyond the appendix: propagation through
//! derived tables, multiple unnests, snapshot stability, and CSV behaviour.

use gsql::{Database, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, tag VARCHAR);
         INSERT INTO e VALUES (1, 2, 'a'), (2, 3, 'b'), (3, 4, 'c'), (1, 4, 'direct');",
    )
    .unwrap();
    db
}

#[test]
fn path_columns_survive_nested_derived_tables() {
    // The PATH column keeps its nested schema through two projection layers.
    let db = db();
    let t = db
        .query(
            "SELECT R.tag FROM (
                SELECT inner2.c2 AS c3, inner2.p2 AS p3 FROM (
                    SELECT cost AS c2, path AS p2 FROM (
                        SELECT CHEAPEST SUM(x: 1) AS (cost, path)
                        WHERE 1 REACHES 3 OVER e x EDGE (s, d)
                    ) q1
                ) inner2
             ) outer3, UNNEST(outer3.p3) AS R ORDER BY R.tag",
        )
        .unwrap();
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.row(0)[0], Value::from("a"));
    assert_eq!(t.row(1)[0], Value::from("b"));
}

#[test]
fn two_paths_unnested_independently() {
    // Two CHEAPEST SUMs over the same predicate, each unnested: the lateral
    // joins compose (cross product of the two expansions per input row).
    let db = db();
    let t = db
        .query(
            "SELECT A.tag, B.tag FROM (
                SELECT CHEAPEST SUM(x: 1) AS (c1, p1),
                       CHEAPEST SUM(x: CASE WHEN tag = 'direct' THEN 1 ELSE 10 END) AS (c2, p2)
                WHERE 1 REACHES 4 OVER e x EDGE (s, d)
             ) T, UNNEST(T.p1) AS A, UNNEST(T.p2) AS B",
        )
        .unwrap();
    // p1 = the 1-hop direct edge; p2 = the direct edge too (weight 1 vs 30).
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::from("direct"));
    assert_eq!(t.row(0)[1], Value::from("direct"));
}

#[test]
fn unnest_over_empty_result_is_empty() {
    let db = db();
    let t = db
        .query(
            "SELECT R.tag FROM (
                SELECT CHEAPEST SUM(x: 1) AS (cost, path)
                WHERE 4 REACHES 1 OVER e x EDGE (s, d)
             ) T, UNNEST(T.path) AS R",
        )
        .unwrap();
    assert_eq!(t.row_count(), 0);
}

#[test]
fn ordinality_column_can_be_filtered_and_ordered() {
    let db = db();
    let t = db
        .query(
            "SELECT R.ordinality, R.tag FROM (
                SELECT CHEAPEST SUM(x: CASE WHEN tag = 'direct' THEN 100 ELSE 1 END)
                       AS (cost, path)
                WHERE 1 REACHES 4 OVER e x EDGE (s, d)
             ) T, UNNEST(T.path) WITH ORDINALITY AS R
             WHERE R.ordinality >= 2 ORDER BY R.ordinality DESC",
        )
        .unwrap();
    // 3-hop path a,b,c; ordinality >= 2 -> b,c; descending -> c,b.
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.row(0)[0], Value::Int(3));
    assert_eq!(t.row(0)[1], Value::from("c"));
    assert_eq!(t.row(1)[0], Value::Int(2));
}

#[test]
fn unnest_column_aliases_rename() {
    let db = db();
    let t = db
        .query(
            "SELECT R.hop_from, R.hop_to, R.label, R.pos FROM (
                SELECT CHEAPEST SUM(x: 1) AS (cost, path)
                WHERE 1 REACHES 3 OVER e x EDGE (s, d)
             ) T, UNNEST(T.path) WITH ORDINALITY AS R (hop_from, hop_to, label, pos)
             ORDER BY R.pos",
        )
        .unwrap();
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.row(0)[0], Value::Int(1));
    assert_eq!(t.row(0)[3], Value::Int(1));
}

#[test]
fn path_display_and_count() {
    let db = db();
    let t = db
        .query(
            "SELECT CHEAPEST SUM(x: 1) AS (cost, path)
             WHERE 1 REACHES 3 OVER e x EDGE (s, d)",
        )
        .unwrap();
    let path = t.row(0)[1].as_path().unwrap().clone();
    assert_eq!(path.len(), 2);
    assert!(!path.is_empty());
    assert_eq!(t.row(0)[1].to_string(), "[path: 2 edges]");
}

#[test]
fn csv_export_rejects_path_columns_gracefully() {
    // PATH cannot round-trip through CSV; exporting the cost alone works.
    let db = db();
    let csv = db
        .export_csv("SELECT CHEAPEST SUM(x: 1) AS cost WHERE 1 REACHES 3 OVER e x EDGE (s, d)")
        .unwrap();
    assert_eq!(csv, "cost\n2\n");
}

#[test]
fn csv_import_round_trip_feeds_graph_queries() {
    let db = Database::new();
    db.execute("CREATE TABLE g (src INTEGER, dst INTEGER, w DOUBLE)").unwrap();
    let n = db.import_csv("g", "src,dst,w\n1,2,0.5\n2,3,1.5\n1,3,9.0\n".as_bytes()).unwrap();
    assert_eq!(n, 3);
    let t = db
        .query("SELECT CHEAPEST SUM(x: w) AS c WHERE 1 REACHES 3 OVER g x EDGE (src, dst)")
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Double(2.0));
}

#[test]
fn paths_reference_filtered_edge_snapshot() {
    // When the edge table is a filtered CTE, the unnested rows come from
    // the *filtered* snapshot (row ids must not leak from the base table).
    let db = db();
    let t = db
        .query(
            "WITH cheap AS (SELECT * FROM e WHERE tag <> 'direct')
             SELECT R.s, R.d, R.tag FROM (
                SELECT CHEAPEST SUM(x: 1) AS (cost, path)
                WHERE 1 REACHES 4 OVER cheap x EDGE (s, d)
             ) T, UNNEST(T.path) AS R ORDER BY R.s",
        )
        .unwrap();
    assert_eq!(t.row_count(), 3);
    let tags: Vec<String> = t.rows().map(|r| r[2].as_str().unwrap().to_string()).collect();
    assert_eq!(tags, vec!["a", "b", "c"]);
}
