//! Durability end-to-end: WAL replay, snapshot checkpoints, torn-tail
//! recovery, and the warm-start contract — a reopened database with a
//! built path index answers accelerated queries with **zero** rebuild
//! work and results byte-identical to the pre-restart process.

use gsql_core::Database;
use gsql_storage::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, empty temp directory, removed on drop (best effort).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gsql-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let t = db.query(sql).unwrap();
    (0..t.row_count()).map(|i| t.row(i)).collect()
}

const ROADS: &str = "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)";
const ROAD_ROWS: &str = "INSERT INTO e VALUES (1,2,5), (2,3,5), (1,3,20), (3,4,1)";
const CHEAPEST: &str = "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE 1 REACHES 4 OVER e f EDGE (s, d)";

#[test]
fn wal_only_restart_roundtrip() {
    let dir = TempDir::new("wal");
    let (before, version) = {
        let db = Database::open(dir.path()).unwrap();
        db.execute(ROADS).unwrap();
        db.execute(ROAD_ROWS).unwrap();
        db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();
        (rows(&db, "SELECT * FROM e"), db.schema_version())
    };
    // No checkpoint was taken: recovery is pure WAL replay.
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(rows(&db, "SELECT * FROM e"), before);
    assert_eq!(db.schema_version(), version);
    assert_eq!(db.graph_indexes().index_names(), vec!["gi".to_string()]);
    assert_eq!(rows(&db, CHEAPEST), vec![vec![Value::Int(11)]]);
}

#[test]
fn checkpoint_restart_answers_accelerated_queries_without_rebuild() {
    let dir = TempDir::new("warm");
    let (before, version, expected) = {
        let db = Database::open(dir.path()).unwrap();
        db.execute(ROADS).unwrap();
        db.execute(ROAD_ROWS).unwrap();
        db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
        db.execute("CREATE PATH INDEX pa ON e EDGE (s, d) WEIGHT w USING LANDMARKS(4)").unwrap();
        assert!(db.path_indexes().builds() >= 2);
        let expected = rows(&db, CHEAPEST);
        let t = db.query("CHECKPOINT").unwrap();
        assert_eq!(t.row(0)[0], Value::from("checkpoint written (epoch 1)"));
        (rows(&db, "SELECT * FROM e"), db.schema_version(), expected)
    };

    let db = Database::open(dir.path()).unwrap();
    assert_eq!(rows(&db, "SELECT * FROM e"), before, "snapshot restores tables byte-identically");
    assert_eq!(db.schema_version(), version);
    // The plan still picks the index...
    let plan = rows(&db, &format!("EXPLAIN {CHEAPEST}"));
    assert!(
        plan.iter().any(|r| matches!(&r[0], Value::Str(s) if s.contains("PathIndex"))),
        "expected an accelerated plan, got {plan:?}"
    );
    // ...and both indexes report built without any rebuild having run.
    let listing = db.path_indexes().list(db.catalog());
    assert!(listing.iter().all(|l| l.status == "built"), "{listing:?}");
    assert_eq!(rows(&db, CHEAPEST), expected);
    assert_eq!(db.path_indexes().builds(), 0, "warm start must not rebuild");
}

#[test]
fn torn_wal_tail_is_truncated() {
    let dir = TempDir::new("torn");
    {
        let db = Database::open(dir.path()).unwrap();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
    }
    // Simulate a crash mid-append: a frame header promising more payload
    // than was ever written.
    let wal = dir.path().join("wal-0.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let valid_len = bytes.len();
    bytes.extend_from_slice(&[0xFF, 0x00, 0x00, 0x00, 0xAB, 0xCD]);
    std::fs::write(&wal, &bytes).unwrap();

    let db = Database::open(dir.path()).unwrap();
    assert_eq!(
        rows(&db, "SELECT x FROM t ORDER BY x"),
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        "recovery keeps the valid prefix"
    );
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), valid_len as u64, "torn tail truncated");
    // The log accepts appends again and they survive another restart.
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    drop(db);
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(rows(&db, "SELECT COUNT(*) FROM t"), vec![vec![Value::Int(3)]]);
}

#[test]
fn stale_persisted_index_falls_back_to_rebuild() {
    let dir = TempDir::new("stale");
    {
        let db = Database::open(dir.path()).unwrap();
        db.execute(ROADS).unwrap();
        db.execute(ROAD_ROWS).unwrap();
        db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
        db.execute("CHECKPOINT").unwrap();
        // This mutation lands in the post-rotation WAL: on recovery it
        // replays after the snapshot and invalidates the persisted index.
        db.execute("INSERT INTO e VALUES (1, 4, 2)").unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    let listing = db.path_indexes().list(db.catalog());
    assert_eq!(listing[0].status, "stale", "{listing:?}");
    assert_eq!(db.path_indexes().builds(), 0);
    // The query sees the new edge — the stale persisted structure must not
    // serve it — and triggers exactly one lazy rebuild.
    assert_eq!(rows(&db, CHEAPEST), vec![vec![Value::Int(2)]]);
    assert_eq!(db.path_indexes().builds(), 1);
}

#[test]
fn checkpoint_then_replay_matches_unrestarted_engine_at_thread_counts() {
    let statements = [
        ROADS,
        ROAD_ROWS,
        "CREATE GRAPH INDEX gi ON e EDGE (s, d)",
        "CREATE PATH INDEX pa ON e EDGE (s, d) WEIGHT w USING LANDMARKS(3)",
        "INSERT INTO e VALUES (4, 5, 7), (5, 1, 7)",
        "UPDATE e SET w = 6 WHERE s = 1 AND d = 2",
        "DELETE FROM e WHERE w = 20",
    ];
    let queries = [
        "SELECT * FROM e",
        CHEAPEST,
        "SELECT CHEAPEST SUM(1) AS hops WHERE 4 REACHES 3 OVER e EDGE (s, d)",
    ];
    for threads in [1usize, 4] {
        let dir = TempDir::new("equiv");
        let reference = Database::new();
        {
            let db = Database::open(dir.path()).unwrap();
            let durable = db.session();
            let fresh = reference.session();
            durable.set("threads", &threads.to_string()).unwrap();
            fresh.set("threads", &threads.to_string()).unwrap();
            for (i, s) in statements.iter().enumerate() {
                durable.execute(s).unwrap();
                fresh.execute(s).unwrap();
                if i == 3 {
                    durable.execute("CHECKPOINT").unwrap();
                }
            }
        }
        let reopened = Database::open(dir.path()).unwrap();
        assert_eq!(reopened.schema_version(), reference.schema_version(), "threads={threads}");
        let a = reopened.session();
        let b = reference.session();
        a.set("threads", &threads.to_string()).unwrap();
        b.set("threads", &threads.to_string()).unwrap();
        for q in queries {
            let ta = a.query(q).unwrap();
            let tb = b.query(q).unwrap();
            let ra: Vec<Vec<Value>> = (0..ta.row_count()).map(|i| ta.row(i)).collect();
            let rb: Vec<Vec<Value>> = (0..tb.row_count()).map(|i| tb.row(i)).collect();
            assert_eq!(ra, rb, "threads={threads}, query={q}");
        }
    }
}

#[test]
fn checkpoint_is_a_noop_in_memory() {
    // `Database::default()` is always in-memory, even under the CI leg's
    // GSQL_DATA_DIR (which makes `Database::new()` durable).
    let db = Database::default();
    let t = db.query("CHECKPOINT").unwrap();
    assert_eq!(t.row(0)[0], Value::from("checkpoint skipped (in-memory database)"));
    assert!(db.checkpoint().unwrap().is_none());
    assert!(!db.is_durable());
    assert!(db.data_dir().is_none());
}

#[test]
fn storage_metrics_are_exported() {
    let dir = TempDir::new("metrics");
    {
        let db = Database::open(dir.path()).unwrap();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("CHECKPOINT").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        let text = db.metrics().registry().render();
        assert!(text.contains("gsql_wal_appends_total 4"), "{text}");
        assert!(text.contains("gsql_wal_bytes_total"), "{text}");
        assert!(text.contains("gsql_checkpoint_duration_microseconds_count 1"), "{text}");
        assert!(text.contains("gsql_build_info{version=\""), "{text}");
        assert!(text.contains("gsql_recovery_replayed_records 0"), "{text}");
    }
    // Two statements landed after the checkpoint: recovery replays them.
    let db = Database::open(dir.path()).unwrap();
    let text = db.metrics().registry().render();
    assert!(text.contains("gsql_recovery_replayed_records 2"), "{text}");
}

#[test]
fn path_parameters_are_rejected_on_durable_mutations() {
    let dir = TempDir::new("pathparam");
    let db = Database::open(dir.path()).unwrap();
    db.execute(ROADS).unwrap();
    db.execute(ROAD_ROWS).unwrap();
    let t = db
        .query("SELECT CHEAPEST SUM(f: f.w) AS (c, p) WHERE 1 REACHES 4 OVER e f EDGE (s, d)")
        .unwrap();
    let path = t.row(0)[1].clone();
    assert!(matches!(path, Value::Path(_)));
    db.execute("CREATE TABLE sink (x INTEGER)").unwrap();
    let err = db
        .execute_with_params("INSERT INTO sink VALUES (?)", std::slice::from_ref(&path))
        .unwrap_err();
    assert!(err.to_string().contains("path-valued parameters"), "{err}");
    // Reads with path parameters are unaffected (nothing to log).
    assert!(db.execute_with_params("SELECT 1 FROM sink WHERE 1 = 0", &[]).is_ok());
}

#[test]
fn import_csv_survives_restart() {
    let dir = TempDir::new("csv");
    {
        let db = Database::open(dir.path()).unwrap();
        db.execute("CREATE TABLE people (id INTEGER, name VARCHAR)").unwrap();
        let csv = "id,name\n1,ada\n2,grace\n";
        assert_eq!(db.import_csv("people", csv.as_bytes()).unwrap(), 2);
    }
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(
        rows(&db, "SELECT id, name FROM people ORDER BY id"),
        vec![vec![Value::Int(1), Value::from("ada")], vec![Value::Int(2), Value::from("grace")],]
    );
}
