//! The HTTP serving tier, end to end over real sockets: `/query` happy
//! path and error mapping, `/health`, `/stats`, per-request setting
//! overrides and timeouts, admission control (503 + `Retry-After` under a
//! saturated queue), the cross-session shared plan cache, and graceful
//! shutdown draining every admitted query.
//!
//! Concurrency-sensitive tests avoid sleeps where possible by occupying
//! the (single) worker with a deliberately half-sent request: the worker
//! blocks reading it, which pins the pool in a known state until the test
//! finishes the request.

use gsql::Database;
use gsql_server::json::{self, Json};
use gsql_server::{client, serve, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const Q13: &str =
    "SELECT CHEAPEST SUM(1) AS distance WHERE ? REACHES ? OVER friends EDGE (src, dst)";

fn social_db() -> Arc<Database> {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL, weight INTEGER);
         INSERT INTO friends VALUES (1, 2, 4), (2, 3, 4), (3, 4, 4), (1, 4, 20);",
    )
    .unwrap();
    Arc::new(db)
}

fn start(db: &Arc<Database>, config: ServerConfig) -> ServerHandle {
    serve(Arc::clone(db), config).expect("server failed to start")
}

fn query_body(sql: &str, params: &[i64]) -> String {
    let params: Vec<Json> = params.iter().map(|p| Json::Int(*p)).collect();
    Json::Object(vec![
        ("sql".to_string(), Json::from(sql)),
        ("params".to_string(), Json::Array(params)),
    ])
    .encode()
}

/// `rows` of a 200 response body, as parsed JSON.
fn rows_of(body: &str) -> Vec<Json> {
    let doc = json::parse(body).expect("response body is JSON");
    doc.get("rows").and_then(Json::as_array).expect("response has rows").to_vec()
}

#[test]
fn query_happy_path_returns_rows() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    let resp = client::post(server.addr(), "/query", &query_body(Q13, &[1, 3])).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = json::parse(&resp.body).unwrap();
    assert_eq!(
        doc.get("columns").and_then(Json::as_array),
        Some(&[Json::Str("distance".into())][..])
    );
    assert_eq!(rows_of(&resp.body), vec![Json::Array(vec![Json::Int(2)])]);
    assert_eq!(doc.get("row_count").and_then(Json::as_i64), Some(1));
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}

#[test]
fn dml_reports_affected_rows() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    let body = Json::Object(vec![(
        "sql".to_string(),
        Json::from("INSERT INTO friends VALUES (4, 1, 1), (2, 4, 1)"),
    )])
    .encode();
    let resp = client::post(server.addr(), "/query", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, r#"{"affected":2}"#);
    server.shutdown();
}

#[test]
fn sql_parse_error_maps_to_400() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    let resp =
        client::post(server.addr(), "/query", &query_body("SELEC nonsense FORM", &[])).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("error"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn malformed_json_maps_to_400() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    for bad in ["{not json", "", "[1, 2]", r#"{"params": [1]}"#] {
        let resp = client::post(server.addr(), "/query", bad).unwrap();
        assert_eq!(resp.status, 400, "body {bad:?} gave {}", resp.body);
    }
    server.shutdown();
}

#[test]
fn row_limit_exceeded_maps_to_422_and_does_not_leak_into_next_request() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 1, ..ServerConfig::default() });
    let body = Json::Object(vec![
        ("sql".to_string(), Json::from("SELECT * FROM friends")),
        ("settings".to_string(), Json::Object(vec![("row_limit".to_string(), Json::Int(2))])),
    ])
    .encode();
    let resp = client::post(server.addr(), "/query", &body).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("row limit exceeded"), "{}", resp.body);

    // The override was per-request: the same worker session must now run
    // the same statement unrestricted.
    let resp = client::post(
        server.addr(),
        "/query",
        &Json::Object(vec![("sql".to_string(), Json::from("SELECT * FROM friends"))]).encode(),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(rows_of(&resp.body).len(), 4);
    server.shutdown();
}

#[test]
fn unknown_setting_maps_to_400() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    let body = Json::Object(vec![
        ("sql".to_string(), Json::from("SELECT * FROM friends")),
        ("settings".to_string(), Json::Object(vec![("bogus".to_string(), Json::Int(1))])),
    ])
    .encode();
    let resp = client::post(server.addr(), "/query", &body).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    server.shutdown();
}

#[test]
fn health_stats_and_routing() {
    let db = social_db();
    let server = start(&db, ServerConfig::default());
    let addr = server.addr();

    let resp = client::get(addr, "/health").unwrap();
    assert_eq!((resp.status, resp.body.as_str()), (200, r#"{"status":"ok"}"#));

    client::post(addr, "/query", &query_body(Q13, &[1, 4])).unwrap();
    let resp = client::get(addr, "/stats").unwrap();
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.body).unwrap();
    let cache = doc.get("plan_cache").expect("stats has plan_cache");
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_i64), Some(1));
    let query_stats = doc.get("endpoints").and_then(|e| e.get("query")).unwrap();
    assert_eq!(query_stats.get("requests").and_then(Json::as_i64), Some(1));

    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/query").unwrap().status, 405);
    assert_eq!(client::post(addr, "/health", "").unwrap().status, 405);
    server.shutdown();
}

/// `/stats` reports the execution granularity of the worker sessions —
/// with `ServerConfig::settings` applied, so operators can see the morsel
/// size at which concurrent sessions interleave on the pool.
#[test]
fn stats_reports_worker_execution_granularity() {
    let db = social_db();
    let settings = vec![
        ("pipeline".to_string(), "on".to_string()),
        ("morsel_rows".to_string(), "1024".to_string()),
    ];
    let server = start(&db, ServerConfig { settings, ..ServerConfig::default() });
    let resp = client::get(server.addr(), "/stats").unwrap();
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.body).unwrap();
    let exec = doc.get("execution").expect("stats has execution");
    assert_eq!(exec.get("pipeline").and_then(Json::as_str), Some("on"));
    assert_eq!(exec.get("morsel_rows").and_then(Json::as_str), Some("1024"));
    assert!(exec.get("threads").and_then(Json::as_str).is_some());
    server.shutdown();
}

/// Per-request `pipeline` / `morsel_rows` overrides select the executor
/// for one statement only, and every configuration returns identical
/// rows (the engine's determinism contract, observed through HTTP).
#[test]
fn pipeline_overrides_are_per_request_and_results_identical() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 1, ..ServerConfig::default() });
    let sql = "SELECT f.dst, COUNT(*) AS n FROM friends f WHERE f.weight > 0 \
               GROUP BY f.dst ORDER BY f.dst";
    let mut bodies = Vec::new();
    for settings in [
        Json::Object(vec![("pipeline".to_string(), Json::from("off"))]),
        Json::Object(vec![
            ("pipeline".to_string(), Json::from("on")),
            ("morsel_rows".to_string(), Json::Int(1)),
        ]),
        Json::Object(vec![("pipeline".to_string(), Json::from("on"))]),
    ] {
        let body = Json::Object(vec![
            ("sql".to_string(), Json::from(sql)),
            ("settings".to_string(), settings),
        ])
        .encode();
        let resp = client::post(server.addr(), "/query", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        bodies.push(rows_of(&resp.body));
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[0], bodies[2]);
    server.shutdown();
}

/// Eight clients hammer the same query concurrently; every response must
/// be 200 with identical rows.
#[test]
fn concurrent_clients_get_consistent_results() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 4, ..ServerConfig::default() });
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for _ in 0..5 {
                    let resp = client::post(addr, "/query", &query_body(Q13, &[1, 3])).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    bodies.push(resp.body);
                }
                bodies
            })
        })
        .collect();
    for handle in handles {
        for body in handle.join().unwrap() {
            assert_eq!(rows_of(&body), vec![Json::Array(vec![Json::Int(2)])]);
        }
    }
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
    assert_eq!(report.admitted, 40);
}

/// Acceptance: concurrent HTTP clients share ONE plan-cache entry. A warm
/// request binds the plan (the single miss); the N−1 that follow — spread
/// across worker sessions — are all hits on the same entry.
#[test]
fn concurrent_clients_share_one_plan_cache_entry() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 4, ..ServerConfig::default() });
    let addr = server.addr();

    let warm = client::post(addr, "/query", &query_body(Q13, &[1, 4])).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);

    let handles: Vec<_> = (0..7)
        .map(|i| {
            std::thread::spawn(move || {
                let resp =
                    client::post(addr, "/query", &query_body(Q13, &[1, 2 + (i % 3)])).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body);
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    server.shutdown();

    let stats = db.shared_plan_cache().stats();
    assert_eq!(stats.misses, 1, "exactly one bind across all sessions");
    assert_eq!(stats.hits, 7, "every other request reused the shared plan");
    assert_eq!(stats.entries, 1, "one entry serves all workers");
}

/// A request that deliberately stops after the header block. The worker
/// that picks it up blocks reading the body, pinning it until `finish`.
struct HalfSentRequest {
    conn: TcpStream,
    body: String,
}

impl HalfSentRequest {
    fn begin(addr: std::net::SocketAddr, body: String) -> HalfSentRequest {
        let mut conn = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.flush().unwrap();
        HalfSentRequest { conn, body }
    }

    /// Send the body and read the (full) response, returning its status.
    fn finish(mut self) -> u16 {
        self.conn.write_all(self.body.as_bytes()).unwrap();
        self.conn.flush().unwrap();
        let mut raw = String::new();
        self.conn.read_to_string(&mut raw).unwrap();
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line")
    }
}

/// Poll a counter until it reaches `want` (the acceptor/worker threads run
/// asynchronously to the test).
fn wait_for(what: &str, want: u64, get: impl Fn() -> u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while get() < want {
        assert!(Instant::now() < deadline, "{what} never reached {want} (at {})", get());
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Admission control: with one worker pinned and the depth-1 queue holding
/// one more connection, further requests bounce with 503 + Retry-After.
#[test]
fn saturated_queue_returns_503_with_retry_after() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() });
    let addr = server.addr();

    // Pin the worker: it pops this connection and blocks on the body.
    let pinned = HalfSentRequest::begin(addr, query_body(Q13, &[1, 3]));
    wait_for("admitted", 1, || server.stats().admitted.get());
    // The worker must have *popped* it before the next one lands in the
    // queue slot; admission counts at push, so give the pop a moment.
    std::thread::sleep(Duration::from_millis(50));

    // Fills the single queue slot.
    let queued = HalfSentRequest::begin(addr, query_body(Q13, &[1, 3]));
    wait_for("admitted", 2, || server.stats().admitted.get());

    // Queue full, worker busy: refused at the door.
    let resp = client::post(addr, "/query", &query_body(Q13, &[1, 3])).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("Retry-After"), Some("1"));
    assert!(resp.body.contains("retry"), "{}", resp.body);

    // Unpin; both held requests complete normally.
    assert_eq!(pinned.finish(), 200);
    assert_eq!(queued.finish(), 200);
    let report = server.shutdown();
    assert_eq!(report.refused, 1);
    assert_eq!(report.dropped(), 0);
}

/// Graceful shutdown: every admitted connection — the one a worker is
/// mid-request on AND the ones still waiting in the queue — gets a real
/// response before the server exits. Zero dropped.
#[test]
fn graceful_shutdown_drains_admitted_queries() {
    let db = social_db();
    let server = start(&db, ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() });
    let addr = server.addr();
    let stats = Arc::clone(server.stats());

    let pinned = HalfSentRequest::begin(addr, query_body(Q13, &[1, 3]));
    wait_for("admitted", 1, || stats.admitted.get());
    std::thread::sleep(Duration::from_millis(50)); // let the worker pop it

    // Three more pile up in the queue behind the pinned request.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                client::post(addr, "/query", &query_body(Q13, &[1, 4])).unwrap()
            })
        })
        .collect();
    wait_for("admitted", 4, || stats.admitted.get());

    // Shutdown starts draining while the worker is still mid-request.
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(pinned.finish(), 200, "in-flight request served during drain");

    let report = shutdown.join().unwrap();
    for client in clients {
        let resp = client.join().unwrap();
        assert_eq!(resp.status, 200, "queued request served during drain: {}", resp.body);
    }
    assert_eq!(report.admitted, 4);
    assert_eq!(report.dropped(), 0, "graceful shutdown dropped queries: {report:?}");

    // And the server is actually gone.
    assert!(client::get(addr, "/health").is_err() || TcpStream::connect(addr).is_err());
}

/// A per-request `timeout_ms` interrupts a long batched traversal from
/// inside execution and surfaces as 408.
#[test]
fn request_timeout_interrupts_long_traversals_with_408() {
    // A 20k-node chain; 64 batched shortest paths over it take well over
    // a millisecond in any build profile.
    let db = Database::new();
    db.execute("CREATE TABLE chain (src INTEGER NOT NULL, dst INTEGER NOT NULL)").unwrap();
    let n = 20_000;
    let mut values = String::new();
    for i in 1..n {
        if i > 1 {
            values.push_str(", ");
        }
        values.push_str(&format!("({i}, {})", i + 1));
    }
    db.execute(&format!("INSERT INTO chain VALUES {values}")).unwrap();
    let db = Arc::new(db);
    let server = start(&db, ServerConfig::default());

    let mut pairs = String::new();
    for s in 1..=64 {
        if s > 1 {
            pairs.push_str(", ");
        }
        pairs.push_str(&format!("({s}, {n})"));
    }
    let slow_sql = format!(
        "WITH pairs (s, d) AS (VALUES {pairs}) \
         SELECT pairs.s, CHEAPEST SUM(1) AS distance \
         FROM pairs WHERE pairs.s REACHES pairs.d OVER chain EDGE (src, dst)"
    );
    let body = Json::Object(vec![
        ("sql".to_string(), Json::from(slow_sql.as_str())),
        ("settings".to_string(), Json::Object(vec![("timeout_ms".to_string(), Json::Int(1))])),
    ])
    .encode();
    let resp = client::post(server.addr(), "/query", &body).unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(resp.body.contains("timeout"), "{}", resp.body);

    // Without the timeout the same statement completes.
    let body = Json::Object(vec![("sql".to_string(), Json::from(slow_sql.as_str()))]).encode();
    let resp = client::post(server.addr(), "/query", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(rows_of(&resp.body).len(), 64);

    let stats = client::get(server.addr(), "/stats").unwrap();
    let doc = json::parse(&stats.body).unwrap();
    assert_eq!(doc.get("query_timeouts").and_then(Json::as_i64), Some(1));
    server.shutdown();
}
