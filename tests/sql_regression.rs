//! Broad SQL regression suite for the relational substrate: each case is a
//! query plus its exact expected result, exercising semantics a downstream
//! user relies on before ever touching the graph extension.

use gsql::{Database, Value};
use std::sync::Arc;

fn v(x: i64) -> Value {
    Value::Int(x)
}

fn s(x: &str) -> Value {
    Value::from(x)
}

fn setup() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL);
         CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL,
                           dept_id INTEGER, salary DOUBLE, hired DATE);
         INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty');
         INSERT INTO emp VALUES
            (1, 'ada',   1, 95000.0, '2019-05-01'),
            (2, 'bob',   1, 70000.0, '2020-01-15'),
            (3, 'cat',   2, 60000.0, '2018-11-30'),
            (4, 'dan',   2, 62000.0, '2021-07-04'),
            (5, 'eve',   NULL, NULL, NULL);",
    )
    .unwrap();
    db
}

fn rows(t: &Arc<gsql::Table>) -> Vec<Vec<Value>> {
    t.rows().collect()
}

#[test]
fn where_and_or_not_precedence() {
    let db = setup();
    let t = db
        .query(
            "SELECT id FROM emp WHERE dept_id = 1 OR dept_id = 2 AND salary > 61000.0 ORDER BY id",
        )
        .unwrap();
    // AND binds tighter: dept 1 any salary, dept 2 only dan.
    assert_eq!(rows(&t), vec![vec![v(1)], vec![v(2)], vec![v(4)]]);
}

#[test]
fn null_semantics_in_filters() {
    let db = setup();
    // eve has NULL dept_id: excluded by both = and <>.
    let eq = db.query("SELECT COUNT(*) FROM emp WHERE dept_id = 1").unwrap();
    let ne = db.query("SELECT COUNT(*) FROM emp WHERE dept_id <> 1").unwrap();
    assert_eq!(eq.row(0)[0], v(2));
    assert_eq!(ne.row(0)[0], v(2));
    let isnull = db.query("SELECT name FROM emp WHERE dept_id IS NULL").unwrap();
    assert_eq!(rows(&isnull), vec![vec![s("eve")]]);
    let notnull = db.query("SELECT COUNT(*) FROM emp WHERE dept_id IS NOT NULL").unwrap();
    assert_eq!(notnull.row(0)[0], v(4));
}

#[test]
fn inner_join_and_left_join() {
    let db = setup();
    let inner = db
        .query(
            "SELECT d.name, COUNT(*) AS n FROM dept d JOIN emp e ON d.id = e.dept_id
             GROUP BY d.name ORDER BY d.name",
        )
        .unwrap();
    assert_eq!(rows(&inner), vec![vec![s("eng"), v(2)], vec![s("sales"), v(2)]]);

    let left = db
        .query(
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON d.id = e.dept_id
             ORDER BY d.name, e.name",
        )
        .unwrap();
    // 'empty' department survives with NULL employee.
    assert_eq!(left.row_count(), 5);
    assert_eq!(left.row(0)[0], s("empty"));
    assert!(left.row(0)[1].is_null());
}

#[test]
fn aggregates_with_nulls() {
    let db = setup();
    let t = db
        .query(
            "SELECT COUNT(*), COUNT(salary), SUM(salary), MIN(salary), MAX(salary), AVG(salary)
             FROM emp",
        )
        .unwrap();
    let r = t.row(0);
    assert_eq!(r[0], v(5));
    assert_eq!(r[1], v(4)); // NULL salary not counted
    assert_eq!(r[2], Value::Double(287000.0));
    assert_eq!(r[3], Value::Double(60000.0));
    assert_eq!(r[4], Value::Double(95000.0));
    assert_eq!(r[5], Value::Double(71750.0));
}

#[test]
fn group_by_expression_and_having() {
    let db = setup();
    let t = db
        .query(
            "SELECT dept_id, COUNT(*) AS n FROM emp GROUP BY dept_id
             HAVING COUNT(*) >= 2 ORDER BY dept_id",
        )
        .unwrap();
    assert_eq!(rows(&t), vec![vec![v(1), v(2)], vec![v(2), v(2)]]);
}

#[test]
fn order_by_variants() {
    let db = setup();
    // By alias.
    let t = db.query("SELECT name AS who FROM emp ORDER BY who DESC LIMIT 2").unwrap();
    assert_eq!(rows(&t), vec![vec![s("eve")], vec![s("dan")]]);
    // By ordinal.
    let t = db.query("SELECT id, name FROM emp ORDER BY 2 LIMIT 1").unwrap();
    assert_eq!(t.row(0)[1], s("ada"));
    // By non-projected expression (hidden sort column).
    let t = db
        .query("SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC LIMIT 1")
        .unwrap();
    assert_eq!(t.row(0)[0], s("ada"));
    // NULLs sort first ascending.
    let t = db.query("SELECT name FROM emp ORDER BY salary, name LIMIT 1").unwrap();
    assert_eq!(t.row(0)[0], s("eve"));
}

#[test]
fn distinct_and_union() {
    let db = setup();
    let t = db
        .query("SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY dept_id")
        .unwrap();
    assert_eq!(rows(&t), vec![vec![v(1)], vec![v(2)]]);
    let t = db
        .query("SELECT dept_id FROM emp WHERE id = 1 UNION SELECT dept_id FROM emp WHERE id = 2")
        .unwrap();
    assert_eq!(t.row_count(), 1); // both are dept 1, UNION dedups
}

#[test]
fn union_widens_int_to_double() {
    let db = setup();
    // INT ∪ DOUBLE must yield DOUBLE on both sides (and stay queryable
    // through a derived table).
    let t = db
        .query("SELECT x + 0.25 AS y FROM (SELECT 1 AS x UNION ALL SELECT 2.5) u ORDER BY y")
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Double(1.25));
    assert_eq!(t.row(1)[0], Value::Double(2.75));
    let t = db.query("SELECT 2.5 UNION ALL SELECT 1").unwrap();
    assert_eq!(t.schema().column(0).ty, gsql::DataType::Double);
}

#[test]
fn case_cast_like_between_in() {
    let db = setup();
    let t = db
        .query(
            "SELECT name,
                    CASE WHEN salary >= 70000.0 THEN 'senior'
                         WHEN salary IS NULL THEN 'unknown'
                         ELSE 'junior' END AS grade
             FROM emp ORDER BY id",
        )
        .unwrap();
    let grades: Vec<Value> = t.rows().map(|r| r[1].clone()).collect();
    assert_eq!(grades, vec![s("senior"), s("senior"), s("junior"), s("junior"), s("unknown")]);

    let t = db.query("SELECT CAST(salary AS INTEGER) FROM emp WHERE id = 1").unwrap();
    assert_eq!(t.row(0)[0], v(95000));

    let t = db.query("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name").unwrap();
    assert_eq!(rows(&t), vec![vec![s("ada")], vec![s("cat")], vec![s("dan")]]);

    let t = db.query("SELECT COUNT(*) FROM emp WHERE salary BETWEEN 60000.0 AND 70000.0").unwrap();
    assert_eq!(t.row(0)[0], v(3));

    let t = db.query("SELECT COUNT(*) FROM emp WHERE dept_id IN (2, 3)").unwrap();
    assert_eq!(t.row(0)[0], v(2));
}

#[test]
fn date_comparisons_and_literals() {
    let db = setup();
    let t =
        db.query("SELECT name FROM emp WHERE hired < DATE '2020-01-01' ORDER BY hired").unwrap();
    assert_eq!(rows(&t), vec![vec![s("cat")], vec![s("ada")]]);
    // Bare-string coercion (the paper's A.3 style).
    let t = db.query("SELECT COUNT(*) FROM emp WHERE hired >= '2020-01-01'").unwrap();
    assert_eq!(t.row(0)[0], v(2));
}

#[test]
fn scalar_functions() {
    let db = setup();
    let t = db
        .query(
            "SELECT UPPER(name), LOWER('ABC'), LENGTH(name),
                    ABS(-5), ROUND(2.7), FLOOR(2.7), CEIL(2.2), SQRT(16.0),
                    COALESCE(salary, 0.0), NULLIF(1, 1)
             FROM emp WHERE id = 5",
        )
        .unwrap();
    let r = t.row(0);
    assert_eq!(r[0], s("EVE"));
    assert_eq!(r[1], s("abc"));
    assert_eq!(r[2], v(3));
    assert_eq!(r[3], v(5));
    assert_eq!(r[4], Value::Double(3.0));
    assert_eq!(r[5], Value::Double(2.0));
    assert_eq!(r[6], Value::Double(3.0));
    assert_eq!(r[7], Value::Double(4.0));
    assert_eq!(r[8], Value::Double(0.0));
    assert!(r[9].is_null());
}

#[test]
fn subqueries_and_ctes_compose() {
    let db = setup();
    let t = db
        .query(
            "WITH well_paid AS (SELECT * FROM emp WHERE salary > 61000.0)
             SELECT d.name, x.n FROM dept d
             JOIN (SELECT dept_id, COUNT(*) AS n FROM well_paid GROUP BY dept_id) x
               ON d.id = x.dept_id
             ORDER BY d.name",
        )
        .unwrap();
    assert_eq!(rows(&t), vec![vec![s("eng"), v(2)], vec![s("sales"), v(1)]]);
}

#[test]
fn update_delete_semantics() {
    let db = setup();
    // UPDATE with expression referencing old values.
    match db.execute("UPDATE emp SET salary = salary * 1.1 WHERE dept_id = 1").unwrap() {
        gsql::QueryResult::Affected(2) => {}
        other => panic!("{other:?}"),
    }
    let t = db.query("SELECT salary FROM emp WHERE id = 1").unwrap();
    assert_eq!(t.row(0)[0], Value::Double(95000.0 * 1.1));
    // DELETE with filter; eve's NULL dept_id survives a dept_id filter.
    db.execute("DELETE FROM emp WHERE dept_id = 2").unwrap();
    let t = db.query("SELECT COUNT(*) FROM emp").unwrap();
    assert_eq!(t.row(0)[0], v(3));
    // DELETE all.
    db.execute("DELETE FROM emp").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM emp").unwrap().row(0)[0], v(0));
}

#[test]
fn insert_select_and_explicit_columns() {
    let db = setup();
    db.execute("CREATE TABLE names (id INTEGER, label VARCHAR)").unwrap();
    db.execute("INSERT INTO names SELECT id, name FROM emp WHERE dept_id = 1").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM names").unwrap().row(0)[0], v(2));
    // Explicit column list with a missing column -> NULL.
    db.execute("INSERT INTO names (label) VALUES ('solo')").unwrap();
    let t = db.query("SELECT id, label FROM names WHERE label = 'solo'").unwrap();
    assert!(t.row(0)[0].is_null());
}

#[test]
fn values_as_table_and_cross_join() {
    let db = setup();
    let t = db.query("VALUES (1, 'x'), (2, 'y')").unwrap();
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.schema().names().collect::<Vec<_>>(), vec!["column1", "column2"]);
    let t = db
        .query(
            "WITH v (k) AS (VALUES (1), (2))
             SELECT COUNT(*) FROM dept, v",
        )
        .unwrap();
    assert_eq!(t.row(0)[0], v(6)); // 3 depts × 2
}

#[test]
fn string_concat_and_arithmetic() {
    let db = setup();
    let t = db
        .query("SELECT name || '-' || CAST(id AS VARCHAR), id % 2, -id FROM emp WHERE id <= 2 ORDER BY id")
        .unwrap();
    assert_eq!(t.row(0)[0], s("ada-1"));
    assert_eq!(t.row(0)[1], v(1));
    assert_eq!(t.row(0)[2], v(-1));
    assert_eq!(t.row(1)[1], v(0));
}

#[test]
fn limit_offset_pagination() {
    let db = setup();
    let page1 = db.query("SELECT id FROM emp ORDER BY id LIMIT 2").unwrap();
    let page2 = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2").unwrap();
    let page3 = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 4").unwrap();
    assert_eq!(rows(&page1), vec![vec![v(1)], vec![v(2)]]);
    assert_eq!(rows(&page2), vec![vec![v(3)], vec![v(4)]]);
    assert_eq!(rows(&page3), vec![vec![v(5)]]);
    let empty = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 99").unwrap();
    assert_eq!(empty.row_count(), 0);
}

#[test]
fn count_distinct_and_avg_distinct() {
    let db = setup();
    db.execute("INSERT INTO emp VALUES (6, 'fay', 1, 70000.0, '2022-01-01')").unwrap();
    let t = db.query("SELECT COUNT(DISTINCT dept_id), COUNT(DISTINCT salary) FROM emp").unwrap();
    assert_eq!(t.row(0)[0], v(2));
    assert_eq!(t.row(0)[1], v(4)); // 95k, 70k, 60k, 62k (70k dup, NULL out)
}

#[test]
fn explain_shows_pushdown() {
    let db = setup();
    let plan = db
        .plan("SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.id AND d.name = 'eng'")
        .unwrap()
        .explain();
    // The d.name filter must sit under the cross product, not above it.
    let cross_pos = plan.find("CrossProduct").expect("cross product in plan");
    let filter_pos = plan.find("(name = 'eng')").expect("filter in plan");
    assert!(filter_pos > cross_pos, "pushdown expected:\n{plan}");
}

#[test]
fn qualified_wildcards() {
    let db = setup();
    let t = db
        .query("SELECT d.*, e.name FROM dept d JOIN emp e ON d.id = e.dept_id WHERE e.id = 1")
        .unwrap();
    assert_eq!(t.schema().len(), 3);
    assert_eq!(t.row(0), vec![v(1), s("eng"), s("ada")]);
}
