//! The session-based execution API, end to end: prepared statements with
//! plan caching, schema-version invalidation, `SET`/`SHOW` settings,
//! `EXPLAIN` under index toggling, and `EXPLAIN ANALYZE` statistics.

use gsql::{Database, QueryResult, Value};

fn social_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE persons (id INTEGER NOT NULL, name VARCHAR NOT NULL);
         INSERT INTO persons VALUES (1, 'ada'), (2, 'bob'), (3, 'cyd'), (4, 'dee');
         CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL, weight INTEGER);
         INSERT INTO friends VALUES (1, 2, 4), (2, 3, 4), (3, 4, 4), (1, 4, 20);",
    )
    .unwrap();
    db
}

/// Acceptance: a parameterized `CHEAPEST SUM` query executed 100 times
/// through a prepared session statement parses/binds/optimizes exactly
/// once — every execution after the prepare is a plan-cache hit.
#[test]
fn prepared_cheapest_sum_plans_once_across_100_executions() {
    let db = social_db();
    let session = db.session();
    let stmt = session
        .prepare(
            "SELECT CHEAPEST SUM(f: weight) AS cost \
             WHERE ? REACHES ? OVER friends f EDGE (src, dst)",
        )
        .unwrap();
    assert_eq!(session.cache_stats().misses, 1, "prepare binds exactly once");

    for i in 0..100 {
        // Alternate parameter values: same plan, different bindings.
        let (s, d) = if i % 2 == 0 { (1, 4) } else { (2, 4) };
        let t = stmt.query(&session, &[Value::Int(s), Value::Int(d)]).unwrap();
        let want = if i % 2 == 0 { 12 } else { 8 };
        assert_eq!(t.row(0)[0], Value::Int(want), "iteration {i}");
    }

    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1, "no re-bind happened");
    assert_eq!(stats.hits, 100, "all 100 executions served from the cached plan");
    assert_eq!(stats.invalidations, 0);
}

/// Acceptance: `SET graph_index = off` measurably changes the `EXPLAIN`
/// plan — the edge child flips between `GraphIndex` and a plain `Scan`.
#[test]
fn set_graph_index_off_changes_explain_plan() {
    let db = social_db();
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap();
    let session = db.session();
    let sql = "EXPLAIN SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)";

    let explain = |session: &gsql::Session<'_>| -> String {
        let t = session.query(sql).unwrap();
        t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect::<Vec<_>>().join("\n")
    };

    let with_index = explain(&session);
    assert!(with_index.contains("GraphIndex gi ON friends"), "plan was:\n{with_index}");
    assert!(!with_index.contains("Scan friends"), "plan was:\n{with_index}");

    session.execute("SET graph_index = off").unwrap();
    let without_index = explain(&session);
    assert!(!without_index.contains("GraphIndex"), "plan was:\n{without_index}");
    assert!(without_index.contains("Scan friends"), "plan was:\n{without_index}");
    assert_ne!(with_index, without_index);

    // Both plans execute to the same answer.
    for setting in ["on", "off"] {
        session.execute(&format!("SET graph_index = {setting}")).unwrap();
        let t = session
            .query_with_params(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
                &[Value::Int(1), Value::Int(3)],
            )
            .unwrap();
        assert_eq!(t.row(0)[0], Value::Int(2), "graph_index = {setting}");
    }
}

/// Acceptance: `EXPLAIN ANALYZE` prints per-operator row counts and wall
/// time for a graph join query.
#[test]
fn explain_analyze_reports_rows_and_time_for_graph_join() {
    let db = social_db();
    let session = db.session();
    // Pin the pipelined executor on: the per-pipeline morsel summary
    // asserted below must not depend on the GSQL_PIPELINE env default.
    session.set("pipeline", "on").unwrap();
    let t = session
        .query_with_params(
            "EXPLAIN ANALYZE \
             SELECT p1.name, p2.name, CHEAPEST SUM(1) AS d \
             FROM persons p1, persons p2 \
             WHERE p1.id = ? AND p2.id = ? \
               AND p1.id REACHES p2.id OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    let text: Vec<String> = t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect();
    let full = text.join("\n");

    // The rewriter must have produced a graph join, and its stats line
    // carries both rows and timing.
    let graph_join = text
        .iter()
        .find(|l| l.trim_start().starts_with("GraphJoin"))
        .unwrap_or_else(|| panic!("no GraphJoin operator in:\n{full}"));
    assert!(graph_join.contains("rows=1"), "line was: {graph_join}");
    assert!(graph_join.contains("time="), "line was: {graph_join}");

    // Every operator line is annotated, children indented under parents.
    // (`Pipeline N:` lines are per-pipeline morsel summaries, not operators.)
    let op_lines: Vec<&String> =
        text.iter().filter(|l| !l.starts_with("Result:") && !l.starts_with("Pipeline ")).collect();
    assert!(op_lines.len() >= 4, "expected a tree of operators, got:\n{full}");
    for l in &op_lines {
        assert!(l.contains("rows=") && l.contains("time="), "unannotated line: {l}");
    }
    assert!(text.iter().any(|l| l.starts_with("Result: 1 row(s)")), "{full}");

    // Pipelined fragments report their morsel distribution.
    let pipeline_line = text
        .iter()
        .find(|l| l.starts_with("Pipeline "))
        .unwrap_or_else(|| panic!("no pipeline summary in:\n{full}"));
    assert!(pipeline_line.contains("morsels="), "line was: {pipeline_line}");
    assert!(pipeline_line.contains("per-worker min="), "line was: {pipeline_line}");
    assert!(pipeline_line.contains("worker(s)"), "line was: {pipeline_line}");
    assert!(pipeline_line.contains("time="), "line was: {pipeline_line}");

    // The scans feeding the join report their true cardinalities.
    assert!(full.contains("Scan persons"), "{full}");
    assert!(full.contains("rows=4"), "{full}");
}

/// `EXPLAIN ANALYZE` over an indexed edge table: the edge scan is absent
/// from the executed-operator stats because the graph came from the index.
#[test]
fn explain_analyze_shows_index_skipping_edge_scan() {
    let db = social_db();
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap();
    let session = db.session();
    let t = session
        .query_with_params(
            "EXPLAIN ANALYZE SELECT CHEAPEST SUM(1) \
             WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    let full: Vec<String> = t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect();
    let full = full.join("\n");
    // The planned GraphIndex node never executes as a table operator — the
    // graph operator consumes it directly from the registry cache.
    assert!(!full.contains("GraphIndex gi"), "{full}");
    assert!(!full.contains("Scan friends"), "{full}");
    assert!(full.contains("GraphSelect"), "{full}");
}

/// Plan-cache invalidation: `CREATE/DROP GRAPH INDEX` and table DDL bump
/// the database's schema version, so cached plans are rebuilt — and the
/// rebuilt plan reflects the new physical design.
#[test]
fn plan_cache_invalidates_on_graph_index_and_table_ddl() {
    let db = social_db();
    let session = db.session();
    let sql = "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)";
    let stmt = session.prepare(sql).unwrap();
    let params = [Value::Int(1), Value::Int(4)];

    stmt.query(&session, &params).unwrap();
    assert_eq!(
        session.cache_stats(),
        gsql::PlanCacheStats { hits: 1, misses: 1, invalidations: 0, entries: 1 }
    );

    // CREATE GRAPH INDEX invalidates; the re-planned query now uses it.
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap();
    stmt.query(&session, &params).unwrap();
    let stats = session.cache_stats();
    assert_eq!(stats.invalidations, 1, "index creation must invalidate");
    assert_eq!(stats.misses, 2);
    let plan = session.plan(sql).unwrap().explain();
    assert!(plan.contains("GraphIndex gi"), "re-planned query uses the new index:\n{plan}");

    // DROP GRAPH INDEX invalidates again; plan falls back to the scan.
    db.execute("DROP GRAPH INDEX gi").unwrap();
    stmt.query(&session, &params).unwrap();
    assert_eq!(session.cache_stats().invalidations, 2, "index drop must invalidate");
    let plan = session.plan(sql).unwrap().explain();
    assert!(!plan.contains("GraphIndex"), "{plan}");

    // Unrelated DML does NOT invalidate (data freshness is handled at
    // scan/index level, not the plan level).
    let before = session.cache_stats();
    db.execute("INSERT INTO friends VALUES (4, 1, 1)").unwrap();
    stmt.query(&session, &params).unwrap();
    let after = session.cache_stats();
    assert_eq!(after.invalidations, before.invalidations, "DML must not invalidate plans");
    assert_eq!(after.hits, before.hits + 1);

    // Table DDL (CREATE/DROP TABLE) invalidates.
    db.execute("CREATE TABLE scratch (x INTEGER)").unwrap();
    stmt.query(&session, &params).unwrap();
    assert_eq!(session.cache_stats().invalidations, 3, "CREATE TABLE must invalidate");
    db.execute("DROP TABLE scratch").unwrap();
    stmt.query(&session, &params).unwrap();
    assert_eq!(session.cache_stats().invalidations, 4, "DROP TABLE must invalidate");
}

/// DDL through the raw `Catalog` API (the bulk-load path used by the data
/// generators) must invalidate cached plans too, not only SQL statements.
#[test]
fn plan_cache_invalidates_on_direct_catalog_ddl() {
    use gsql::storage::{ColumnDef, DataType, Schema, Table};

    let db = social_db();
    let session = db.session();
    let stmt = session.prepare("SELECT id FROM persons").unwrap();
    assert_eq!(stmt.query(&session, &[]).unwrap().row_count(), 4);

    // Swap `persons` for a differently-shaped table via the Catalog API.
    db.catalog().drop_table("persons").unwrap();
    let mut fresh = Table::empty(Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("nick", DataType::Varchar),
    ]));
    fresh.append_row(vec![Value::Int(9), Value::from("zed")]).unwrap();
    db.catalog().register_table("persons", fresh).unwrap();

    // The cached plan is stale; the version bump forces a re-bind against
    // the new schema instead of executing the old plan.
    let t = stmt.query(&session, &[]).unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::Int(9));
    assert_eq!(session.cache_stats().invalidations, 1);
}

/// UNION preserves NOT NULL enforcement even on the columnar fast path.
#[test]
fn union_rejects_null_into_not_null_column() {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (x INTEGER NOT NULL); INSERT INTO t VALUES (1), (2);")
        .unwrap();
    let err = db.query("SELECT x FROM t UNION ALL SELECT CAST(NULL AS INTEGER)").unwrap_err();
    assert!(err.to_string().contains("NULL"), "{err}");
    // The all-non-null union still works columnar end to end.
    let ok = db.query("SELECT x FROM t UNION ALL SELECT x FROM t").unwrap();
    assert_eq!(ok.row_count(), 4);
}

/// Execution-time settings (`row_limit`, `plan_cache_size`) do not clear
/// the plan cache; only the planning-relevant `graph_index` does.
#[test]
fn only_planning_settings_clear_the_plan_cache() {
    let db = social_db();
    let session = db.session();
    session.query("SELECT id FROM persons").unwrap();
    assert_eq!(session.cache_stats().entries, 1);
    session.execute("SET row_limit = 1000").unwrap();
    session.execute("SET plan_cache_size = 32").unwrap();
    assert_eq!(session.cache_stats().entries, 1, "execution knobs keep plans");
    session.execute("SET graph_index = off").unwrap();
    assert_eq!(session.cache_stats().entries, 0, "planning knob clears plans");

    // Shrinking the capacity evicts immediately (down to the new size).
    session.query("SELECT id FROM persons").unwrap();
    session.query("SELECT name FROM persons").unwrap();
    assert_eq!(session.cache_stats().entries, 2);
    session.execute("SET plan_cache_size = 1").unwrap();
    assert_eq!(session.cache_stats().entries, 1, "shrink evicts LRU entries");
    session.execute("SET plan_cache_size = 0").unwrap();
    assert_eq!(session.cache_stats().entries, 0, "size 0 frees everything");
}

/// A dropped index must not break a session that cached an indexed plan:
/// the very next execution re-plans (version bump) and still answers.
#[test]
fn dropped_index_degrades_gracefully() {
    let db = social_db();
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap();
    let session = db.session();
    let sql = "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)";
    let stmt = session.prepare(sql).unwrap();
    // 1 -> 4 has a direct edge: one hop, with or without the index.
    let params = [Value::Int(1), Value::Int(4)];
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(1));
    db.execute("DROP GRAPH INDEX gi").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(1));
}

/// Sessions are independent: settings changed in one do not leak into
/// another over the same database.
#[test]
fn sessions_have_independent_settings_and_caches() {
    let db = social_db();
    let a = db.session();
    let b = db.session();
    a.execute("SET graph_index = off").unwrap();
    a.execute("SET row_limit = 2").unwrap();
    assert_eq!(a.setting("graph_index").unwrap(), "off");
    assert_eq!(b.setting("graph_index").unwrap(), "on");
    assert!(a.query("SELECT * FROM friends").is_err(), "row limit applies in a");
    assert_eq!(b.query("SELECT * FROM friends").unwrap().row_count(), 4, "not in b");
    b.query("SELECT id FROM persons").unwrap();
    // b cached both of its queries; a cached the plan of its one query
    // (binding succeeded — only execution tripped the row limit).
    assert_eq!(b.cache_stats().entries, 2);
    assert_eq!(a.cache_stats().entries, 1, "caches are per session");
}

/// Two sessions on one shared database, racing from separate threads:
/// prepared readers keep answering while a writer mutates the edge table.
#[test]
fn concurrent_sessions_share_one_database() {
    let db = std::sync::Arc::new(social_db());
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)").unwrap();

    let mut handles = Vec::new();
    for t in 0..2 {
        let db = std::sync::Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let session = db.session();
            if t == 0 {
                session.execute("SET graph_index = off").unwrap();
            }
            let stmt = session
                .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)")
                .unwrap();
            for _ in 0..100 {
                let r = stmt.query(&session, &[Value::Int(1), Value::Int(3)]).unwrap();
                // The chain 1->2->3 is never touched by the writer.
                assert_eq!(r.row(0)[0], Value::Int(2), "session {t}");
            }
            let stats = session.cache_stats();
            assert_eq!(stats.hits, 100, "session {t} reused its plan");
        }));
    }

    // Writer on the main thread: toggle an unrelated shortcut edge.
    for _ in 0..100 {
        match db.execute("INSERT INTO friends VALUES (2, 4, 1)").unwrap() {
            QueryResult::Affected(1) => {}
            other => panic!("{other:?}"),
        }
        db.execute("DELETE FROM friends WHERE src = 2 AND dst = 4").unwrap();
    }
    for h in handles {
        h.join().expect("session thread panicked");
    }
}

/// `SET` / `SHOW` round-trip through plain SQL execution, and unknown
/// options fail loudly.
#[test]
fn set_show_statements() {
    let db = Database::new();
    let session = db.session();
    assert!(matches!(session.execute("SET row_limit = 7").unwrap(), QueryResult::Ok));
    let t = session.query("SHOW row_limit").unwrap();
    assert_eq!(t.row(0)[0], Value::from("row_limit"));
    assert_eq!(t.row(0)[1], Value::from("7"));
    let all = session.query("SHOW ALL").unwrap();
    assert!(all.row_count() >= 3);
    assert!(session.execute("SET no_such_option = 1").is_err());
    assert!(session.query("SHOW no_such_option").is_err());
    // Settings live only in their session; a fresh one is pristine.
    assert_eq!(db.session().setting("row_limit").unwrap(), "0");
}

/// `Database::prepare` (parse-only) still works and caches lazily on first
/// session execution.
#[test]
fn database_prepare_binds_lazily_per_session() {
    let db = social_db();
    let stmt = db
        .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)")
        .unwrap();
    let session = db.session();
    assert_eq!(session.cache_stats().misses, 0, "nothing planned yet");
    for _ in 0..3 {
        stmt.query(&session, &[Value::Int(1), Value::Int(3)]).unwrap();
    }
    assert_eq!(session.cache_stats().misses, 1);
    assert_eq!(session.cache_stats().hits, 2);
}
