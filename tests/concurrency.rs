//! Concurrency: readers see consistent snapshots while writers mutate, and
//! the graph-index cache stays coherent under concurrent use (copy-on-write
//! catalog + version-checked index, as in the MonetDB-style design).

use gsql::{Database, QueryResult, Value};
use std::sync::Arc;

#[test]
fn readers_see_consistent_snapshots_during_writes() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL);
         INSERT INTO e VALUES (1, 2), (2, 3);",
    )
    .unwrap();
    db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();

    let mut readers = Vec::new();
    for t in 0..3 {
        let db = Arc::clone(&db);
        readers.push(std::thread::spawn(move || {
            // One session per reader thread: prepared once, cached plan
            // reused across all 100 executions.
            let session = db.session();
            let stmt = session
                .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)")
                .unwrap();
            for _ in 0..100 {
                // 1 always reaches 3 (the chain is never deleted).
                let result = stmt
                    .execute(&session, &[Value::Int(1), Value::Int(3)])
                    .unwrap()
                    .into_table()
                    .unwrap();
                assert_eq!(result.row_count(), 1, "reader {t}");
                let d = result.row(0)[0].as_int().unwrap();
                // Depending on the snapshot, a shortcut edge may exist.
                assert!((1..=2).contains(&d), "reader {t} saw distance {d}");
            }
        }));
    }

    // Writer, racing the readers: repeatedly add and remove a shortcut
    // edge 1 -> 3.
    for _ in 0..200 {
        match db.execute("INSERT INTO e VALUES (1, 3)").unwrap() {
            QueryResult::Affected(1) => {}
            other => panic!("{other:?}"),
        }
        db.execute("DELETE FROM e WHERE s = 1 AND d = 3").unwrap();
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Final state: shortcut removed, distance is 2 again.
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2));
}

#[test]
fn sessions_with_different_thread_widths_share_one_database() {
    // Mixed-width sessions — sequential, 2-way, 8-way — race the same
    // shared Database (with a graph index, so the cached CSR is shared
    // too) and must all see identical answers: the parallel runtime is
    // per-statement and must not leak state across sessions.
    let db = Arc::new(Database::new());
    let mut edges = String::new();
    for i in 0..400i64 {
        if i > 0 {
            edges.push_str(", ");
        }
        // A ring with shortcuts: everything reaches everything.
        edges.push_str(&format!("({}, {})", i % 100, (i + 1) % 100));
    }
    db.execute_script(&format!(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL);
         INSERT INTO e VALUES {edges};"
    ))
    .unwrap();
    db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();

    let mut handles = Vec::new();
    for (t, width) in ["1", "2", "8", "4"].into_iter().enumerate() {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let session = db.session();
            session.set("threads", width).unwrap();
            assert_eq!(session.setting("threads").unwrap(), width, "worker {t}");
            let stmt = session
                .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)")
                .unwrap();
            for rep in 0..40 {
                let s = (rep * 7) % 100;
                let d = (rep * 13 + 1) % 100;
                let expect = (d + 100 - s) % 100; // ring distance s -> d
                let result = stmt
                    .execute(&session, &[Value::Int(s as i64), Value::Int(d as i64)])
                    .unwrap()
                    .into_table()
                    .unwrap();
                assert_eq!(result.row_count(), 1, "worker {t} rep {rep}");
                let got = result.row(0)[0].as_int().unwrap();
                assert_eq!(got, expect as i64, "worker {t} rep {rep}: {s} -> {d}");
            }
            // The width survives the whole run unchanged.
            assert_eq!(session.setting("threads").unwrap(), width, "worker {t}");
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn concurrent_index_creation_and_queries() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL);
         INSERT INTO e VALUES (1, 2), (2, 3), (3, 4), (4, 5);",
    )
    .unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            // One thread creates the index; others race queries.
            if t == 0 {
                db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();
            }
            for _ in 0..50 {
                let r = db
                    .query_with_params(
                        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                        &[Value::Int(1), Value::Int(5)],
                    )
                    .unwrap();
                assert_eq!(r.row(0)[0], Value::Int(4));
            }
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }
}
