//! Concurrency: readers see consistent snapshots while writers mutate, and
//! the graph-index cache stays coherent under concurrent use (copy-on-write
//! catalog + version-checked index, as in the MonetDB-style design).

use gsql::{Database, QueryResult, Value};
use std::sync::Arc;

#[test]
fn readers_see_consistent_snapshots_during_writes() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL);
         INSERT INTO e VALUES (1, 2), (2, 3);",
    )
    .unwrap();
    db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();

    let mut readers = Vec::new();
    for t in 0..3 {
        let db = Arc::clone(&db);
        readers.push(std::thread::spawn(move || {
            // One session per reader thread: prepared once, cached plan
            // reused across all 100 executions.
            let session = db.session();
            let stmt = session
                .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)")
                .unwrap();
            for _ in 0..100 {
                // 1 always reaches 3 (the chain is never deleted).
                let result = stmt
                    .execute(&session, &[Value::Int(1), Value::Int(3)])
                    .unwrap()
                    .into_table()
                    .unwrap();
                assert_eq!(result.row_count(), 1, "reader {t}");
                let d = result.row(0)[0].as_int().unwrap();
                // Depending on the snapshot, a shortcut edge may exist.
                assert!((1..=2).contains(&d), "reader {t} saw distance {d}");
            }
        }));
    }

    // Writer, racing the readers: repeatedly add and remove a shortcut
    // edge 1 -> 3.
    for _ in 0..200 {
        match db.execute("INSERT INTO e VALUES (1, 3)").unwrap() {
            QueryResult::Affected(1) => {}
            other => panic!("{other:?}"),
        }
        db.execute("DELETE FROM e WHERE s = 1 AND d = 3").unwrap();
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Final state: shortcut removed, distance is 2 again.
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2));
}

#[test]
fn concurrent_index_creation_and_queries() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL);
         INSERT INTO e VALUES (1, 2), (2, 3), (3, 4), (4, 5);",
    )
    .unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            // One thread creates the index; others race queries.
            if t == 0 {
                db.execute("CREATE GRAPH INDEX gi ON e EDGE (s, d)").unwrap();
            }
            for _ in 0..50 {
                let r = db
                    .query_with_params(
                        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
                        &[Value::Int(1), Value::Int(5)],
                    )
                    .unwrap();
                assert_eq!(r.row(0)[0], Value::Int(4));
            }
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }
}
