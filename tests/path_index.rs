//! End-to-end tests of the path-acceleration subsystem (ALT landmarks and
//! contraction hierarchies): DDL, planning (`EXPLAIN` visibility and kind
//! selection, `SET path_index`), byte-identical results against the
//! Dijkstra fallback at several thread counts — for point-to-point and
//! batched (multi-pair / GraphJoin) shapes — invalidation on edge
//! mutation, and `EXPLAIN ANALYZE` settled-node reporting.

use gsql::{Database, Value};

/// True when `GSQL_PATH_INDEX_KIND` forces every index to one kind (the CI
/// contraction run): kind-specific EXPLAIN assertions are relaxed there.
fn kind_forced() -> bool {
    std::env::var("GSQL_PATH_INDEX_KIND").map(|v| !v.trim().is_empty()).unwrap_or(false)
}

/// A deterministic layered digraph with integer weights: dense enough to
/// give ALT something to prune, sparse enough to stay fast. A `people`
/// table rides along for the GraphJoin batch shapes.
fn build_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE people (id INTEGER NOT NULL, grp INTEGER NOT NULL)").unwrap();
    let mut x: u64 = 0x243f6a8885a308d3;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut edges = String::new();
    for i in 0..800 {
        let s = next() % 150;
        let d = next() % 150;
        let w = next() % 20 + 1;
        if i > 0 {
            edges.push_str(", ");
        }
        edges.push_str(&format!("({s}, {d}, {w})"));
    }
    db.execute(&format!("INSERT INTO e VALUES {edges}")).unwrap();
    let mut people = String::new();
    for id in 0..150 {
        if id > 0 {
            people.push_str(", ");
        }
        people.push_str(&format!("({id}, {})", id % 10));
    }
    db.execute(&format!("INSERT INTO people VALUES {people}")).unwrap();
    db
}

/// Point-to-point query shapes the path index accelerates (hops, weighted,
/// scaled-constant, reachability-only), parameterized by endpoints.
const P2P_QUERIES: [&str; 4] = [
    "SELECT CHEAPEST SUM(1) AS hops WHERE ? REACHES ? OVER e EDGE (s, d)",
    "SELECT CHEAPEST SUM(f: f.w) AS cost WHERE ? REACHES ? OVER e f EDGE (s, d)",
    "SELECT CHEAPEST SUM(3) AS scaled WHERE ? REACHES ? OVER e EDGE (s, d)",
    "SELECT 1 WHERE ? REACHES ? OVER e EDGE (s, d)",
];

/// Batched query shapes the many-to-many tier accelerates: multi-pair
/// graph selects (hop and weighted) and two-table graph joins. Pair lists
/// deliberately repeat endpoints and include self and unreachable pairs so
/// the dedup and scatter paths are exercised end to end.
fn batch_queries() -> Vec<String> {
    let mut pair_rows = String::new();
    for i in 0..30 {
        if i > 0 {
            pair_rows.push_str(", ");
        }
        pair_rows.push_str(&format!("({}, {})", (i * 17) % 150, (i * 31 + 5) % 150));
    }
    pair_rows.push_str(", (0, 9), (0, 9), (3, 3), (7, 149)");
    vec![
        format!(
            "WITH pairs (a, b) AS (VALUES {pair_rows}) \
             SELECT pairs.a, pairs.b, CHEAPEST SUM(1) AS hops \
             FROM pairs WHERE pairs.a REACHES pairs.b OVER e EDGE (s, d)"
        ),
        format!(
            "WITH pairs (a, b) AS (VALUES {pair_rows}) \
             SELECT pairs.a, pairs.b, CHEAPEST SUM(f: f.w) AS cost \
             FROM pairs WHERE pairs.a REACHES pairs.b OVER e f EDGE (s, d)"
        ),
        "SELECT p1.id, p2.id FROM people p1, people p2 \
         WHERE p1.grp = 0 AND p2.grp = 1 AND p1.id REACHES p2.id OVER e EDGE (s, d)"
            .to_string(),
        "SELECT p1.id, p2.id, CHEAPEST SUM(f: f.w) AS cost FROM people p1, people p2 \
         WHERE p1.grp = 2 AND p2.grp = 3 AND p1.id REACHES p2.id OVER e f EDGE (s, d)"
            .to_string(),
    ]
}

/// Every batched shape must take the accelerated plan in the `on` session
/// and produce exactly the rows of the `off` (per-pair Dijkstra) session,
/// at `threads = 1` and `threads = 4`.
fn assert_batches_match_fallback(db: &Database) {
    for sql in batch_queries() {
        for threads in ["1", "4"] {
            let on = db.session();
            on.set("threads", threads).unwrap();
            on.set("path_index", "on").unwrap();
            assert!(
                on.plan(&sql).unwrap().explain().contains("PathIndex"),
                "batch shape not accelerated: {sql}\n{}",
                on.plan(&sql).unwrap().explain()
            );
            let off = db.session();
            off.set("threads", threads).unwrap();
            off.set("path_index", "off").unwrap();
            let a = on.query(&sql).unwrap();
            let b = off.query(&sql).unwrap();
            assert_eq!(a.row_count(), b.row_count(), "row count diverged: {sql} threads {threads}");
            for r in 0..a.row_count() {
                assert_eq!(a.row(r), b.row(r), "row {r} diverged: {sql} threads {threads}");
            }
        }
    }
}

#[test]
fn ddl_create_drop_and_errors() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(4)").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (d, s) USING LANDMARKS(4)").unwrap();
    // Duplicate name, bad table, bad column, bad landmark count.
    assert!(db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) USING LANDMARKS(2)").is_err());
    assert!(db.execute("CREATE PATH INDEX px ON nope EDGE (s, d) USING LANDMARKS(2)").is_err());
    assert!(db.execute("CREATE PATH INDEX px ON e EDGE (s, zz) USING LANDMARKS(2)").is_err());
    assert!(db.execute("CREATE PATH INDEX px ON e EDGE (s, d) USING LANDMARKS(999)").is_err());
    db.execute("DROP PATH INDEX pw").unwrap();
    assert!(db.execute("DROP PATH INDEX pw").is_err());
    // DROP TABLE sweeps the remaining index away.
    db.execute("DROP TABLE e").unwrap();
    assert!(db.path_indexes().index_names().is_empty());
}

#[test]
fn explain_shows_accelerated_plan_and_respects_toggle() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(4)").unwrap();
    let session = db.session();
    // The CI fallback run exports GSQL_PATH_INDEX=off; this test is about
    // the accelerated plan shape, so opt in explicitly.
    session.execute("SET path_index = on").unwrap();
    let hops = "SELECT CHEAPEST SUM(1) WHERE 0 REACHES 9 OVER e EDGE (s, d)";
    let weighted = "SELECT CHEAPEST SUM(f: f.w) WHERE 0 REACHES 9 OVER e f EDGE (s, d)";
    // The weighted index covers the matching weight column but not hops.
    assert!(
        session.plan(weighted).unwrap().explain().contains("PathIndex pw ON e"),
        "weighted plan not accelerated:\n{}",
        session.plan(weighted).unwrap().explain()
    );
    assert!(!session.plan(hops).unwrap().explain().contains("PathIndex"));
    // A hop index covers hop (and scaled-constant) queries.
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(4)").unwrap();
    // Two indexes cover (e, s, d) now; weighted-vs-hop eligibility decides.
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let hop_plan = session.plan(hops).unwrap().explain();
    assert!(hop_plan.contains("PathIndex"), "hop plan not accelerated:\n{hop_plan}");
    // Path-producing queries must never be accelerated: the bidirectional
    // stitch could pick a different equal-cost path than Dijkstra.
    let with_path = "SELECT CHEAPEST SUM(1) AS (c, p) WHERE 0 REACHES 9 OVER e EDGE (s, d)";
    assert!(!session.plan(with_path).unwrap().explain().contains("PathIndex"));
    // The session toggle removes the acceleration, visibly.
    session.execute("SET path_index = off").unwrap();
    assert!(!session.plan(weighted).unwrap().explain().contains("PathIndex"));
    session.execute("SET path_index = on").unwrap();
    assert!(session.plan(weighted).unwrap().explain().contains("PathIndex"));
}

#[test]
fn accelerated_results_byte_identical_to_fallback() {
    let db = build_db();
    // A weighted and a hop index over (s, d), so every shape in
    // P2P_QUERIES — weighted column, plain hops, scaled constant and the
    // reachability probe — actually takes the accelerated plan.
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(6)").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(6)").unwrap();
    // Endpoint sample covering reachable, unreachable and self pairs.
    let pairs: Vec<(i64, i64)> =
        (0..25).map(|i| ((i * 17) % 150, (i * 31 + 5) % 150)).chain([(3, 3), (7, 149)]).collect();
    for sql in P2P_QUERIES {
        for threads in ["1", "4"] {
            let on = db.session();
            on.set("threads", threads).unwrap();
            on.set("path_index", "on").unwrap();
            // Every shape must be planned as accelerated in the on session.
            let explain_sql = sql.replacen('?', "0", 1).replacen('?', "9", 1);
            assert!(
                on.plan(&explain_sql).unwrap().explain().contains("PathIndex"),
                "shape not accelerated: {sql}\n{}",
                on.plan(&explain_sql).unwrap().explain()
            );
            let off = db.session();
            off.set("threads", threads).unwrap();
            off.set("path_index", "off").unwrap();
            // The accelerated plan must actually be in play for this shape.
            for &(s, d) in &pairs {
                let params = [Value::Int(s), Value::Int(d)];
                let a = on.query_with_params(sql, &params).unwrap();
                let b = off.query_with_params(sql, &params).unwrap();
                assert_eq!(
                    a.row_count(),
                    b.row_count(),
                    "row count diverged: {sql} ({s}, {d}) threads {threads}"
                );
                for r in 0..a.row_count() {
                    assert_eq!(
                        a.row(r),
                        b.row(r),
                        "row diverged: {sql} ({s}, {d}) threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn reverse_direction_index_accelerates_reverse_queries() {
    let db = build_db();
    db.execute("CREATE PATH INDEX ph ON e EDGE (d, s) USING LANDMARKS(4)").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let reverse = "SELECT CHEAPEST SUM(1) WHERE 0 REACHES 9 OVER e EDGE (d, s)";
    let forward = "SELECT CHEAPEST SUM(1) WHERE 0 REACHES 9 OVER e EDGE (s, d)";
    assert!(session.plan(reverse).unwrap().explain().contains("PathIndex ph"));
    assert!(!session.plan(forward).unwrap().explain().contains("PathIndex"));
}

#[test]
fn edge_mutation_invalidates_index_and_cached_plans() {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL)").unwrap();
    db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4), (4, 5)").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(3)").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let sql = "SELECT CHEAPEST SUM(1) AS hops WHERE ? REACHES ? OVER e EDGE (s, d)";
    let stmt = session.prepare(sql).unwrap();
    let params = [Value::Int(1), Value::Int(5)];
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));
    // A shortcut edge must show up in the accelerated answer immediately:
    // the table version moved, so the landmark data rebuilds lazily.
    session.execute("INSERT INTO e VALUES (1, 4)").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(2));
    // Deleting it restores the long route.
    session.execute("DELETE FROM e WHERE s = 1 AND d = 4").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));

    // CREATE/DROP PATH INDEX move the schema version: cached plans from
    // before are invalidated, so planning decisions never go stale.
    let before = session.cache_stats().invalidations;
    session.execute("DROP PATH INDEX ph").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));
    assert!(
        session.cache_stats().invalidations > before,
        "DROP PATH INDEX must invalidate cached plans"
    );
}

#[test]
fn explain_analyze_reports_settled_nodes() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(6)").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let plan = session
        .query("EXPLAIN ANALYZE SELECT CHEAPEST SUM(f: f.w) WHERE 0 REACHES 9 OVER e f EDGE (s, d)")
        .unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(all.contains("settled="), "settled count missing:\n{all}");
    // The CI contraction run forces CH builds, which report `(ch, …)`.
    assert!(all.contains("(alt") || all.contains("(ch"), "accel marker missing:\n{all}");
    // The fallback run reports no ALT detail.
    session.execute("SET path_index = off").unwrap();
    let plan = session
        .query("EXPLAIN ANALYZE SELECT CHEAPEST SUM(f: f.w) WHERE 0 REACHES 9 OVER e f EDGE (s, d)")
        .unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    assert!(!text.join("\n").contains("settled="));
}

#[test]
fn set_path_index_validation_and_show_all() {
    let db = Database::new();
    let session = db.session();
    assert!(session.execute("SET path_index = sideways").is_err());
    session.execute("SET path_index = off").unwrap();
    let t = session.query("SHOW path_index").unwrap();
    assert_eq!(t.row(0)[1], Value::from("off"));
    let all = session.query("SHOW ALL").unwrap();
    let names: Vec<String> = (0..all.row_count()).map(|i| all.row(i)[0].to_string()).collect();
    assert!(names.contains(&"path_index".to_string()), "SHOW ALL missing path_index");
}

#[test]
fn contraction_ddl_show_indexes_and_if_exists() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    // Duplicate name: a hard create errors, IF NOT EXISTS is a no-op.
    assert!(db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) USING CONTRACTION").is_err());
    db.execute("CREATE PATH INDEX IF NOT EXISTS pc ON e EDGE (s, d) USING CONTRACTION").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(4)").unwrap();
    let session = db.session();
    // SHOW PATH INDEXES: name, table, kind, status, sorted by name.
    let t = session.query("SHOW PATH INDEXES").unwrap();
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.row(0)[0], Value::from("pc"));
    assert_eq!(t.row(0)[1], Value::from("e"));
    assert_eq!(t.row(0)[3], Value::from("built"));
    assert_eq!(t.row(1)[0], Value::from("ph"));
    if !kind_forced() {
        assert_eq!(t.row(0)[2], Value::from("contraction"));
        assert_eq!(t.row(1)[2], Value::from("landmarks(4)"));
    }
    // A table mutation flips the listing to stale; the data rebuilds
    // lazily on the next accelerated query, not in SHOW itself.
    db.execute("INSERT INTO e VALUES (0, 1, 1)").unwrap();
    let t = session.query("SHOW PATH INDEXES").unwrap();
    assert_eq!(t.row(0)[3], Value::from("stale"));
    assert_eq!(t.row(1)[3], Value::from("stale"));
    // DROP IF EXISTS tolerates a missing index; a hard drop does not.
    db.execute("DROP PATH INDEX IF EXISTS pc").unwrap();
    db.execute("DROP PATH INDEX IF EXISTS pc").unwrap();
    assert!(db.execute("DROP PATH INDEX pc").is_err());
    let t = session.query("SHOW PATH INDEXES").unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::from("ph"));
}

#[test]
fn explain_prefers_contraction_over_landmarks() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pa ON e EDGE (s, d) WEIGHT w USING LANDMARKS(4)").unwrap();
    let weighted = "SELECT CHEAPEST SUM(f: f.w) WHERE 0 REACHES 9 OVER e f EDGE (s, d)";
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let plan = session.plan(weighted).unwrap().explain();
    assert!(plan.contains("PathIndex pa ON e"), "landmark plan missing:\n{plan}");
    if !kind_forced() {
        assert!(plan.contains("(ALT)"), "kind label missing:\n{plan}");
    }
    // A CH index covering the same query beats the landmark index, and the
    // choice is visible in EXPLAIN. (Under GSQL_PATH_INDEX_KIND both
    // indexes are built as the forced kind and name order decides, so the
    // kind-selection assertion only holds in the default configuration.)
    db.execute("CREATE PATH INDEX pz ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    let plan = session.plan(weighted).unwrap().explain();
    assert!(plan.contains("PathIndex"), "acceleration lost:\n{plan}");
    if !kind_forced() {
        assert!(plan.contains("PathIndex pz ON e (CH)"), "CH not preferred:\n{plan}");
    }
    // Dropping the CH index falls back to the landmark index.
    db.execute("DROP PATH INDEX pz").unwrap();
    let plan = session.plan(weighted).unwrap().explain();
    assert!(plan.contains("PathIndex pa ON e"), "ALT fallback missing:\n{plan}");
}

#[test]
fn contraction_results_byte_identical_to_fallback() {
    let db = build_db();
    // A weighted and a hop CH index over (s, d), so every shape in
    // P2P_QUERIES actually takes the accelerated plan.
    db.execute("CREATE PATH INDEX cw ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    db.execute("CREATE PATH INDEX chop ON e EDGE (s, d) USING CONTRACTION").unwrap();
    let pairs: Vec<(i64, i64)> =
        (0..25).map(|i| ((i * 17) % 150, (i * 31 + 5) % 150)).chain([(3, 3), (7, 149)]).collect();
    for sql in P2P_QUERIES {
        for threads in ["1", "4"] {
            let on = db.session();
            on.set("threads", threads).unwrap();
            on.set("path_index", "on").unwrap();
            let explain_sql = sql.replacen('?', "0", 1).replacen('?', "9", 1);
            assert!(
                on.plan(&explain_sql).unwrap().explain().contains("PathIndex"),
                "shape not accelerated: {sql}\n{}",
                on.plan(&explain_sql).unwrap().explain()
            );
            let off = db.session();
            off.set("threads", threads).unwrap();
            off.set("path_index", "off").unwrap();
            for &(s, d) in &pairs {
                let params = [Value::Int(s), Value::Int(d)];
                let a = on.query_with_params(sql, &params).unwrap();
                let b = off.query_with_params(sql, &params).unwrap();
                assert_eq!(
                    a.row_count(),
                    b.row_count(),
                    "row count diverged: {sql} ({s}, {d}) threads {threads}"
                );
                for r in 0..a.row_count() {
                    assert_eq!(
                        a.row(r),
                        b.row(r),
                        "row diverged: {sql} ({s}, {d}) threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn contraction_mutation_invalidates_index_and_cached_plans() {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL)").unwrap();
    db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4), (4, 5)").unwrap();
    db.execute("CREATE PATH INDEX pc ON e EDGE (s, d) USING CONTRACTION").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let sql = "SELECT CHEAPEST SUM(1) AS hops WHERE ? REACHES ? OVER e EDGE (s, d)";
    let stmt = session.prepare(sql).unwrap();
    let params = [Value::Int(1), Value::Int(5)];
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));
    // A new edge must show up in the accelerated answer immediately: the
    // table version moved, so the hierarchy rebuilds lazily.
    session.execute("INSERT INTO e VALUES (1, 4)").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(2));
    session.execute("DELETE FROM e WHERE s = 1 AND d = 4").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));
    // CREATE/DROP PATH INDEX invalidate cached plans for CH exactly like
    // for landmarks.
    let before = session.cache_stats().invalidations;
    session.execute("DROP PATH INDEX pc").unwrap();
    assert_eq!(stmt.query(&session, &params).unwrap().row(0)[0], Value::Int(4));
    assert!(
        session.cache_stats().invalidations > before,
        "DROP PATH INDEX must invalidate cached plans"
    );
}

#[test]
fn explain_analyze_reports_ch_settled_and_shortcuts() {
    let db = build_db();
    db.execute("CREATE PATH INDEX cw ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let plan = session
        .query("EXPLAIN ANALYZE SELECT CHEAPEST SUM(f: f.w) WHERE 0 REACHES 9 OVER e f EDGE (s, d)")
        .unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(all.contains("settled="), "settled count missing:\n{all}");
    if kind_forced() {
        // A forced-landmarks run reports the ALT detail instead.
        assert!(all.contains("(ch") || all.contains("(alt"), "accel marker missing:\n{all}");
    } else {
        assert!(all.contains("(ch, shortcuts="), "ch detail missing:\n{all}");
    }
}

#[test]
fn batch_results_unchanged_by_index_creation() {
    // Creating a covering index moves a multi-pair batch from the
    // source-parallel Dijkstra runtime onto the many-to-many tier; the
    // visible rows must not change in the process.
    let db = build_db();
    let batch = "WITH pairs (a, b) AS (VALUES (0, 9), (1, 17), (2, 33), (140, 7)) \
                 SELECT pairs.a, pairs.b, CHEAPEST SUM(1) AS hops \
                 FROM pairs WHERE pairs.a REACHES pairs.b OVER e EDGE (s, d)";
    let before = db.query(batch).unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(4)").unwrap();
    let after = db.query(batch).unwrap();
    assert_eq!(before.row_count(), after.row_count());
    for r in 0..before.row_count() {
        assert_eq!(before.row(r), after.row(r), "row {r}");
    }
}

#[test]
fn batch_results_byte_identical_to_fallback() {
    let db = build_db();
    // A weighted and a hop index, so every batched shape — hop and
    // weighted, multi-pair select and graph join — takes the multi-target
    // ALT tier.
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(6)").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(6)").unwrap();
    assert_batches_match_fallback(&db);
}

#[test]
fn contraction_batch_results_byte_identical_to_fallback() {
    let db = build_db();
    // Same shapes through the bucket-based CH many-to-many tier.
    db.execute("CREATE PATH INDEX cw ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    db.execute("CREATE PATH INDEX chop ON e EDGE (s, d) USING CONTRACTION").unwrap();
    assert_batches_match_fallback(&db);
}

#[test]
fn explain_analyze_reports_batch_detail() {
    let db = build_db();
    db.execute("CREATE PATH INDEX pw ON e EDGE (s, d) WEIGHT w USING LANDMARKS(6)").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let sql = "EXPLAIN ANALYZE \
               WITH pairs (a, b) AS (VALUES (0, 9), (1, 17), (2, 33), (140, 7)) \
               SELECT pairs.a, pairs.b, CHEAPEST SUM(f: f.w) AS cost \
               FROM pairs WHERE pairs.a REACHES pairs.b OVER e f EDGE (s, d)";
    let collect = |session: &gsql::Session| {
        let plan = session.query(sql).unwrap();
        (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect::<Vec<_>>().join("\n")
    };
    let all = collect(&session);
    assert!(all.contains("settled="), "settled count missing:\n{all}");
    if kind_forced() {
        // A forced kind may turn the landmark DDL into a CH build.
        assert!(
            all.contains("(alt-multi, landmarks=") || all.contains("(ch-m2m, buckets="),
            "batch marker missing:\n{all}"
        );
    } else {
        assert!(all.contains("(alt-multi, landmarks="), "alt-multi detail missing:\n{all}");
    }
    // A CH index covering the same query wins, and the detail line flips
    // to the bucket tier.
    db.execute("CREATE PATH INDEX cw ON e EDGE (s, d) WEIGHT w USING CONTRACTION").unwrap();
    let all = collect(&session);
    assert!(
        all.contains("(ch-m2m, buckets=") || (kind_forced() && all.contains("(alt-multi")),
        "ch-m2m detail missing:\n{all}"
    );
    // The fallback run reports no batch detail.
    session.execute("SET path_index = off").unwrap();
    let all = collect(&session);
    assert!(!all.contains("settled="), "fallback must not report settled:\n{all}");
}

#[test]
fn batch_mutation_invalidates_index() {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL)").unwrap();
    db.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4), (4, 5)").unwrap();
    db.execute("CREATE PATH INDEX ph ON e EDGE (s, d) USING LANDMARKS(3)").unwrap();
    let session = db.session();
    session.execute("SET path_index = on").unwrap();
    let sql = "WITH pairs (a, b) AS (VALUES (1, 5), (2, 5)) \
               SELECT pairs.a, pairs.b, CHEAPEST SUM(1) AS hops \
               FROM pairs WHERE pairs.a REACHES pairs.b OVER e EDGE (s, d)";
    let t = session.query(sql).unwrap();
    assert_eq!(t.row(0)[2], Value::Int(4));
    assert_eq!(t.row(1)[2], Value::Int(3));
    // A shortcut edge must show up in the batched answer immediately: the
    // table version moved, so the index data rebuilds lazily.
    session.execute("INSERT INTO e VALUES (1, 4)").unwrap();
    let t = session.query(sql).unwrap();
    assert_eq!(t.row(0)[2], Value::Int(2));
    assert_eq!(t.row(1)[2], Value::Int(3));
    // Deleting it restores the long route.
    session.execute("DELETE FROM e WHERE s = 1 AND d = 4").unwrap();
    let t = session.query(sql).unwrap();
    assert_eq!(t.row(0)[2], Value::Int(4));
}
