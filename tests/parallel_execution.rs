//! End-to-end parallel execution: for every query shape the engine
//! parallelizes (graph traversals, filters, hash joins, grouped
//! aggregation, distinct, limit),
//! sessions running with `threads ∈ {1, 2, 8}` must produce identical
//! result tables — `threads = 1` is the engine's exact sequential path, so
//! this pins the parallel runtime to sequential semantics.

use gsql::{Database, Value};

/// A deterministic pseudo-random database: a layered graph with shortcut
/// edges, weights, and a `people` table for join shapes.
fn build_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE people (id INTEGER NOT NULL, grp INTEGER NOT NULL)").unwrap();
    // xorshift-ish deterministic edge set over 120 vertices.
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut edges = String::new();
    for i in 0..600 {
        let s = next() % 120;
        let d = next() % 120;
        let w = next() % 9 + 1;
        if i > 0 {
            edges.push_str(", ");
        }
        edges.push_str(&format!("({s}, {d}, {w})"));
    }
    db.execute(&format!("INSERT INTO e VALUES {edges}")).unwrap();
    let mut people = String::new();
    for id in 0..120 {
        if id > 0 {
            people.push_str(", ");
        }
        people.push_str(&format!("({id}, {})", id % 7));
    }
    db.execute(&format!("INSERT INTO people VALUES {people}")).unwrap();
    db
}

/// The query shapes under test: graph select (unweighted + weighted +
/// path-producing), graph join, hash join, filter fallback, grouped
/// aggregation (hash-partitioned when parallel), distinct, limit/offset,
/// union.
fn queries() -> Vec<String> {
    let mut pair_rows = String::new();
    for i in 0..40 {
        if i > 0 {
            pair_rows.push_str(", ");
        }
        pair_rows.push_str(&format!("({}, {})", (i * 13) % 120, (i * 29 + 7) % 120));
    }
    vec![
        format!(
            "WITH pairs (s, d) AS (VALUES {pair_rows}) \
             SELECT pairs.s, pairs.d, CHEAPEST SUM(1) AS distance \
             FROM pairs WHERE pairs.s REACHES pairs.d OVER e EDGE (s, d)"
        ),
        format!(
            "WITH pairs (s, d) AS (VALUES {pair_rows}) \
             SELECT pairs.s, pairs.d, CHEAPEST SUM(f: f.w) AS cost \
             FROM pairs WHERE pairs.s REACHES pairs.d OVER e f EDGE (s, d)"
        ),
        "SELECT CHEAPEST SUM(1) AS (cost, path) WHERE 0 REACHES 77 OVER e EDGE (s, d)".to_string(),
        "SELECT p1.id, p2.id FROM people p1, people p2 \
         WHERE p1.grp = 0 AND p2.grp = 1 AND p1.id REACHES p2.id OVER e EDGE (s, d)"
            .to_string(),
        "SELECT p1.id, p2.id, p1.grp FROM people p1, people p2 WHERE p1.grp = p2.grp \
         AND p1.id < p2.id ORDER BY p1.id, p2.id"
            .to_string(),
        "SELECT people.id + people.grp FROM people WHERE people.id % 3 = people.grp".to_string(),
        "SELECT e.s % 13 AS g, COUNT(*) AS n, SUM(e.w) AS s, AVG(e.w) AS a \
         FROM e GROUP BY e.s % 13 ORDER BY g"
            .to_string(),
        "SELECT DISTINCT e.s % 10, e.w FROM e".to_string(),
        "SELECT e.s, e.d FROM e ORDER BY e.s, e.d LIMIT 25 OFFSET 100".to_string(),
        "SELECT e.s FROM e UNION SELECT e.d FROM e".to_string(),
    ]
}

#[test]
fn identical_tables_across_thread_counts() {
    let db = build_db();
    for sql in queries() {
        let s1 = db.session();
        s1.set("threads", "1").unwrap();
        let reference = s1.query(&sql).unwrap();
        for threads in ["2", "8"] {
            let s = db.session();
            s.set("threads", threads).unwrap();
            let t = s.query(&sql).unwrap();
            assert_eq!(t.row_count(), reference.row_count(), "threads {threads}: {sql}");
            assert_eq!(
                t.schema().to_string(),
                reference.schema().to_string(),
                "threads {threads}: {sql}"
            );
            for r in 0..reference.row_count() {
                assert_eq!(t.row(r), reference.row(r), "threads {threads} row {r}: {sql}");
            }
        }
    }
}

#[test]
fn graph_index_path_identical_across_thread_counts() {
    let db = build_db();
    db.execute("CREATE GRAPH INDEX ge ON e EDGE (s, d)").unwrap();
    for sql in queries() {
        let s1 = db.session();
        s1.set("threads", "1").unwrap();
        let reference = s1.query(&sql).unwrap();
        let s8 = db.session();
        s8.set("threads", "8").unwrap();
        let t = s8.query(&sql).unwrap();
        assert_eq!(t.row_count(), reference.row_count(), "{sql}");
        for r in 0..reference.row_count() {
            assert_eq!(t.row(r), reference.row(r), "row {r}: {sql}");
        }
    }
}

#[test]
fn set_threads_validation_and_show() {
    let db = Database::new();
    let session = db.session();

    let err = session.execute("SET threads = 0").unwrap_err();
    assert!(err.to_string().contains("positive integer"), "{err}");
    let err = session.execute("SET threads = lots").unwrap_err();
    assert!(err.to_string().contains("non-negative integer"), "{err}");
    // Failed SETs leave the session usable with its previous value.
    session.execute("SET threads = 3").unwrap();
    let t = session.query("SHOW threads").unwrap();
    assert_eq!(t.row(0)[0], Value::from("threads"));
    assert_eq!(t.row(0)[1], Value::from("3"));

    // threads appears in SHOW ALL alongside the existing settings.
    let all = session.query("SHOW ALL").unwrap();
    let names: Vec<String> = (0..all.row_count()).map(|i| all.row(i)[0].to_string()).collect();
    for expected in ["graph_index", "plan_cache_size", "row_limit", "threads"] {
        assert!(names.contains(&expected.to_string()), "SHOW ALL missing {expected}");
    }
}

#[test]
fn explain_analyze_reports_correct_rows_under_parallel_execution() {
    let db = build_db();
    let session = db.session();
    session.set("threads", "8").unwrap();

    // 600 edges scanned; the filter keeps w = 1 rows. Row counts in the
    // EXPLAIN ANALYZE output must match a direct count even though the
    // filter and scan run under the parallel runtime.
    let expected = db.query("SELECT * FROM e WHERE e.w = 1").unwrap().row_count();
    let plan = session.query("EXPLAIN ANALYZE SELECT * FROM e WHERE e.w = 1").unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(all.contains(&format!("rows={expected}")), "filter rows missing:\n{all}");
    assert!(all.contains("rows=600"), "scan rows missing:\n{all}");
    assert!(all.contains("Result:"), "total line missing:\n{all}");

    // A graph query under parallel traversal still reports per-operator
    // rows (the GraphSelect output row count).
    let reachable = session
        .query("SELECT CHEAPEST SUM(1) WHERE 0 REACHES 77 OVER e EDGE (s, d)")
        .unwrap()
        .row_count();
    let plan = session
        .query("EXPLAIN ANALYZE SELECT CHEAPEST SUM(1) WHERE 0 REACHES 77 OVER e EDGE (s, d)")
        .unwrap();
    let all: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = all.join("\n");
    assert!(all.contains(&format!("rows={reachable}")), "graph rows missing:\n{all}");
}

#[test]
fn threads_setting_is_session_local() {
    let db = build_db();
    let a = db.session();
    let b = db.session();
    a.set("threads", "1").unwrap();
    b.set("threads", "8").unwrap();
    assert_eq!(a.setting("threads").unwrap(), "1");
    assert_eq!(b.setting("threads").unwrap(), "8");
    // Both sessions agree on results regardless of their width.
    let sql = "SELECT DISTINCT e.w FROM e ORDER BY 1";
    // ORDER BY ordinal may not be supported; use column reference instead.
    let sql = if db.session().query(sql).is_ok() {
        sql.to_string()
    } else {
        "SELECT DISTINCT e.w FROM e ORDER BY e.w".to_string()
    };
    let ta = a.query(&sql).unwrap();
    let tb = b.query(&sql).unwrap();
    assert_eq!(ta.row_count(), tb.row_count());
    for i in 0..ta.row_count() {
        assert_eq!(ta.row(i), tb.row(i));
    }
}
