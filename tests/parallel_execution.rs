//! End-to-end parallel execution: for every query shape the engine
//! parallelizes (graph traversals, filters, hash joins, grouped
//! aggregation, distinct, limit),
//! sessions running with `threads ∈ {1, 2, 8}` must produce identical
//! result tables — `threads = 1` is the engine's exact sequential path, so
//! this pins the parallel runtime to sequential semantics.

use gsql::{Database, Value};

/// A deterministic pseudo-random database: a layered graph with shortcut
/// edges, weights, and a `people` table for join shapes.
fn build_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    db.execute("CREATE TABLE people (id INTEGER NOT NULL, grp INTEGER NOT NULL)").unwrap();
    // xorshift-ish deterministic edge set over 120 vertices.
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut edges = String::new();
    for i in 0..600 {
        let s = next() % 120;
        let d = next() % 120;
        let w = next() % 9 + 1;
        if i > 0 {
            edges.push_str(", ");
        }
        edges.push_str(&format!("({s}, {d}, {w})"));
    }
    db.execute(&format!("INSERT INTO e VALUES {edges}")).unwrap();
    let mut people = String::new();
    for id in 0..120 {
        if id > 0 {
            people.push_str(", ");
        }
        people.push_str(&format!("({id}, {})", id % 7));
    }
    db.execute(&format!("INSERT INTO people VALUES {people}")).unwrap();
    // Float measurements for aggregate-determinism shapes: values with
    // non-trivial binary fractions so any reordering of a float SUM/AVG
    // would change the bits.
    db.execute("CREATE TABLE m (k INTEGER NOT NULL, v DOUBLE NOT NULL)").unwrap();
    let mut rows = String::new();
    for i in 0..500 {
        if i > 0 {
            rows.push_str(", ");
        }
        rows.push_str(&format!("({}, {})", i % 11, (i as f64) * 0.1 + 0.003));
    }
    db.execute(&format!("INSERT INTO m VALUES {rows}")).unwrap();
    db
}

/// The query shapes under test: graph select (unweighted + weighted +
/// path-producing), graph join, hash join, filter fallback, grouped
/// aggregation (hash-partitioned when parallel), distinct, limit/offset,
/// union.
fn queries() -> Vec<String> {
    let mut pair_rows = String::new();
    for i in 0..40 {
        if i > 0 {
            pair_rows.push_str(", ");
        }
        pair_rows.push_str(&format!("({}, {})", (i * 13) % 120, (i * 29 + 7) % 120));
    }
    vec![
        format!(
            "WITH pairs (s, d) AS (VALUES {pair_rows}) \
             SELECT pairs.s, pairs.d, CHEAPEST SUM(1) AS distance \
             FROM pairs WHERE pairs.s REACHES pairs.d OVER e EDGE (s, d)"
        ),
        format!(
            "WITH pairs (s, d) AS (VALUES {pair_rows}) \
             SELECT pairs.s, pairs.d, CHEAPEST SUM(f: f.w) AS cost \
             FROM pairs WHERE pairs.s REACHES pairs.d OVER e f EDGE (s, d)"
        ),
        "SELECT CHEAPEST SUM(1) AS (cost, path) WHERE 0 REACHES 77 OVER e EDGE (s, d)".to_string(),
        "SELECT p1.id, p2.id FROM people p1, people p2 \
         WHERE p1.grp = 0 AND p2.grp = 1 AND p1.id REACHES p2.id OVER e EDGE (s, d)"
            .to_string(),
        "SELECT p1.id, p2.id, p1.grp FROM people p1, people p2 WHERE p1.grp = p2.grp \
         AND p1.id < p2.id ORDER BY p1.id, p2.id"
            .to_string(),
        "SELECT people.id + people.grp FROM people WHERE people.id % 3 = people.grp".to_string(),
        "SELECT e.s % 13 AS g, COUNT(*) AS n, SUM(e.w) AS s, AVG(e.w) AS a \
         FROM e GROUP BY e.s % 13 ORDER BY g"
            .to_string(),
        "SELECT DISTINCT e.s % 10, e.w FROM e".to_string(),
        "SELECT e.s, e.d FROM e ORDER BY e.s, e.d LIMIT 25 OFFSET 100".to_string(),
        "SELECT e.s FROM e UNION SELECT e.d FROM e".to_string(),
    ]
}

#[test]
fn identical_tables_across_thread_counts() {
    let db = build_db();
    for sql in queries() {
        let s1 = db.session();
        s1.set("threads", "1").unwrap();
        let reference = s1.query(&sql).unwrap();
        for threads in ["2", "8"] {
            let s = db.session();
            s.set("threads", threads).unwrap();
            let t = s.query(&sql).unwrap();
            assert_eq!(t.row_count(), reference.row_count(), "threads {threads}: {sql}");
            assert_eq!(
                t.schema().to_string(),
                reference.schema().to_string(),
                "threads {threads}: {sql}"
            );
            for r in 0..reference.row_count() {
                assert_eq!(t.row(r), reference.row(r), "threads {threads} row {r}: {sql}");
            }
        }
    }
}

#[test]
fn graph_index_path_identical_across_thread_counts() {
    let db = build_db();
    db.execute("CREATE GRAPH INDEX ge ON e EDGE (s, d)").unwrap();
    for sql in queries() {
        let s1 = db.session();
        s1.set("threads", "1").unwrap();
        let reference = s1.query(&sql).unwrap();
        let s8 = db.session();
        s8.set("threads", "8").unwrap();
        let t = s8.query(&sql).unwrap();
        assert_eq!(t.row_count(), reference.row_count(), "{sql}");
        for r in 0..reference.row_count() {
            assert_eq!(t.row(r), reference.row(r), "row {r}: {sql}");
        }
    }
}

#[test]
fn set_threads_validation_and_show() {
    let db = Database::new();
    let session = db.session();

    let err = session.execute("SET threads = 0").unwrap_err();
    assert!(err.to_string().contains("positive integer"), "{err}");
    let err = session.execute("SET threads = lots").unwrap_err();
    assert!(err.to_string().contains("non-negative integer"), "{err}");
    // Failed SETs leave the session usable with its previous value.
    session.execute("SET threads = 3").unwrap();
    let t = session.query("SHOW threads").unwrap();
    assert_eq!(t.row(0)[0], Value::from("threads"));
    assert_eq!(t.row(0)[1], Value::from("3"));

    // threads appears in SHOW ALL alongside the existing settings.
    let all = session.query("SHOW ALL").unwrap();
    let names: Vec<String> = (0..all.row_count()).map(|i| all.row(i)[0].to_string()).collect();
    for expected in ["graph_index", "plan_cache_size", "row_limit", "threads"] {
        assert!(names.contains(&expected.to_string()), "SHOW ALL missing {expected}");
    }
}

#[test]
fn explain_analyze_reports_correct_rows_under_parallel_execution() {
    let db = build_db();
    let session = db.session();
    session.set("threads", "8").unwrap();

    // 600 edges scanned; the filter keeps w = 1 rows. Row counts in the
    // EXPLAIN ANALYZE output must match a direct count even though the
    // filter and scan run under the parallel runtime.
    let expected = db.query("SELECT * FROM e WHERE e.w = 1").unwrap().row_count();
    let plan = session.query("EXPLAIN ANALYZE SELECT * FROM e WHERE e.w = 1").unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(all.contains(&format!("rows={expected}")), "filter rows missing:\n{all}");
    assert!(all.contains("rows=600"), "scan rows missing:\n{all}");
    assert!(all.contains("Result:"), "total line missing:\n{all}");

    // A graph query under parallel traversal still reports per-operator
    // rows (the GraphSelect output row count).
    let reachable = session
        .query("SELECT CHEAPEST SUM(1) WHERE 0 REACHES 77 OVER e EDGE (s, d)")
        .unwrap()
        .row_count();
    let plan = session
        .query("EXPLAIN ANALYZE SELECT CHEAPEST SUM(1) WHERE 0 REACHES 77 OVER e EDGE (s, d)")
        .unwrap();
    let all: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = all.join("\n");
    assert!(all.contains(&format!("rows={reachable}")), "graph rows missing:\n{all}");
}

/// Query shapes that exercise the morsel-driven pipeline engine
/// specifically: fused scan→filter→project chains, hash-join probes,
/// float aggregates, LIMIT short-circuits, and graph-fed relational plans.
fn pipeline_queries() -> Vec<String> {
    vec![
        // Fused filter→project chain.
        "SELECT people.id * 2 + people.grp FROM people WHERE people.id % 3 <> 1".to_string(),
        // Hash-join probe inside a pipeline, aggregated. (The explicit
        // JOIN ... ON form is the one that plans as an equi join; comma
        // joins stay cross-product + filter.)
        "SELECT p1.grp, COUNT(*) AS n FROM people p1 JOIN people p2 ON p1.grp = p2.grp \
         GROUP BY p1.grp ORDER BY p1.grp"
            .to_string(),
        // Probe feeding a fused filter and projection, fully materialized.
        "SELECT p1.id, p2.id + 1 FROM people p1 JOIN people p2 ON p1.grp = p2.grp \
         WHERE p1.id % 4 <> 2"
            .to_string(),
        // Float SUM/AVG with non-trivial binary fractions: any reordering
        // of the accumulation changes the bits.
        "SELECT m.k, SUM(m.v) AS s, AVG(m.v) AS a FROM m GROUP BY m.k ORDER BY m.k".to_string(),
        "SELECT SUM(m.v), AVG(m.v), COUNT(*) FROM m".to_string(),
        // DISTINCT aggregate across morsels (dedup happens at merge).
        "SELECT COUNT(DISTINCT e.w), SUM(DISTINCT e.w) FROM e".to_string(),
        // LIMIT short-circuit: producers stop once enough rows exist, and
        // the kept prefix must equal the sequential prefix.
        "SELECT e.s, e.d, e.w FROM e WHERE e.w > 2 LIMIT 17 OFFSET 5".to_string(),
        "SELECT people.id FROM people LIMIT 3".to_string(),
        // Mixed graph + relational: traversal output feeds a pipelined
        // filter/aggregate.
        "SELECT COUNT(*) AS n, SUM(c.cost) AS total FROM (\
            SELECT p1.id AS a, p2.id AS b, CHEAPEST SUM(1) AS cost \
            FROM people p1, people p2 \
            WHERE p1.grp = 0 AND p2.grp = 1 \
              AND p1.id REACHES p2.id OVER e EDGE (s, d)) c \
         WHERE c.cost < 5"
            .to_string(),
    ]
}

/// The determinism contract of the pipeline engine: morsel boundaries
/// depend only on the input size and `morsel_rows`, and partials merge in
/// morsel-index order — so every query (including float SUM/AVG, whose
/// accumulation order is observable in the result bits) is byte-identical
/// at threads 1, 2, 4 and 8. `morsel_rows = 7` forces dozens of morsels so
/// the merge path is actually exercised.
#[test]
fn pipelined_plans_identical_across_thread_counts() {
    let db = build_db();
    for sql in pipeline_queries() {
        let reference = {
            let s = db.session();
            s.set("threads", "1").unwrap();
            s.set("pipeline", "on").unwrap();
            s.set("morsel_rows", "7").unwrap();
            s.query(&sql).unwrap()
        };
        for threads in ["2", "4", "8"] {
            let s = db.session();
            s.set("threads", threads).unwrap();
            s.set("pipeline", "on").unwrap();
            s.set("morsel_rows", "7").unwrap();
            let t = s.query(&sql).unwrap();
            assert_eq!(t.row_count(), reference.row_count(), "threads {threads}: {sql}");
            for r in 0..reference.row_count() {
                assert_eq!(t.row(r), reference.row(r), "threads {threads} row {r}: {sql}");
            }
        }
    }
}

/// Pipelined execution must agree with the barrier engine. `morsel_rows`
/// is pinned high enough that every input here fits one morsel (the
/// environment may shrink the default — CI runs with GSQL_MORSEL_ROWS=7),
/// so even float accumulation order matches the sequential fold exactly.
#[test]
fn pipeline_matches_barrier_engine() {
    let db = build_db();
    for sql in queries().into_iter().chain(pipeline_queries()) {
        let barrier = {
            let s = db.session();
            s.set("pipeline", "off").unwrap();
            s.set("threads", "4").unwrap();
            s.query(&sql).unwrap()
        };
        let pipelined = {
            let s = db.session();
            s.set("pipeline", "on").unwrap();
            s.set("threads", "4").unwrap();
            s.set("morsel_rows", "1000000").unwrap();
            s.query(&sql).unwrap()
        };
        assert_eq!(pipelined.row_count(), barrier.row_count(), "{sql}");
        for r in 0..barrier.row_count() {
            assert_eq!(pipelined.row(r), barrier.row(r), "row {r}: {sql}");
        }
    }
}

/// Integer-valued results are also invariant to the morsel size itself
/// (float accumulation order legitimately varies with boundaries, integer
/// sums never do).
#[test]
fn integer_results_invariant_to_morsel_size() {
    let db = build_db();
    let sqls = [
        "SELECT e.s % 13 AS g, COUNT(*) AS n, SUM(e.w) AS s FROM e GROUP BY e.s % 13 ORDER BY g",
        "SELECT e.s, e.d, e.w FROM e WHERE e.w > 2 LIMIT 17 OFFSET 5",
        "SELECT COUNT(DISTINCT e.w), SUM(DISTINCT e.w) FROM e",
        "SELECT p1.grp, COUNT(*) AS n FROM people p1, people p2 \
         WHERE p1.grp = p2.grp GROUP BY p1.grp ORDER BY p1.grp",
    ];
    for sql in sqls {
        let reference = {
            let s = db.session();
            s.set("pipeline", "on").unwrap();
            s.set("morsel_rows", "7").unwrap();
            s.set("threads", "8").unwrap();
            s.query(sql).unwrap()
        };
        for morsel_rows in ["1", "64", "100000"] {
            let s = db.session();
            s.set("pipeline", "on").unwrap();
            s.set("morsel_rows", morsel_rows).unwrap();
            s.set("threads", "8").unwrap();
            let t = s.query(sql).unwrap();
            assert_eq!(t.row_count(), reference.row_count(), "morsel_rows {morsel_rows}: {sql}");
            for r in 0..reference.row_count() {
                assert_eq!(t.row(r), reference.row(r), "morsel_rows {morsel_rows} row {r}: {sql}");
            }
        }
    }
}

/// LIMIT under concurrency: the morsel queue hands out a contiguous prefix
/// of morsels, so stopping production early can never skip a row that the
/// sequential prefix would contain.
#[test]
fn limit_short_circuit_is_exact_under_concurrency() {
    let db = build_db();
    let all = {
        let s = db.session();
        s.set("pipeline", "off").unwrap();
        s.query("SELECT e.s, e.d, e.w FROM e WHERE e.w >= 2").unwrap()
    };
    for (limit, offset) in [(1usize, 0usize), (10, 0), (25, 100), (1000, 0), (50, 380)] {
        let s = db.session();
        s.set("pipeline", "on").unwrap();
        s.set("morsel_rows", "7").unwrap();
        s.set("threads", "8").unwrap();
        let t = s
            .query(&format!(
                "SELECT e.s, e.d, e.w FROM e WHERE e.w >= 2 LIMIT {limit} OFFSET {offset}"
            ))
            .unwrap();
        let expected = all.row_count().saturating_sub(offset).min(limit);
        assert_eq!(t.row_count(), expected, "LIMIT {limit} OFFSET {offset}");
        for r in 0..t.row_count() {
            assert_eq!(t.row(r), all.row(offset + r), "LIMIT {limit} OFFSET {offset} row {r}");
        }
    }
}

/// `EXPLAIN` annotates pipeline membership; breakers (sort, distinct,
/// graph ops) stay barrier nodes and are labelled as such.
#[test]
fn explain_annotates_pipelines_and_breakers() {
    let db = build_db();
    let session = db.session();
    session.set("pipeline", "on").unwrap();
    let plan = session
        .query("EXPLAIN SELECT e.s % 13 AS g, COUNT(*) AS n FROM e GROUP BY e.s % 13 ORDER BY g")
        .unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(all.contains("[pipeline 0]"), "no pipeline annotation:\n{all}");
    assert!(all.contains("Sort"), "{all}");
    assert!(all.contains("[breaker]"), "no breaker annotation:\n{all}");

    // With the engine off the plain plan comes back.
    session.set("pipeline", "off").unwrap();
    let plan = session
        .query("EXPLAIN SELECT e.s % 13 AS g, COUNT(*) AS n FROM e GROUP BY e.s % 13 ORDER BY g")
        .unwrap();
    let text: Vec<String> = (0..plan.row_count()).map(|i| plan.row(i)[0].to_string()).collect();
    let all = text.join("\n");
    assert!(!all.contains("[pipeline"), "pipeline annotation with engine off:\n{all}");
}

#[test]
fn threads_setting_is_session_local() {
    let db = build_db();
    let a = db.session();
    let b = db.session();
    a.set("threads", "1").unwrap();
    b.set("threads", "8").unwrap();
    assert_eq!(a.setting("threads").unwrap(), "1");
    assert_eq!(b.setting("threads").unwrap(), "8");
    // Both sessions agree on results regardless of their width.
    let sql = "SELECT DISTINCT e.w FROM e ORDER BY 1";
    // ORDER BY ordinal may not be supported; use column reference instead.
    let sql = if db.session().query(sql).is_ok() {
        sql.to_string()
    } else {
        "SELECT DISTINCT e.w FROM e ORDER BY e.w".to_string()
    };
    let ta = a.query(&sql).unwrap();
    let tb = b.query(&sql).unwrap();
    assert_eq!(ta.row_count(), tb.row_count());
    for i in 0..ta.row_count() {
        assert_eq!(ta.row(i), tb.row(i));
    }
}
