//! The paper's appendix A, reproduced query by query against the sample
//! data of its Figure 2 (Persons / Friends with Mahinda Perera 933,
//! Carmen Lepland 1129, Chen Wang 8333).
//!
//! Expected result sets are the ones printed in the paper.

use gsql::{Database, Value};

/// Figure 2 sample data, reconstructed from the worked examples:
/// * 933 — 1129 friendship created 2010-03-24, weight 0.5
/// * 1129 — 8333 friendship created 2010-12-02, weight 2.0
/// * later (≥ 2011) friendships connect further persons, so the A.3
///   subgraph (creationDate < 2011-01-01) contains exactly the three
///   persons of the published result.
fn figure2_database() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE persons (id INTEGER PRIMARY KEY,
                               firstName VARCHAR NOT NULL,
                               lastName VARCHAR NOT NULL,
                               gender VARCHAR);
         CREATE TABLE friends (person1 INTEGER NOT NULL,
                               person2 INTEGER NOT NULL,
                               creationDate DATE NOT NULL,
                               weight DOUBLE NOT NULL);
         INSERT INTO persons VALUES
            (933,  'Mahinda', 'Perera',  'male'),
            (1129, 'Carmen',  'Lepland', 'female'),
            (8333, 'Chen',    'Wang',    'male'),
            (4139, 'Hans',    'Johansson', 'male'),
            (6597, 'Otto',    'Richter', 'male');
         INSERT INTO friends VALUES
            (933,  1129, '2010-03-24', 0.5), (1129, 933,  '2010-03-24', 0.5),
            (1129, 8333, '2010-12-02', 2.0), (8333, 1129, '2010-12-02', 2.0),
            (8333, 4139, '2011-06-10', 1.0), (4139, 8333, '2011-06-10', 1.0),
            (4139, 6597, '2012-02-01', 3.0), (6597, 4139, '2012-02-01', 3.0);",
    )
    .unwrap();
    db
}

#[test]
fn a1_cost_of_a_shortest_path() {
    // SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst);
    let db = figure2_database();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)",
            &[Value::Int(933), Value::Int(8333)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::Int(2));
}

#[test]
fn a2_vertex_properties() {
    // Binding the parameters to 933 and 8333, the result set is:
    //   Mahinda Perera | Chen Wang | 2
    let db = figure2_database();
    let t = db
        .query_with_params(
            "SELECT p1.firstName || ' ' || p1.lastName AS person1,
                    p2.firstName || ' ' || p2.lastName AS person2,
                    CHEAPEST SUM(1) AS distance
             FROM persons p1, persons p2
             WHERE p1.id = ?
               AND p2.id = ?
               AND p1.id REACHES p2.id OVER friends EDGE (person1, person2)",
            &[Value::Int(933), Value::Int(8333)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(
        t.row(0),
        vec![Value::from("Mahinda Perera"), Value::from("Chen Wang"), Value::Int(2)]
    );
}

#[test]
fn a3_reachability_in_dated_subgraph() {
    // Result set with the parameter bound to 933:
    //   Mahinda Perera / Carmen Lepland / Chen Wang
    let db = figure2_database();
    let t = db
        .query_with_params(
            "WITH friends1 AS (
                SELECT *
                FROM friends
                WHERE creationDate < '2011-01-01'
             )
             SELECT firstName || ' ' || lastName AS person
             FROM persons
             WHERE ? REACHES id OVER friends1 EDGE (person1, person2)",
            &[Value::Int(933)],
        )
        .unwrap();
    let mut names: Vec<String> = t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect();
    names.sort();
    assert_eq!(names, vec!["Carmen Lepland", "Chen Wang", "Mahinda Perera"]);
}

#[test]
fn a4_multiple_weighted_shortest_paths() {
    // The derived table of A.4 (paper's printed result):
    //   Mahinda Perera | 0 | (empty path)
    //   Carmen Lepland | 1 | one edge   (933 -> 1129, weight 0.5)
    //   Chen Wang      | 5 | two edges  (933 -> 1129 -> 8333)
    let db = figure2_database();
    let t = db
        .query_with_params(
            "WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
             )
             SELECT firstName || ' ' || lastName AS person,
                    CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path)
             FROM persons
             WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
             ORDER BY cost",
            &[Value::Int(933)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 3);
    assert_eq!(t.row(0)[0], Value::from("Mahinda Perera"));
    assert_eq!(t.row(0)[1], Value::Int(0));
    assert_eq!(t.row(0)[2].as_path().unwrap().len(), 0);
    assert_eq!(t.row(1)[0], Value::from("Carmen Lepland"));
    assert_eq!(t.row(1)[1], Value::Int(1));
    assert_eq!(t.row(1)[2].as_path().unwrap().len(), 1);
    assert_eq!(t.row(2)[0], Value::from("Chen Wang"));
    assert_eq!(t.row(2)[1], Value::Int(5));
    assert_eq!(t.row(2)[2].as_path().unwrap().len(), 2);
}

#[test]
fn a4_unnested_result_set() {
    // Unnesting the path produces the final result set of the appendix:
    //   Carmen Lepland | 1 | 933  1129 2010-03-24 0.5
    //   Chen Wang      | 5 | 933  1129 2010-03-24 0.5
    //   Chen Wang      | 5 | 1129 8333 2010-12-02 2.0
    // "the first row (Mahinda Perera) is discarded as its path is empty".
    let db = figure2_database();
    let t = db
        .query_with_params(
            "WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
             )
             SELECT T.person, T.cost, R.person1, R.person2, R.creationDate, R.weight
             FROM (
                SELECT firstName || ' ' || lastName AS person,
                       CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path)
                FROM persons
                WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
             ) T, UNNEST(T.path) AS R
             ORDER BY T.cost, R.person1",
            &[Value::Int(933)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 3);
    let date1 = Value::Date(gsql::Date::parse("2010-03-24").unwrap());
    let date2 = Value::Date(gsql::Date::parse("2010-12-02").unwrap());
    assert_eq!(
        t.row(0),
        vec![
            Value::from("Carmen Lepland"),
            Value::Int(1),
            Value::Int(933),
            Value::Int(1129),
            date1.clone(),
            Value::Double(0.5),
        ]
    );
    assert_eq!(
        t.row(1),
        vec![
            Value::from("Chen Wang"),
            Value::Int(5),
            Value::Int(933),
            Value::Int(1129),
            date1,
            Value::Double(0.5),
        ]
    );
    assert_eq!(
        t.row(2),
        vec![
            Value::from("Chen Wang"),
            Value::Int(5),
            Value::Int(1129),
            Value::Int(8333),
            date2,
            Value::Double(2.0),
        ]
    );
}

#[test]
fn a4_left_outer_variant_retains_empty_path() {
    // "it can alternatively be retained by using a left outer lateral join".
    let db = figure2_database();
    let t = db
        .query_with_params(
            "WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
             )
             SELECT T.person, T.cost, R.person1
             FROM (
                SELECT firstName || ' ' || lastName AS person,
                       CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path)
                FROM persons
                WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
             ) T LEFT JOIN UNNEST(T.path) AS R
             ORDER BY T.cost, R.person1",
            &[Value::Int(933)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 4);
    assert_eq!(t.row(0)[0], Value::from("Mahinda Perera"));
    assert!(t.row(0)[2].is_null());
}
