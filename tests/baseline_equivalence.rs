//! Cross-validation of the native graph operator against the paper-§1
//! "customary method" baselines on randomized graphs: all three strategies
//! must agree on every reachability/distance answer.

use gsql::engine::baseline::{khop_join_distance, seminaive_distance};
use gsql::{Database, Value};
use rand::prelude::*;
use rand::rngs::SmallRng;

fn random_db(rng: &mut SmallRng, n_vertices: i64, n_edges: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL)").unwrap();
    let mut script = String::from("INSERT INTO e VALUES ");
    for i in 0..n_edges {
        if i > 0 {
            script.push_str(", ");
        }
        script.push_str(&format!(
            "({}, {})",
            rng.gen_range(1..=n_vertices),
            rng.gen_range(1..=n_vertices)
        ));
    }
    db.execute(&script).unwrap();
    db
}

fn native_distance(db: &Database, s: i64, d: i64) -> Option<i64> {
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(s), Value::Int(d)],
        )
        .unwrap();
    if t.is_empty() {
        None
    } else {
        t.row(0)[0].as_int()
    }
}

#[test]
fn native_equals_seminaive_on_random_graphs() {
    let mut rng = SmallRng::seed_from_u64(99);
    for round in 0..15 {
        let n: i64 = rng.gen_range(2..25);
        let m: usize = rng.gen_range(1..80);
        let db = random_db(&mut rng, n, m);
        let edges = db.catalog().get("e").unwrap();
        for _ in 0..12 {
            let s = rng.gen_range(1..=n);
            let d = rng.gen_range(1..=n);
            let native = native_distance(&db, s, d);
            let reference =
                seminaive_distance(&edges, 0, 1, &Value::Int(s), &Value::Int(d)).unwrap();
            assert_eq!(native, reference, "round {round}: pair ({s},{d})");
        }
    }
}

#[test]
fn native_equals_khop_within_bound() {
    let mut rng = SmallRng::seed_from_u64(123);
    for _ in 0..8 {
        let n: i64 = rng.gen_range(2..12);
        let m: usize = rng.gen_range(1..25);
        let db = random_db(&mut rng, n, m);
        let edges = db.catalog().get("e").unwrap();
        for _ in 0..8 {
            let s = rng.gen_range(1..=n);
            let d = rng.gen_range(1..=n);
            let native = native_distance(&db, s, d);
            // Bound k = n covers every simple shortest path; the row cap is
            // generous for these sizes.
            match khop_join_distance(
                &edges,
                0,
                1,
                &Value::Int(s),
                &Value::Int(d),
                n as usize,
                1 << 40,
            ) {
                Ok(reference) => {
                    // k-hop does not check vertex membership for s == d.
                    if s != d {
                        assert_eq!(native, reference, "pair ({s},{d})");
                    }
                }
                Err(_) => {
                    // Combinatorial blow-up: acceptable for the baseline,
                    // that is its documented failure mode.
                }
            }
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn weighted_native_matches_brute_force() {
    // Exhaustive Floyd-Warshall check on small weighted graphs.
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..10 {
        let n: usize = rng.gen_range(2..10);
        let m: usize = rng.gen_range(1..30);
        let db = Database::new();
        db.execute("CREATE TABLE e (s INTEGER, d INTEGER, w INTEGER)").unwrap();
        let mut dist = vec![vec![i64::MAX; n + 1]; n + 1];
        let mut script = String::from("INSERT INTO e VALUES ");
        for i in 0..m {
            let s = rng.gen_range(1..=n);
            let d = rng.gen_range(1..=n);
            let w = rng.gen_range(1..20i64);
            if i > 0 {
                script.push_str(", ");
            }
            script.push_str(&format!("({s}, {d}, {w})"));
            dist[s][d] = dist[s][d].min(w);
        }
        db.execute(&script).unwrap();
        #[allow(clippy::needless_range_loop)]
        for v in 1..=n {
            dist[v][v] = 0;
        }
        for k in 1..=n {
            for i in 1..=n {
                for j in 1..=n {
                    if dist[i][k] != i64::MAX && dist[k][j] != i64::MAX {
                        dist[i][j] = dist[i][j].min(dist[i][k] + dist[k][j]);
                    }
                }
            }
        }
        let edges = db.catalog().get("e").unwrap();
        let is_vertex = |v: usize| {
            (0..edges.row_count()).any(|i| {
                edges.row(i)[0].as_int() == Some(v as i64)
                    || edges.row(i)[1].as_int() == Some(v as i64)
            })
        };
        for s in 1..=n {
            for d in 1..=n {
                let t = db
                    .query_with_params(
                        "SELECT CHEAPEST SUM(x: w) WHERE ? REACHES ? OVER e x EDGE (s, d)",
                        &[Value::Int(s as i64), Value::Int(d as i64)],
                    )
                    .unwrap();
                let native = if t.is_empty() { None } else { t.row(0)[0].as_int() };
                let expected = if is_vertex(s) && is_vertex(d) && dist[s][d] != i64::MAX {
                    Some(dist[s][d])
                } else {
                    None
                };
                assert_eq!(native, expected, "pair ({s},{d})");
            }
        }
    }
}
