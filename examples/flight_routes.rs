//! Flight routing over VARCHAR vertex keys, with CTE-filtered subgraphs —
//! the appendix A.3/A.4 query shapes on a different domain.
//!
//! Run with: `cargo run --example flight_routes`

use gsql::{Database, Value};

fn main() -> gsql::Result<()> {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE airports (code VARCHAR PRIMARY KEY, city VARCHAR NOT NULL);
         CREATE TABLE flights (origin VARCHAR NOT NULL, destination VARCHAR NOT NULL,
                               carrier VARCHAR NOT NULL, hours DOUBLE NOT NULL);
         INSERT INTO airports VALUES
            ('AMS', 'Amsterdam'), ('LHR', 'London'), ('JFK', 'New York'),
            ('SFO', 'San Francisco'), ('NRT', 'Tokyo'), ('SIN', 'Singapore'),
            ('DXB', 'Dubai');
         INSERT INTO flights VALUES
            ('AMS', 'LHR', 'KL', 1.2), ('LHR', 'AMS', 'BA', 1.2),
            ('AMS', 'JFK', 'KL', 8.1), ('JFK', 'AMS', 'DL', 7.4),
            ('LHR', 'JFK', 'BA', 8.0), ('JFK', 'SFO', 'UA', 6.5),
            ('SFO', 'NRT', 'UA', 11.0), ('NRT', 'SIN', 'NH', 7.5),
            ('AMS', 'DXB', 'KL', 6.8), ('DXB', 'SIN', 'EK', 7.6),
            ('SIN', 'NRT', 'SQ', 7.2), ('LHR', 'DXB', 'BA', 7.0);",
    )?;

    // Which cities can be reached from Amsterdam at all?
    println!("cities reachable from AMS:");
    let reachable = db.query(
        "SELECT a.city
         FROM airports a
         WHERE 'AMS' REACHES a.code OVER flights EDGE (origin, destination)
         ORDER BY a.city",
    )?;
    print!("{reachable}");

    // Fastest itinerary AMS -> NRT by total flight hours, with the legs.
    println!("\nfastest itinerary AMS -> NRT:");
    let itinerary = db.query(
        "SELECT T.total_hours, L.ordinality AS leg, L.origin, L.destination,
                L.carrier, L.hours
         FROM (
            SELECT CHEAPEST SUM(f: hours) AS (total_hours, legs)
            WHERE 'AMS' REACHES 'NRT' OVER flights f EDGE (origin, destination)
         ) T, UNNEST(T.legs) WITH ORDINALITY AS L
         ORDER BY leg",
    )?;
    print!("{itinerary}");

    // Restrict to one alliance via a CTE subgraph (appendix A.3 shape):
    // only KL/BA/UA flights.
    println!("\nreachable from AMS using only KL/BA/UA:");
    let alliance = db.query(
        "WITH partner_flights AS (
            SELECT * FROM flights WHERE carrier IN ('KL', 'BA', 'UA')
         )
         SELECT a.code, CHEAPEST SUM(p: 1) AS legs
         FROM airports a
         WHERE 'AMS' REACHES a.code OVER partner_flights p EDGE (origin, destination)
           AND a.code <> 'AMS'
         ORDER BY legs, a.code",
    )?;
    print!("{alliance}");

    // Count itineraries per destination distance, composing the graph
    // result with ordinary aggregation in an outer block.
    println!("\nhow many airports sit N legs away from AMS (cheapest-hop metric):");
    let histogram = db.query(
        "SELECT legs, COUNT(*) AS airports
         FROM (
            SELECT a.code, CHEAPEST SUM(f: 1) AS legs
            FROM airports a
            WHERE 'AMS' REACHES a.code OVER flights f EDGE (origin, destination)
         ) d
         GROUP BY legs ORDER BY legs",
    )?;
    print!("{histogram}");

    // One-way reachability: JFK cannot reach DXB in this network?
    let check = db.query(
        "SELECT COUNT(*) FROM (
            SELECT a.code FROM airports a
            WHERE 'JFK' REACHES a.code OVER flights EDGE (origin, destination)
              AND a.code = 'DXB'
         ) x",
    )?;
    let connected = check.row(0)[0] == Value::Int(1);
    println!("\nJFK -> DXB connected: {connected}");
    Ok(())
}
