//! Weighted routing on a road network, with a graph index (the paper's §6
//! future work) amortizing graph construction across queries.
//!
//! Run with: `cargo run --release --example road_network`

use gsql::datagen::road::grid_network;
use gsql::{Database, Value};
use std::time::Instant;

fn main() -> gsql::Result<()> {
    let width = 60u32;
    let height = 40u32;
    println!("building a {width}x{height} grid road network ...");
    let roads = grid_network(width, height, 15, 42);
    println!("  {} directed road segments", roads.row_count());

    let db = Database::new();
    db.catalog().register_table("roads", roads).map_err(gsql::Error::Storage)?;

    let corner_a = Value::Int(1); // top-left intersection
    let corner_b = Value::Int((width * height) as i64); // bottom-right

    // Fastest route by total minutes (integer weights -> Dijkstra with the
    // radix queue).
    let t0 = Instant::now();
    let fastest = db.query_with_params(
        "SELECT CHEAPEST SUM(r: minutes) AS (total_minutes, route)
         WHERE ? REACHES ? OVER roads r EDGE (src, dst)",
        &[corner_a.clone(), corner_b.clone()],
    )?;
    let no_index_time = t0.elapsed();
    let minutes = fastest.row(0)[0].clone();
    let hops = fastest.row(0)[1].as_path().map(|p| p.len()).unwrap_or(0);
    println!("fastest corner-to-corner route: {minutes} minutes over {hops} segments");

    // Fewest-turns route for comparison (unweighted).
    let fewest = db.query_with_params(
        "SELECT CHEAPEST SUM(1) AS segments
         WHERE ? REACHES ? OVER roads EDGE (src, dst)",
        &[corner_a.clone(), corner_b.clone()],
    )?;
    println!("fewest-segments route: {} segments", fewest.row(0)[0]);

    // First three turns of the fastest route, via UNNEST WITH ORDINALITY.
    println!("\nfirst three segments of the fastest route:");
    let turns = db.query_with_params(
        "SELECT R.ordinality AS step, R.src, R.dst, R.minutes
         FROM (
            SELECT CHEAPEST SUM(r: minutes) AS (cost, path)
            WHERE ? REACHES ? OVER roads r EDGE (src, dst)
         ) T, UNNEST(T.path) WITH ORDINALITY AS R
         WHERE R.ordinality <= 3
         ORDER BY step",
        &[corner_a.clone(), corner_b.clone()],
    )?;
    print!("{turns}");

    // A graph index caches the CSR; repeated routing queries skip
    // construction entirely (the cost the paper found dominant, §4).
    db.execute("CREATE GRAPH INDEX road_graph ON roads EDGE (src, dst)")?;
    let session = db.session();
    let stmt = session.prepare(
        "SELECT CHEAPEST SUM(r: minutes) AS m
         WHERE ? REACHES ? OVER roads r EDGE (src, dst)",
    )?;
    let t0 = Instant::now();
    let reps = 50;
    for i in 0..reps {
        let from = Value::Int(1 + (i * 37) % (width * height) as i64);
        let to = Value::Int(1 + (i * 91) % (width * height) as i64);
        stmt.execute(&session, &[from, to])?;
    }
    let with_index = t0.elapsed() / reps as u32;
    println!(
        "\nper-query latency: {no_index_time:?} without index (single query, \
         graph built inline) vs {with_index:?} with graph index (avg of {reps})"
    );

    // Road closure: DML invalidates the index automatically.
    db.execute("DELETE FROM roads WHERE src = 1 OR dst = 1")?;
    let cut_off = db.query_with_params(
        "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER roads EDGE (src, dst)",
        &[corner_a, corner_b],
    )?;
    println!(
        "after closing all roads at intersection 1: {}",
        if cut_off.is_empty() { "no route (as expected)" } else { "still routed?!" }
    );
    Ok(())
}
