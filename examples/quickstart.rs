//! Quickstart: create a graph from plain SQL tables and ask for shortest
//! paths with the paper's `REACHES` / `CHEAPEST SUM` extension.
//!
//! Run with: `cargo run --example quickstart`

use gsql::{Database, Value};

fn main() -> gsql::Result<()> {
    let db = Database::new();

    // A graph is just a table with a source and a destination column
    // (the "edge table"). Vertices are implied: V = src ∪ dst.
    db.execute_script(
        "CREATE TABLE persons (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL);
         CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL,
                               weight DOUBLE NOT NULL);
         INSERT INTO persons VALUES
            (1, 'Mahinda'), (2, 'Carmen'), (3, 'Chen'), (4, 'Dana'), (5, 'Eve');
         INSERT INTO friends VALUES
            (1, 2, 0.5), (2, 1, 0.5),
            (2, 3, 2.0), (3, 2, 2.0),
            (3, 4, 1.0), (4, 3, 1.0),
            (1, 4, 9.0), (4, 1, 9.0);",
    )?;

    // 1. Reachability as a WHERE-clause predicate.
    println!("Persons reachable from Mahinda (id 1):");
    let reachable = db.query_with_params(
        "SELECT name FROM persons
         WHERE ? REACHES id OVER friends EDGE (src, dst)
         ORDER BY name",
        &[Value::Int(1)],
    )?;
    print!("{reachable}");

    // 2. Unweighted shortest path: CHEAPEST SUM(1) counts hops.
    let hops = db.query_with_params(
        "SELECT CHEAPEST SUM(1) AS hops
         WHERE ? REACHES ? OVER friends EDGE (src, dst)",
        &[Value::Int(1), Value::Int(3)],
    )?;
    println!("\nHops from Mahinda to Chen:");
    print!("{hops}");

    // 3. Weighted shortest path plus the actual path, flattened by UNNEST.
    println!("\nCheapest weighted route from Mahinda to Dana, hop by hop:");
    let route = db.query_with_params(
        "SELECT T.cost, R.ordinality AS hop, R.src, R.dst, R.weight
         FROM (
            SELECT CHEAPEST SUM(f: weight) AS (cost, path)
            WHERE ? REACHES ? OVER friends f EDGE (src, dst)
         ) T, UNNEST(T.path) WITH ORDINALITY AS R",
        &[Value::Int(1), Value::Int(4)],
    )?;
    print!("{route}");

    // 4. EXPLAIN shows the graph operators of the paper (§3.1).
    println!("\nEXPLAIN of a graph join:");
    let plan = db.query(
        "EXPLAIN SELECT p1.name, p2.name, CHEAPEST SUM(1) AS d
         FROM persons p1, persons p2
         WHERE p1.id REACHES p2.id OVER friends EDGE (src, dst)",
    )?;
    for row in plan.rows() {
        println!("  {}", row[0]);
    }

    // 5. Sessions: prepared statements plan once and reuse the cached
    //    plan; a graph index makes repeated lookups skip CSR construction.
    db.execute("CREATE GRAPH INDEX gi ON friends EDGE (src, dst)")?;
    let session = db.session();
    let stmt = session.prepare(
        "SELECT CHEAPEST SUM(1) AS hops
         WHERE ? REACHES ? OVER friends EDGE (src, dst)",
    )?;
    for (s, d) in [(1, 3), (2, 4), (5, 1)] {
        let t = stmt.query(&session, &[Value::Int(s), Value::Int(d)])?;
        let hops = if t.is_empty() { "unreachable".to_string() } else { t.row(0)[0].to_string() };
        println!("\nperson {s} -> person {d}: {hops} hop(s)");
    }
    let stats = session.cache_stats();
    println!(
        "plan cache: {} miss (the prepare), {} hits (every execution)",
        stats.misses, stats.hits
    );

    // 6. EXPLAIN ANALYZE: the executed plan with per-operator rows/timing.
    println!("\nEXPLAIN ANALYZE of the same query:");
    let analyzed = session.query_with_params(
        "EXPLAIN ANALYZE SELECT CHEAPEST SUM(1) AS hops
         WHERE ? REACHES ? OVER friends EDGE (src, dst)",
        &[Value::Int(1), Value::Int(4)],
    )?;
    for row in analyzed.rows() {
        println!("  {}", row[0]);
    }
    Ok(())
}
