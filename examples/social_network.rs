//! The paper's evaluation workload in miniature: LDBC SNB Interactive
//! Q13 (unweighted shortest path) and the weighted Q14 variant over a
//! generated social network, including the batched execution that
//! amortizes graph construction (Figure 1b).
//!
//! Run with: `cargo run --release --example social_network [scale_factor]`

use gsql::datagen::{SnbDataset, SnbParams};
use gsql::Value;
use rand::prelude::*;
use rand::rngs::SmallRng;
use std::time::Instant;

fn main() -> gsql::Result<()> {
    let sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.1);

    println!("generating LDBC-SNB-like dataset at SF {sf} ...");
    let start = Instant::now();
    let data = SnbDataset::generate(SnbParams::new(sf));
    println!(
        "  {} persons, {} directed friendship edges in {:?}",
        data.num_persons,
        data.num_edges,
        start.elapsed()
    );
    let db = data.into_database()?;

    let mut rng = SmallRng::seed_from_u64(2017);
    let n = data.num_persons as i64;
    let mut random_person = || Value::Int(rng.gen_range(1..=n));

    // One session for the whole workload: each prepared query is parsed,
    // bound and optimized once, then served from the session's plan cache.
    let session = db.session();

    // LDBC SNB Interactive Q13: distance between two given persons.
    let q13 = session.prepare(
        "SELECT CHEAPEST SUM(1) AS distance
         WHERE ? REACHES ? OVER friends EDGE (src, dst)",
    )?;
    println!("\nQ13 (unweighted shortest path), 5 random pairs:");
    for _ in 0..5 {
        let (a, b) = (random_person(), random_person());
        let t0 = Instant::now();
        let result = q13.query(&session, &[a.clone(), b.clone()])?;
        let dist = if result.is_empty() {
            "unreachable".to_string()
        } else {
            result.row(0)[0].to_string()
        };
        println!("  {a} -> {b}: distance {dist}  ({:?})", t0.elapsed());
    }

    // The paper's Q14 variant: one weighted shortest path using the
    // precomputed affinity weights (cast to int for the radix queue, as in
    // appendix A.4).
    let q14 = session.prepare(
        "SELECT CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path)
         WHERE ? REACHES ? OVER friends f EDGE (src, dst)",
    )?;
    println!("\nQ14 variant (weighted shortest path), 3 random pairs:");
    for _ in 0..3 {
        let (a, b) = (random_person(), random_person());
        let t0 = Instant::now();
        let result = q14.query(&session, &[a.clone(), b.clone()])?;
        if result.is_empty() {
            println!("  {a} -> {b}: unreachable  ({:?})", t0.elapsed());
        } else {
            let cost = &result.row(0)[0];
            let path = result.row(0)[1].as_path().map(|p| p.len()).unwrap_or(0);
            println!("  {a} -> {b}: cost {cost}, {path} hops  ({:?})", t0.elapsed());
        }
    }

    // Figure 1b in one query: batching pairs amortizes the CSR build.
    println!("\nbatched Q13 (32 pairs in one statement):");
    let mut values = String::new();
    for i in 0..32 {
        if i > 0 {
            values.push_str(", ");
        }
        values.push_str(&format!(
            "({}, {})",
            random_person().as_int().unwrap(),
            random_person().as_int().unwrap()
        ));
    }
    let t0 = Instant::now();
    let batched = db.query(&format!(
        "WITH pairs (s, d) AS (VALUES {values})
         SELECT pairs.s, pairs.d, CHEAPEST SUM(1) AS distance
         FROM pairs
         WHERE pairs.s REACHES pairs.d OVER friends EDGE (src, dst)"
    ))?;
    let elapsed = t0.elapsed();
    println!(
        "  {} of 32 pairs connected; total {:?}, per pair {:?}",
        batched.row_count(),
        elapsed,
        elapsed / 32
    );

    // Analytic follow-ups compose with plain SQL.
    println!("\ntop-5 most connected persons:");
    let top = db.query(
        "SELECT p.id, p.firstName || ' ' || p.lastName AS name, COUNT(*) AS degree
         FROM persons p JOIN friends f ON p.id = f.src
         GROUP BY p.id, p.firstName || ' ' || p.lastName
         ORDER BY degree DESC, p.id LIMIT 5",
    )?;
    print!("{top}");
    Ok(())
}
