//! # gsql-parallel
//!
//! The engine's data-parallel runtime: a small **scoped worker pool** over
//! `std::thread::scope`, with `parallel_for` / `parallel_map` primitives
//! over index ranges. No external dependencies (the build environment is
//! offline, like the `rand-shim` crate).
//!
//! Design constraints, driven by the engine:
//!
//! * **Determinism** — every primitive returns results in input order, no
//!   matter how work was scheduled. Operators built on top produce output
//!   that is bit-for-bit identical to their sequential form.
//! * **Exact sequential fallback** — a [`Pool`] with one thread never
//!   spawns and runs the closure inline on the caller, so `threads = 1`
//!   takes the same code path a sequential loop would.
//! * **Scoped borrows** — workers borrow the caller's data (`&Csr`,
//!   `&Table`, …) directly; nothing is `'static` or reference-counted.
//!
//! Two scheduling shapes are provided:
//!
//! * [`Pool::for_each_chunk`] / [`Pool::map_chunks`] — *static* contiguous
//!   chunking, for uniform per-item work (filters, column scans, counting
//!   sorts). Chunk results concatenate in chunk order.
//! * [`Pool::map`] / [`Pool::map_with`] — *dynamic* index stealing over an
//!   atomic cursor, for irregular per-item work (one graph traversal per
//!   distinct source). `map_with` gives every worker a private scratch
//!   state (e.g. a distance/visited arena) created once per worker.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum items per chunk before [`Pool::chunks`] splits work across
/// threads: below this, thread startup dominates any win.
pub const MIN_CHUNK: usize = 256;

/// Default rows per morsel for pipelined execution: large enough that
/// per-morsel dispatch overhead vanishes, small enough that a morsel's
/// working set stays cache-resident and workers rebalance often.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Hard ceiling on a [`Pool`]'s width. Widths beyond any real machine only
/// multiply spawn overhead — and unbounded widths would let a runaway
/// configuration exhaust OS thread limits (spawn failure panics).
pub const MAX_THREADS: usize = 1024;

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide default degree of parallelism: the `GSQL_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`available_threads`]. Cached after the first call.
pub fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GSQL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(available_threads)
    })
}

/// The process-wide default morsel size in rows: the `GSQL_MORSEL_ROWS`
/// environment variable when set to a positive integer, otherwise
/// [`DEFAULT_MORSEL_ROWS`]. Cached after the first call.
pub fn default_morsel_rows() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GSQL_MORSEL_ROWS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_MORSEL_ROWS)
    })
}

/// A small per-thread slot number, assigned on first use from a global
/// counter and fixed for the thread's lifetime. Sharded instruments
/// (`gsql-obs` counters/histograms) key their shard choice on
/// `thread_slot() % SHARDS`, so concurrent workers land on different cache
/// lines without any registration handshake. Slots are never reused; the
/// modulo makes that harmless.
pub fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// A shared work queue handing out fixed-size **morsels** (contiguous row
/// ranges) of `0..rows` to pipeline workers.
///
/// Workers grab the next morsel with [`MorselQueue::next`]; the atomic
/// cursor guarantees every morsel is handed out exactly once and that the
/// *set* of handed-out morsels is always a prefix `0..k` of the morsel
/// sequence. That prefix property is what makes [`MorselQueue::stop`] safe
/// for LIMIT short-circuits: when a sink stops the queue after `k` grabbed
/// morsels, the rows produced so far are exactly the rows of morsels
/// `0..k`, i.e. a contiguous prefix of the input — identical to what a
/// sequential scan would have produced first.
///
/// Morsel *boundaries* depend only on `(rows, morsel_rows)`, never on the
/// worker count, so per-morsel partial results merged in morsel-index
/// order are bit-identical at every thread count.
pub struct MorselQueue {
    rows: usize,
    morsel_rows: usize,
    cursor: AtomicUsize,
    stop: AtomicBool,
}

/// One unit of pipeline work: morsel `index` covering input rows `rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the morsel sequence (0-based); partial results merge in
    /// this order.
    pub index: usize,
    /// The contiguous input-row range this morsel covers.
    pub rows: Range<usize>,
}

impl MorselQueue {
    /// A queue over `rows` input rows cut into morsels of `morsel_rows`
    /// (clamped to at least 1). The final morsel may be short.
    pub fn new(rows: usize, morsel_rows: usize) -> MorselQueue {
        MorselQueue {
            rows,
            morsel_rows: morsel_rows.max(1),
            cursor: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Total number of morsels this queue will hand out when run to
    /// completion.
    pub fn morsel_count(&self) -> usize {
        self.rows.div_ceil(self.morsel_rows)
    }

    /// Rows per morsel (the last morsel may be shorter).
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Total input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grab the next morsel, or `None` when the queue is exhausted or
    /// stopped.
    pub fn next(&self) -> Option<Morsel> {
        if self.stop.load(Ordering::Acquire) {
            return None;
        }
        let index = self.cursor.fetch_add(1, Ordering::Relaxed);
        let start = index.checked_mul(self.morsel_rows)?;
        if start >= self.rows {
            return None;
        }
        let end = (start + self.morsel_rows).min(self.rows);
        Some(Morsel { index, rows: start..end })
    }

    /// Stop handing out morsels (already-grabbed morsels finish normally).
    /// Used by LIMIT sinks to short-circuit upstream production.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// True once [`MorselQueue::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// A scoped worker pool of a fixed width.
///
/// The pool owns no threads between calls: each primitive spawns up to
/// `threads - 1` scoped workers and uses the calling thread as the first
/// worker, so borrows of caller data are safe and nothing outlives the
/// call. With `threads == 1` every primitive degenerates to an inline
/// sequential loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers (clamped to `1..=`[`MAX_THREADS`]).
    pub fn new(threads: usize) -> Pool {
        Pool { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// The single-threaded pool: every primitive runs inline.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool never spawns.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Partition `0..len` into contiguous chunks: one per worker, but never
    /// smaller than [`MIN_CHUNK`] items (tiny inputs stay on one chunk).
    /// Chunks are in index order and cover the range exactly.
    pub fn chunks(&self, len: usize) -> Vec<Range<usize>> {
        let workers = self.threads.min(len.div_ceil(MIN_CHUNK)).max(1);
        let base = len / workers;
        let extra = len % workers;
        let mut out = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            out.push(start..start + size);
            start += size;
        }
        debug_assert_eq!(start, len);
        out
    }

    /// Run `f` over each chunk of `0..len`, in parallel.
    pub fn for_each_chunk(&self, len: usize, f: impl Fn(Range<usize>) + Sync) {
        self.map_chunks(len, |r| {
            f(r);
        });
    }

    /// Map each chunk of `0..len` through `f`; results are returned in
    /// chunk (= index) order, so concatenating them reproduces the
    /// sequential output exactly.
    pub fn map_chunks<T: Send>(&self, len: usize, f: impl Fn(Range<usize>) -> T + Sync) -> Vec<T> {
        let chunks = self.chunks(len);
        if chunks.len() <= 1 {
            return chunks.into_iter().map(f).collect();
        }
        let f = &f;
        std::thread::scope(|s| {
            let mut rest = chunks.into_iter();
            let first = rest.next().expect("at least one chunk");
            let handles: Vec<_> = rest.map(|r| s.spawn(move || f(r))).collect();
            let mut out = Vec::with_capacity(handles.len() + 1);
            out.push(f(first));
            for h in handles {
                out.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
            out
        })
    }

    /// Fallible [`Pool::map_chunks`] with fail-fast: once any chunk errors,
    /// chunks that have not yet started are skipped, and the error of the
    /// **earliest completed failing chunk** is returned. On a single failing
    /// chunk this is exactly the error a sequential left-to-right loop would
    /// surface; when several chunks fail concurrently, the earliest of the
    /// ones that actually ran wins.
    pub fn try_map_chunks<T: Send, E: Send>(
        &self,
        len: usize,
        f: impl Fn(Range<usize>) -> Result<T, E> + Sync,
    ) -> Result<Vec<T>, E> {
        let poisoned = std::sync::atomic::AtomicBool::new(false);
        let results: Vec<Option<Result<T, E>>> = self.map_chunks(len, |range| {
            if poisoned.load(Ordering::Relaxed) {
                return None; // another chunk already failed: skip the work
            }
            let r = f(range);
            if r.is_err() {
                poisoned.store(true, Ordering::Relaxed);
            }
            Some(r)
        });
        let mut out = Vec::with_capacity(results.len());
        for r in results.into_iter().flatten() {
            out.push(r?);
        }
        Ok(out)
    }

    /// Map every index of `0..len` through `f` with dynamic scheduling:
    /// workers steal the next index from a shared atomic cursor, so
    /// irregular per-item costs balance automatically. Results are returned
    /// in index order regardless of scheduling.
    pub fn map<T: Send>(&self, len: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        self.map_with(len, || (), |(), i| f(i))
    }

    /// [`Pool::map`] with per-worker scratch state: `init` runs once on
    /// each worker, and `f` receives that worker's state mutably for every
    /// index it processes. This is how traversal scratch arenas (distance /
    /// visited arrays) are reused across work items without sharing.
    pub fn map_with<S, T: Send>(
        &self,
        len: usize,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize) -> T + Sync,
    ) -> Vec<T> {
        let workers = self.threads.min(len).max(1);
        if workers <= 1 {
            let mut state = init();
            return (0..len).map(|i| f(&mut state, i)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let run_worker = || {
            let mut state = init();
            let mut local: Vec<(usize, T)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                local.push((i, f(&mut state, i)));
            }
            local
        };
        let locals: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers).map(|_| s.spawn(run_worker)).collect();
            let mut all = vec![run_worker()];
            for h in handles {
                all.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
            all
        });
        // Reassemble in index order.
        let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
        for local in locals {
            for (i, v) in local {
                debug_assert!(slots[i].is_none(), "index {i} produced twice");
                slots[i] = Some(v);
            }
        }
        slots.into_iter().map(|v| v.expect("every index produced exactly once")).collect()
    }

    /// Run `f(worker_index)` once on each of up to `workers` workers
    /// (clamped to the pool width, at least 1) and return the per-worker
    /// results in worker-index order. This is the pipeline-driver shape:
    /// each worker loops on a shared [`MorselQueue`] until it drains,
    /// accumulating morsel-indexed partials that the caller merges
    /// deterministically.
    pub fn broadcast<T: Send>(&self, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let workers = workers.clamp(1, self.threads);
        if workers == 1 {
            return vec![f(0)];
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers).map(|w| s.spawn(move || f(w))).collect();
            let mut out = Vec::with_capacity(workers);
            out.push(f(0));
            for h in handles {
                out.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
            out
        })
    }
}

/// Run `f` over each chunk of `0..len` on a fresh [`Pool`] of `threads`.
pub fn parallel_for(threads: usize, len: usize, f: impl Fn(Range<usize>) + Sync) {
    Pool::new(threads).for_each_chunk(len, f);
}

/// Map `0..len` through `f` on a fresh [`Pool`] of `threads`, dynamic
/// scheduling, results in index order.
pub fn parallel_map<T: Send>(threads: usize, len: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    Pool::new(threads).map(len, f)
}

/// A shareable view over a mutable slice for **disjoint** parallel scatter
/// writes (e.g. the placement pass of a parallel counting sort, where every
/// output slot is written by exactly one worker).
///
/// The borrow checker cannot see slot-level disjointness, so writes go
/// through a raw pointer; the safety contract is on the caller.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the only access is `write`, whose contract requires each index to
// be written by at most one thread with no concurrent access to that index.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice for scattered writes.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`, overwriting (not dropping through) the old
    /// element.
    ///
    /// # Safety
    /// Each index must be written by **at most one** thread for the
    /// lifetime of this view, with no concurrent reads of that index. `T`
    /// must be `Copy`-like in the sense that overwriting without dropping
    /// is acceptable (all engine uses are plain integers).
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "SharedSlice index {index} out of range {}", self.len);
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract.
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_range_in_order() {
        let pool = Pool::new(4);
        for len in [0usize, 1, 255, 256, 257, 1024, 1000, 4096, 10_000] {
            let chunks = pool.chunks(len);
            let mut next = 0;
            for c in &chunks {
                assert_eq!(c.start, next);
                next = c.end;
            }
            assert_eq!(next, len);
            assert!(chunks.len() <= 4);
        }
        // Tiny inputs stay on one chunk.
        assert_eq!(pool.chunks(10).len(), 1);
        // Sequential pools never split.
        assert_eq!(Pool::sequential().chunks(100_000).len(), 1);
    }

    #[test]
    fn map_chunks_concatenates_in_order() {
        let pool = Pool::new(8);
        let n = 10_000;
        let parts = pool.map_chunks(n, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn map_returns_index_order_under_stealing() {
        let pool = Pool::new(8);
        let out = pool.map(1000, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_reuses_worker_state() {
        let pool = Pool::new(4);
        let inits = AtomicU64::new(0);
        let out = pool.map_with(
            100,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |calls, i| {
                *calls += 1;
                (*calls, i)
            },
        );
        // Per-worker call counters: each worker's sequence is 1, 2, 3, …;
        // summed over all items the counters cover all 100 calls.
        assert_eq!(out.iter().map(|&(_, i)| i).collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
        let total_inits = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&total_inits), "one init per worker, got {total_inits}");
    }

    #[test]
    fn try_map_chunks_reports_single_failing_chunk_error() {
        let pool = Pool::new(4);
        // One poisoned chunk: the reported error is deterministic and
        // matches what a sequential scan would surface.
        let r: Result<Vec<()>, usize> = pool.try_map_chunks(4096, |range| {
            if range.contains(&1500) {
                Err(range.start)
            } else {
                Ok(())
            }
        });
        let err = r.unwrap_err();
        assert!(err <= 1500, "failing chunk must contain item 1500, got start {err}");
    }

    #[test]
    fn try_map_chunks_ok_and_error_paths() {
        let pool = Pool::new(4);
        let ok: Result<Vec<usize>, ()> = pool.try_map_chunks(4096, |r| Ok(r.len()));
        assert_eq!(ok.unwrap().iter().sum::<usize>(), 4096);
        // Sequential pool: plain left-to-right error.
        let seq: Result<Vec<()>, usize> = Pool::sequential().try_map_chunks(100, |r| Err(r.start));
        assert_eq!(seq.unwrap_err(), 0);
    }

    #[test]
    fn pool_width_is_clamped() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(usize::MAX).threads(), MAX_THREADS);
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = Pool::sequential();
        assert!(pool.is_sequential());
        let out = pool.map(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        let sums = pool.map_chunks(10_000, |r| r.sum::<usize>());
        assert_eq!(sums.len(), 1);
    }

    #[test]
    fn shared_slice_disjoint_scatter() {
        let mut data = vec![0u32; 5000];
        let shared = SharedSlice::new(&mut data);
        Pool::new(4).for_each_chunk(5000, |r| {
            for i in r {
                // Reversal permutation: disjoint target slots.
                unsafe { shared.write(4999 - i, i as u32) };
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, 4999 - i);
        }
    }

    #[test]
    fn parallel_for_and_map_free_functions() {
        let counter = AtomicU64::new(0);
        parallel_for(4, 2048, |r| {
            counter.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2048);
        assert_eq!(parallel_map(3, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(2048, |i| {
                if i == 2000 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn available_and_default_threads_are_positive() {
        assert!(available_threads() >= 1);
        assert!(default_threads() >= 1);
        assert!(default_morsel_rows() >= 1);
    }

    #[test]
    fn thread_slot_is_stable_per_thread_and_distinct_across_threads() {
        let here = thread_slot();
        assert_eq!(here, thread_slot(), "slot must be stable within a thread");
        let slots = Pool::new(4).broadcast(4, |_| thread_slot());
        // The calling thread participates as worker 0; spawned workers get
        // fresh (distinct) slots.
        assert_eq!(slots[0], here);
        for (i, a) in slots.iter().enumerate() {
            for b in &slots[i + 1..] {
                assert_ne!(a, b, "two live threads share a slot");
            }
        }
    }

    #[test]
    fn morsel_queue_covers_rows_exactly_once() {
        for (rows, morsel_rows) in [(0usize, 7usize), (1, 7), (6, 7), (7, 7), (8, 7), (100, 7)] {
            let q = MorselQueue::new(rows, morsel_rows);
            assert_eq!(q.morsel_count(), rows.div_ceil(morsel_rows));
            let mut covered = 0;
            let mut expect_index = 0;
            while let Some(m) = q.next() {
                assert_eq!(m.index, expect_index);
                assert_eq!(m.rows.start, covered);
                assert!(m.rows.len() <= morsel_rows && !m.rows.is_empty());
                covered = m.rows.end;
                expect_index += 1;
            }
            assert_eq!(covered, rows, "rows={rows} morsel_rows={morsel_rows}");
            assert_eq!(expect_index, q.morsel_count());
            assert!(q.next().is_none(), "exhausted queue stays exhausted");
        }
    }

    #[test]
    fn morsel_queue_parallel_grab_is_disjoint_and_complete() {
        let q = MorselQueue::new(10_000, 64);
        let grabbed: Vec<Vec<Morsel>> = Pool::new(8).broadcast(8, |_| {
            let mut local = Vec::new();
            while let Some(m) = q.next() {
                local.push(m);
            }
            local
        });
        let mut all: Vec<Morsel> = grabbed.into_iter().flatten().collect();
        all.sort_by_key(|m| m.index);
        let mut covered = 0;
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.index, i);
            assert_eq!(m.rows.start, covered);
            covered = m.rows.end;
        }
        assert_eq!(covered, 10_000);
    }

    #[test]
    fn morsel_queue_stop_halts_production() {
        let q = MorselQueue::new(1000, 10);
        assert!(q.next().is_some());
        assert!(!q.is_stopped());
        q.stop();
        assert!(q.is_stopped());
        assert!(q.next().is_none());
    }

    #[test]
    fn morsel_queue_clamps_zero_morsel_rows() {
        let q = MorselQueue::new(5, 0);
        assert_eq!(q.morsel_rows(), 1);
        assert_eq!(q.morsel_count(), 5);
    }

    #[test]
    fn broadcast_runs_each_worker_once_in_order() {
        let out = Pool::new(4).broadcast(4, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Clamped to pool width and to at least one worker.
        assert_eq!(Pool::new(2).broadcast(8, |w| w), vec![0, 1]);
        assert_eq!(Pool::sequential().broadcast(0, |w| w), vec![0]);
    }
}
