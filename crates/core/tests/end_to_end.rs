//! End-to-end SQL tests for the core engine, covering general SQL plus the
//! paper's extension surface.

use gsql_core::{Database, Error, QueryResult};
use gsql_storage::{Table, Value};
use std::sync::Arc;

fn db_with_people() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE persons (id INTEGER PRIMARY KEY, firstName VARCHAR, lastName VARCHAR);
         CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL,
                               creationDate DATE, weight DOUBLE);
         INSERT INTO persons VALUES
            (1, 'Ada', 'Lovelace'), (2, 'Grace', 'Hopper'), (3, 'Alan', 'Turing'),
            (4, 'Edsger', 'Dijkstra'), (5, 'Barbara', 'Liskov');
         INSERT INTO friends VALUES
            (1, 2, '2010-01-01', 0.5), (2, 1, '2010-01-01', 0.5),
            (2, 3, '2010-06-15', 2.0), (3, 2, '2010-06-15', 2.0),
            (3, 4, '2011-03-01', 1.0), (4, 3, '2011-03-01', 1.0),
            (1, 4, '2012-01-01', 9.0), (4, 1, '2012-01-01', 9.0);",
    )
    .unwrap();
    db
}

fn rows(t: &Arc<Table>) -> Vec<Vec<Value>> {
    t.rows().collect()
}

#[test]
fn scalar_select_without_from() {
    let db = Database::new();
    let t = db.query("SELECT 1 + 1 AS two, 'x' || 'y' AS xy").unwrap();
    assert_eq!(t.row(0), vec![Value::Int(2), Value::from("xy")]);
}

#[test]
fn basic_projection_filter_order() {
    let db = db_with_people();
    let t = db.query("SELECT firstName FROM persons WHERE id > 2 ORDER BY firstName DESC").unwrap();
    assert_eq!(
        rows(&t),
        vec![vec![Value::from("Edsger")], vec![Value::from("Barbara")], vec![Value::from("Alan")],]
    );
}

#[test]
fn unweighted_shortest_path_a1_style() {
    // Appendix A.1: SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER …
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    // 1 -> 4 directly (1 hop).
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[0], Value::Int(1));
}

#[test]
fn unreachable_pair_yields_empty_result() {
    let db = db_with_people();
    // Person 5 has no edges: not even a vertex of the graph.
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(5)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 0);
}

#[test]
fn vertex_properties_a2_style() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT p1.firstName || ' ' || p1.lastName AS person1, \
                    p2.firstName || ' ' || p2.lastName AS person2, \
                    CHEAPEST SUM(1) AS distance \
             FROM persons p1, persons p2 \
             WHERE p1.id = ? AND p2.id = ? \
               AND p1.id REACHES p2.id OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(
        t.row(0),
        vec![Value::from("Ada Lovelace"), Value::from("Alan Turing"), Value::Int(2)]
    );
}

#[test]
fn reachability_with_cte_a3_style() {
    let db = db_with_people();
    // Subgraph of friendships created before 2011: 1-2, 2-3 only.
    let t = db
        .query_with_params(
            "WITH friends1 AS (
                SELECT * FROM friends WHERE creationDate < '2011-01-01'
             )
             SELECT firstName || ' ' || lastName AS person
             FROM persons
             WHERE ? REACHES id OVER friends1 EDGE (src, dst)
             ORDER BY person",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(
        rows(&t),
        vec![
            vec![Value::from("Ada Lovelace")], // self: empty path
            vec![Value::from("Alan Turing")],
            vec![Value::from("Grace Hopper")],
        ]
    );
}

#[test]
fn weighted_path_with_unnest_a4_style() {
    let db = db_with_people();
    // Weighted path 1 ~> 4: direct edge costs 9*2=18, path via 2,3 costs
    // (0.5+2+1)*2 = 7. CAST(weight*2 AS INTEGER) gives int weights 1,4,2.
    let t = db
        .query_with_params(
            "SELECT firstName, CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path) \
             FROM persons \
             WHERE ? REACHES id OVER friends f EDGE (src, dst) AND id = 4",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row(0)[1], Value::Int(7)); // 1 + 4 + 2

    // Unnest the path.
    let t = db
        .query_with_params(
            "SELECT T.firstName, T.cost, R.src, R.dst, R.weight \
             FROM ( \
                SELECT firstName, CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path) \
                FROM persons \
                WHERE ? REACHES id OVER friends f EDGE (src, dst) AND id = 4 \
             ) T, UNNEST(T.path) AS R",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 3);
    // Hops in order: 1->2, 2->3, 3->4.
    assert_eq!(t.row(0)[2], Value::Int(1));
    assert_eq!(t.row(0)[3], Value::Int(2));
    assert_eq!(t.row(1)[2], Value::Int(2));
    assert_eq!(t.row(2)[3], Value::Int(4));
    // The cost repeats on every expanded row.
    assert!(t.rows().all(|r| r[1] == Value::Int(7)));
}

#[test]
fn unnest_with_ordinality() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT R.ordinality, R.src, R.dst \
             FROM ( \
                SELECT CHEAPEST SUM(f: 1) AS (cost, path) \
                WHERE ? REACHES ? OVER friends f EDGE (src, dst) \
             ) T, UNNEST(T.path) WITH ORDINALITY AS R",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row_count(), 2);
    assert_eq!(t.row(0)[0], Value::Int(1));
    assert_eq!(t.row(1)[0], Value::Int(2));
}

#[test]
fn left_join_unnest_preserves_empty_paths() {
    let db = db_with_people();
    // Source reaches itself with an empty path; LEFT JOIN UNNEST keeps it.
    let inner = "SELECT firstName, CHEAPEST SUM(f: 1) AS (cost, path) \
                 FROM persons \
                 WHERE ? REACHES id OVER friends f EDGE (src, dst) AND id = ?";
    let dropped = db
        .query_with_params(
            &format!("SELECT T.firstName, R.src FROM ({inner}) T, UNNEST(T.path) AS R"),
            &[Value::Int(1), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(dropped.row_count(), 0);
    let kept = db
        .query_with_params(
            &format!("SELECT T.firstName, R.src FROM ({inner}) T LEFT JOIN UNNEST(T.path) AS R"),
            &[Value::Int(1), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(kept.row_count(), 1);
    assert_eq!(kept.row(0)[0], Value::from("Ada"));
    assert!(kept.row(0)[1].is_null());
}

#[test]
fn float_weighted_shortest_path() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(f: weight) AS cost \
             WHERE ? REACHES ? OVER friends f EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    // 0.5 + 2.0 + 1.0 = 3.5 via 2,3 beats direct 9.0.
    assert_eq!(t.row(0)[0], Value::Double(3.5));
}

#[test]
fn multiple_cheapest_sums_same_predicate() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(f: 1) AS hops, CHEAPEST SUM(f: weight) AS wcost \
             WHERE ? REACHES ? OVER friends f EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(1)); // direct hop
    assert_eq!(t.row(0)[1], Value::Double(3.5)); // cheap detour
}

#[test]
fn multiple_reaches_predicates_with_bindings() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(a: 1) AS d1, CHEAPEST SUM(b: 1) AS d2 \
             WHERE ? REACHES ? OVER friends a EDGE (src, dst) \
               AND ? REACHES ? OVER friends b EDGE (dst, src)",
            &[Value::Int(1), Value::Int(3), Value::Int(3), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2));
    assert_eq!(t.row(0)[1], Value::Int(2)); // reversed edge direction
}

#[test]
fn graph_join_many_to_many() {
    let db = db_with_people();
    // All ordered pairs of persons 1..4 connected in the friendship graph.
    let t = db
        .query(
            "SELECT p1.id, p2.id, CHEAPEST SUM(1) AS d \
             FROM persons p1, persons p2 \
             WHERE p1.id REACHES p2.id OVER friends EDGE (src, dst) \
             ORDER BY p1.id, p2.id",
        )
        .unwrap();
    // Persons 1-4 are mutually connected (16 ordered pairs incl. self);
    // person 5 is isolated.
    assert_eq!(t.row_count(), 16);
    assert_eq!(t.row(0), vec![Value::Int(1), Value::Int(1), Value::Int(0)]);
    // EXPLAIN must show the rewritten GraphJoin.
    let plan = db
        .plan(
            "SELECT p1.id, p2.id, CHEAPEST SUM(1) AS d \
             FROM persons p1, persons p2 \
             WHERE p1.id REACHES p2.id OVER friends EDGE (src, dst)",
        )
        .unwrap();
    assert!(plan.explain().contains("GraphJoin"), "plan:\n{}", plan.explain());
}

#[test]
fn batch_pairs_via_cte_values() {
    // The Figure-1b query shape: a batch of pairs in one statement.
    let db = db_with_people();
    let t = db
        .query(
            "WITH pairs (s, d) AS (VALUES (1, 3), (2, 4), (1, 5)) \
             SELECT pairs.s, pairs.d, CHEAPEST SUM(1) AS dist \
             FROM pairs \
             WHERE pairs.s REACHES pairs.d OVER friends EDGE (src, dst) \
             ORDER BY pairs.s, pairs.d",
        )
        .unwrap();
    // (1,5) is dropped: 5 is not a vertex.
    assert_eq!(
        rows(&t),
        vec![
            vec![Value::Int(1), Value::Int(3), Value::Int(2)],
            vec![Value::Int(2), Value::Int(4), Value::Int(2)],
        ]
    );
}

#[test]
fn reaches_over_derived_edge_table() {
    let db = db_with_people();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) AS d \
             WHERE ? REACHES ? OVER \
               (SELECT src, dst FROM friends WHERE weight < 5.0) e EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap();
    // Direct 1->4 edge (weight 9) excluded: path via 2,3.
    assert_eq!(t.row(0)[0], Value::Int(3));
}

#[test]
fn non_positive_weight_raises_runtime_error() {
    let db = db_with_people();
    db.execute("UPDATE friends SET weight = 0.0 WHERE src = 2 AND dst = 3").unwrap();
    let err = db
        .query_with_params(
            "SELECT CHEAPEST SUM(f: weight) WHERE ? REACHES ? OVER friends f EDGE (src, dst)",
            &[Value::Int(1), Value::Int(4)],
        )
        .unwrap_err();
    match err {
        Error::Graph(e) => assert!(e.to_string().contains("strictly greater than 0")),
        other => panic!("expected graph error, got {other}"),
    }
}

#[test]
fn aggregates_group_having() {
    let db = db_with_people();
    let t = db
        .query(
            "SELECT src, COUNT(*) AS n, SUM(weight) AS total \
             FROM friends GROUP BY src HAVING COUNT(*) > 1 ORDER BY src",
        )
        .unwrap();
    // Vertices 1..4 each have 2 outgoing edges.
    assert_eq!(t.row_count(), 4);
    assert_eq!(t.row(0), vec![Value::Int(1), Value::Int(2), Value::Double(9.5)]);
}

#[test]
fn aggregate_over_graph_result_in_outer_query() {
    let db = db_with_people();
    // Count reachable persons per source by nesting the graph query.
    let t = db
        .query(
            "SELECT COUNT(*) AS reachable FROM ( \
                SELECT p2.id \
                FROM persons p1, persons p2 \
                WHERE p1.id = 1 AND p1.id REACHES p2.id OVER friends EDGE (src, dst) \
             ) r",
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(4));
}

#[test]
fn union_distinct_limit_offset() {
    let db = db_with_people();
    let t = db.query("SELECT 1 AS v UNION SELECT 1 UNION ALL SELECT 2 ORDER BY v").unwrap();
    // UNION dedups the two 1s... then UNION ALL appends 2; semantics are
    // left-assoc: ((1 UNION 1) UNION ALL 2) = {1, 2}.
    assert_eq!(rows(&t), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    let t = db.query("SELECT id FROM persons ORDER BY id LIMIT 2 OFFSET 1").unwrap();
    assert_eq!(rows(&t), vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
}

#[test]
fn dml_round_trip_and_index_invalidation() {
    let db = db_with_people();
    db.execute("CREATE GRAPH INDEX fi ON friends EDGE (src, dst)").unwrap();
    let d0 = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(d0.row(0)[0], Value::Int(2));
    // Add a shortcut edge; the graph index must notice the new version.
    match db.execute("INSERT INTO friends VALUES (1, 3, '2024-01-01', 1.0)").unwrap() {
        QueryResult::Affected(1) => {}
        other => panic!("{other:?}"),
    }
    let d1 = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(d1.row(0)[0], Value::Int(1));
    // DELETE breaks the path again.
    db.execute("DELETE FROM friends WHERE src = 1 AND dst = 3").unwrap();
    let d2 = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(d2.row(0)[0], Value::Int(2));
}

#[test]
fn explain_and_describe() {
    let db = db_with_people();
    let t = db.query("EXPLAIN SELECT id FROM persons WHERE id = 1").unwrap();
    let text: Vec<String> = t.rows().map(|r| r[0].as_str().unwrap().to_string()).collect();
    assert!(text.iter().any(|l| l.contains("Scan persons")));
    let t = db.query("DESCRIBE friends").unwrap();
    assert_eq!(t.row_count(), 4);
    assert_eq!(t.row(0)[0], Value::from("src"));
}

#[test]
fn prepared_statements_rebind_params() {
    let db = db_with_people();
    let session = db.session();
    let stmt = session
        .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)")
        .unwrap();
    let t1 = stmt.query(&session, &[Value::Int(1), Value::Int(4)]).unwrap();
    assert_eq!(t1.row(0)[0], Value::Int(1));
    let t2 = stmt.query(&session, &[Value::Int(1), Value::Int(3)]).unwrap();
    assert_eq!(t2.row(0)[0], Value::Int(2));
    // Bound and optimized once (at prepare), then served from the cache.
    assert_eq!(session.cache_stats().misses, 1);
    assert_eq!(session.cache_stats().hits, 2);
}

#[test]
fn bind_errors_are_informative() {
    let db = db_with_people();
    for (sql, needle) in [
        ("SELECT nope FROM persons", "no column"),
        ("SELECT CHEAPEST SUM(1)", "REACHES"),
        (
            "SELECT CHEAPEST SUM(x: 1) WHERE 1 REACHES 2 OVER friends f EDGE (src, dst)",
            "tuple variable",
        ),
        ("SELECT id FROM persons WHERE firstName REACHES id OVER friends EDGE (src, dst)", "type"),
        ("SELECT * FROM persons WHERE id REACHES id OVER friends EDGE (src, nope)", "nope"),
        ("SELECT COUNT(*), id FROM persons", "GROUP BY"),
        ("SELECT id FROM persons GROUP BY id HAVING firstName = 'x'", "GROUP BY"),
    ] {
        let err = db.query(sql).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "query {sql:?} gave {err}, expected to contain {needle:?}"
        );
    }
}

#[test]
fn self_loop_and_duplicate_edges() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE e (s INTEGER, d INTEGER);
         INSERT INTO e VALUES (1, 1), (1, 2), (1, 2), (2, 3);",
    )
    .unwrap();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)",
            &[Value::Int(1), Value::Int(3)],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2));
}

#[test]
fn varchar_vertex_keys() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE routes (origin VARCHAR, destination VARCHAR);
         INSERT INTO routes VALUES ('AMS', 'LHR'), ('LHR', 'JFK'), ('AMS', 'CDG');",
    )
    .unwrap();
    let t = db
        .query_with_params(
            "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER routes EDGE (origin, destination)",
            &[Value::from("AMS"), Value::from("JFK")],
        )
        .unwrap();
    assert_eq!(t.row(0)[0], Value::Int(2));
}

#[test]
fn reachability_only_filter_semantics() {
    let db = db_with_people();
    // Pure predicate — no CHEAPEST SUM at all.
    let t = db
        .query(
            "SELECT p.id FROM persons p \
             WHERE 1 REACHES p.id OVER friends EDGE (src, dst) ORDER BY p.id",
        )
        .unwrap();
    assert_eq!(
        rows(&t),
        vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)], vec![Value::Int(4)]]
    );
}
