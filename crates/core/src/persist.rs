//! Engine-side persistence: the statement-level WAL record codec and the
//! registry/index sections of a snapshot checkpoint.
//!
//! The storage crate's durability layer ([`gsql_storage::DurableStore`])
//! deliberately knows nothing about engine semantics — it persists the
//! catalog's tables plus opaque named byte sections, and replays opaque
//! WAL records. This module is the other half of that contract:
//!
//! * **WAL records** are logical: a mutating statement is logged as its
//!   canonical SQL rendering plus its `?` parameter values (replay
//!   re-executes it through a session), and `import_csv` bulk appends are
//!   logged as raw rows. Statements are logged *after* they succeed, so
//!   replay is deterministic — a failed statement never reaches the log.
//! * **Snapshot sections** serialize the graph-index and path-index
//!   registries. Graph-index entries persist their definitions only (the
//!   CSR is cheap to rebuild lazily); path-index entries persist the full
//!   built acceleration structures — landmark distance vectors or CH
//!   shortcut CSRs — stamped with the owning table's version, so a warm
//!   restart answers accelerated queries with **zero** rebuild work. A
//!   version mismatch (the snapshot predates later WAL mutations) simply
//!   restores the definition and leaves the usual lazy rebuild to run.
//!
//! Every decode path is bounds-checked and cross-validated (vector
//! lengths, CSR invariants, kind tags); corrupt bytes surface as
//! [`StorageError::Corrupt`], never as a panic.

use crate::database::Database;
use crate::error::Error;
use crate::exec::graph_op::{null_filtered_edges, MaterializedGraph};
use crate::graph_index::{GraphIndexRegistry, GraphIndexSnapshot};
use crate::path_index::{
    AccelIndex, PathIndexData, PathIndexKind, PathIndexRegistry, PathIndexSnapshotEntry,
};
use crate::session::Session;
use gsql_accel::{ChParts, ContractionHierarchy, Landmarks, UpGraphParts};
use gsql_graph::Csr;
use gsql_storage::persist::{ByteReader, ByteWriter};
use gsql_storage::value::HashableValue;
use gsql_storage::{SnapshotData, SnapshotTable, StorageError, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// Snapshot section holding the graph-index registry.
pub(crate) const GRAPH_SECTION: &str = "graph_indexes";
/// Snapshot section holding the path-index registry.
pub(crate) const PATH_SECTION: &str = "path_indexes";

/// WAL record tag: a mutating statement (SQL text + parameters).
const REC_STATEMENT: u8 = 1;
/// WAL record tag: bulk row appends (`import_csv`).
const REC_ROWS: u8 = 2;

fn corrupt(msg: impl Into<String>) -> Error {
    Error::Storage(StorageError::Corrupt(msg.into()))
}

// ----------------------------------------------------------- value codec

fn put_value(w: &mut ByteWriter, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Double(f) => {
            w.put_u8(2);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Value::Bool(b) => {
            w.put_u8(4);
            w.put_u8(*b as u8);
        }
        Value::Date(d) => {
            w.put_u8(5);
            w.put_i32(d.0);
        }
        Value::Path(_) => {
            return Err(Error::Storage(StorageError::Internal(
                "path values cannot be persisted".into(),
            )))
        }
    }
    Ok(())
}

fn get_value(r: &mut ByteReader<'_>) -> Result<Value> {
    Ok(match r.get_u8().map_err(Error::Storage)? {
        0 => Value::Null,
        1 => Value::Int(r.get_i64().map_err(Error::Storage)?),
        2 => Value::Double(r.get_f64().map_err(Error::Storage)?),
        3 => Value::Str(r.get_str().map_err(Error::Storage)?),
        4 => Value::Bool(r.get_u8().map_err(Error::Storage)? != 0),
        5 => Value::Date(gsql_storage::Date(r.get_i32().map_err(Error::Storage)?)),
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

// ------------------------------------------------------- WAL record codec

/// True when a statement's parameter values can be replayed from the WAL.
/// Path values are query results, not storable inputs — a mutating
/// statement carrying one is rejected before it applies.
pub(crate) fn params_are_loggable(params: &[Value]) -> bool {
    !params.iter().any(|p| matches!(p, Value::Path(_)))
}

/// Encode a successfully executed mutating statement for the WAL.
pub(crate) fn encode_statement_record(sql: &str, params: &[Value]) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_STATEMENT);
    w.put_str(sql);
    w.put_usize(params.len());
    for p in params {
        put_value(&mut w, p)?;
    }
    Ok(w.into_bytes())
}

/// Encode an `import_csv` bulk append for the WAL (raw rows, not SQL).
pub(crate) fn encode_rows_record(table: &str, rows: &Table) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_ROWS);
    w.put_str(table);
    let ncols = rows.schema().len();
    w.put_usize(rows.row_count());
    w.put_usize(ncols);
    for r in 0..rows.row_count() {
        for c in 0..ncols {
            put_value(&mut w, &rows.column(c).get(r))?;
        }
    }
    Ok(w.into_bytes())
}

/// Re-apply one WAL record through `session` (recovery). The session's
/// database has no durable store attached yet, so nothing is re-logged.
pub(crate) fn replay_record(session: &Session<'_>, bytes: &[u8]) -> Result<()> {
    let mut r = ByteReader::new(bytes);
    match r.get_u8().map_err(Error::Storage)? {
        REC_STATEMENT => {
            let sql = r.get_str().map_err(Error::Storage)?;
            let n = r.get_usize().map_err(Error::Storage)?;
            let mut params = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                params.push(get_value(&mut r)?);
            }
            if !r.is_exhausted() {
                return Err(corrupt("trailing bytes after statement record"));
            }
            session.execute_with_params(&sql, &params).map_err(|e| {
                corrupt(format!("WAL statement failed to replay: {e} (statement: {sql})"))
            })?;
        }
        REC_ROWS => {
            let table = r.get_str().map_err(Error::Storage)?;
            let nrows = r.get_usize().map_err(Error::Storage)?;
            let ncols = r.get_usize().map_err(Error::Storage)?;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    row.push(get_value(&mut r)?);
                }
                rows.push(row);
            }
            if !r.is_exhausted() {
                return Err(corrupt("trailing bytes after rows record"));
            }
            session
                .database()
                .catalog()
                .update(&table, |t| {
                    for row in rows.drain(..) {
                        t.append_row(row)?;
                    }
                    Ok(())
                })
                .map_err(Error::Storage)?;
        }
        other => return Err(corrupt(format!("unknown WAL record tag {other}"))),
    }
    Ok(())
}

// ------------------------------------------------------ snapshot capture

/// Capture the full engine state for a snapshot checkpoint. Runs under the
/// store's exclusive commit lock, so the catalog and registries are
/// mutually consistent.
pub(crate) fn capture_snapshot(db: &Database) -> std::result::Result<SnapshotData, StorageError> {
    let tables = db
        .catalog()
        .entries()
        .into_iter()
        .map(|(name, e)| SnapshotTable { name, version: e.version, table: e.table })
        .collect();
    let sections = vec![
        (GRAPH_SECTION.to_string(), encode_graph_section(db.graph_indexes())),
        (PATH_SECTION.to_string(), encode_path_section(db.path_indexes())?),
    ];
    Ok(SnapshotData { ddl_version: db.catalog().ddl_version(), tables, sections })
}

fn encode_graph_section(reg: &GraphIndexRegistry) -> Vec<u8> {
    let entries = reg.snapshot_entries();
    let mut w = ByteWriter::new();
    w.put_u64(reg.version());
    w.put_usize(entries.len());
    for e in entries {
        w.put_str(&e.name);
        w.put_str(&e.table);
        w.put_str(&e.src_col);
        w.put_str(&e.dst_col);
    }
    w.into_bytes()
}

fn encode_path_section(reg: &PathIndexRegistry) -> std::result::Result<Vec<u8>, StorageError> {
    let entries = reg.snapshot_entries();
    let mut w = ByteWriter::new();
    w.put_u64(reg.version());
    w.put_usize(entries.len());
    for e in entries {
        w.put_str(&e.name);
        w.put_str(&e.table);
        w.put_str(&e.src_col);
        w.put_str(&e.dst_col);
        put_opt_str(&mut w, e.weight_col.as_deref());
        match e.weight_key {
            None => w.put_u8(0),
            Some(k) => {
                w.put_u8(1);
                w.put_usize(k);
            }
        }
        match e.kind {
            PathIndexKind::Landmarks(k) => {
                w.put_u8(0);
                w.put_u32(k);
            }
            PathIndexKind::Contraction => w.put_u8(1),
        }
        match &e.built {
            None => w.put_u8(0),
            Some((table_version, data)) => {
                w.put_u8(1);
                w.put_u64(*table_version);
                encode_built_data(&mut w, data)
                    .map_err(|e| StorageError::Internal(e.to_string()))?;
            }
        }
    }
    Ok(w.into_bytes())
}

fn encode_built_data(w: &mut ByteWriter, data: &PathIndexData) -> Result<()> {
    let graph = &data.graph;
    w.put_usize(graph.src_key);
    w.put_usize(graph.dst_key);
    // Dictionary values in dense-id order (ids are 0..n contiguous).
    let mut vals = vec![Value::Null; graph.dict.len()];
    for (hv, &id) in &graph.dict {
        vals[id as usize] = hv.0.clone();
    }
    w.put_usize(vals.len());
    for v in &vals {
        put_value(w, v)?;
    }
    encode_csr(w, &graph.csr);
    encode_csr(w, graph.reverse());
    put_opt_i64s(w, data.weights_fwd.as_deref());
    put_opt_i64s(w, data.weights_bwd.as_deref());
    match &data.accel {
        AccelIndex::Alt(lm) => {
            w.put_u8(0);
            let (landmarks, fwd, bwd) = lm.to_parts();
            put_u32s(w, &landmarks);
            w.put_usize(fwd.len());
            for v in &fwd {
                put_u64s(w, v);
            }
            w.put_usize(bwd.len());
            for v in &bwd {
                put_u64s(w, v);
            }
        }
        AccelIndex::Ch(ch) => {
            w.put_u8(1);
            let parts = ch.to_parts();
            put_u32s(w, &parts.rank);
            encode_up_graph(w, &parts.fwd);
            encode_up_graph(w, &parts.bwd);
            w.put_u64(parts.shortcuts);
        }
    }
    Ok(())
}

fn encode_csr(w: &mut ByteWriter, csr: &Csr) {
    let (offsets, targets, edge_rows) = csr.raw_parts();
    w.put_usize(offsets.len());
    for &o in offsets {
        w.put_usize(o);
    }
    put_u32s(w, targets);
    put_u32s(w, edge_rows);
}

fn encode_up_graph(w: &mut ByteWriter, g: &UpGraphParts) {
    w.put_usize(g.offsets.len());
    for &o in &g.offsets {
        w.put_usize(o);
    }
    put_u32s(w, &g.targets);
    put_u64s(w, &g.weights);
}

fn put_u32s(w: &mut ByteWriter, vals: &[u32]) {
    w.put_usize(vals.len());
    for &v in vals {
        w.put_u32(v);
    }
}

fn put_u64s(w: &mut ByteWriter, vals: &[u64]) {
    w.put_usize(vals.len());
    for &v in vals {
        w.put_u64(v);
    }
}

fn put_opt_str(w: &mut ByteWriter, s: Option<&str>) {
    match s {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
    }
}

fn put_opt_i64s(w: &mut ByteWriter, vals: Option<&[i64]>) {
    match vals {
        None => w.put_u8(0),
        Some(vals) => {
            w.put_u8(1);
            w.put_usize(vals.len());
            for &v in vals {
                w.put_i64(v);
            }
        }
    }
}

// ------------------------------------------------------ snapshot restore

/// Restore engine state from a decoded snapshot into a freshly constructed
/// (empty, in-memory) database: tables and version counters exactly as
/// captured, graph-index definitions, and path indexes with their built
/// acceleration structures when the owning table's version still matches.
pub(crate) fn restore_snapshot(db: &Database, snap: SnapshotData) -> Result<()> {
    db.catalog().set_ddl_version(snap.ddl_version);
    for t in snap.tables {
        db.catalog().restore_table(&t.name, t.table, t.version).map_err(Error::Storage)?;
    }
    for (name, bytes) in &snap.sections {
        match name.as_str() {
            GRAPH_SECTION => restore_graph_section(db, bytes)?,
            PATH_SECTION => restore_path_section(db, bytes)?,
            other => return Err(corrupt(format!("unknown snapshot section '{other}'"))),
        }
    }
    Ok(())
}

fn restore_graph_section(db: &Database, bytes: &[u8]) -> Result<()> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u64().map_err(Error::Storage)?;
    let count = r.get_usize().map_err(Error::Storage)?;
    for _ in 0..count {
        db.graph_indexes().restore_entry(GraphIndexSnapshot {
            name: r.get_str().map_err(Error::Storage)?,
            table: r.get_str().map_err(Error::Storage)?,
            src_col: r.get_str().map_err(Error::Storage)?,
            dst_col: r.get_str().map_err(Error::Storage)?,
        });
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in graph-index section"));
    }
    db.graph_indexes().set_version(version);
    Ok(())
}

fn restore_path_section(db: &Database, bytes: &[u8]) -> Result<()> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u64().map_err(Error::Storage)?;
    let count = r.get_usize().map_err(Error::Storage)?;
    for _ in 0..count {
        let name = r.get_str().map_err(Error::Storage)?;
        let table = r.get_str().map_err(Error::Storage)?;
        let src_col = r.get_str().map_err(Error::Storage)?;
        let dst_col = r.get_str().map_err(Error::Storage)?;
        let weight_col = match r.get_u8().map_err(Error::Storage)? {
            0 => None,
            _ => Some(r.get_str().map_err(Error::Storage)?),
        };
        let weight_key = match r.get_u8().map_err(Error::Storage)? {
            0 => None,
            _ => Some(r.get_usize().map_err(Error::Storage)?),
        };
        let kind = match r.get_u8().map_err(Error::Storage)? {
            0 => PathIndexKind::Landmarks(r.get_u32().map_err(Error::Storage)?),
            1 => PathIndexKind::Contraction,
            other => return Err(corrupt(format!("unknown path-index kind tag {other}"))),
        };
        let built = match r.get_u8().map_err(Error::Storage)? {
            0 => None,
            _ => {
                let table_version = r.get_u64().map_err(Error::Storage)?;
                decode_built_data(db, &table, kind, weight_key, table_version, &mut r)?
            }
        };
        db.path_indexes().restore_entry(PathIndexSnapshotEntry {
            name,
            table,
            src_col,
            dst_col,
            weight_col,
            weight_key,
            kind,
            built,
        });
    }
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes in path-index section"));
    }
    db.path_indexes().set_version(version);
    Ok(())
}

/// Decode one persisted built index. The payload is always consumed (so the
/// reader stays aligned for the next entry); the result is `None` — restore
/// the definition, rebuild lazily — when the owning table's version moved
/// past the one the index was built against.
fn decode_built_data(
    db: &Database,
    table: &str,
    kind: PathIndexKind,
    weight_key: Option<usize>,
    table_version: u64,
    r: &mut ByteReader<'_>,
) -> Result<Option<(u64, Arc<PathIndexData>)>> {
    let src_key = r.get_usize().map_err(Error::Storage)?;
    let dst_key = r.get_usize().map_err(Error::Storage)?;
    let n = r.get_usize().map_err(Error::Storage)?;
    let mut vals = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        vals.push(get_value(r)?);
    }
    let csr = decode_csr(r)?;
    let reverse = decode_csr(r)?;
    let weights_fwd = get_opt_i64s(r)?;
    let weights_bwd = get_opt_i64s(r)?;
    let accel = match r.get_u8().map_err(Error::Storage)? {
        0 => {
            let landmarks = get_u32s(r)?;
            let k = r.get_usize().map_err(Error::Storage)?;
            let mut fwd = Vec::with_capacity(k.min(1024));
            for _ in 0..k {
                fwd.push(get_u64s(r)?);
            }
            let k = r.get_usize().map_err(Error::Storage)?;
            let mut bwd = Vec::with_capacity(k.min(1024));
            for _ in 0..k {
                bwd.push(get_u64s(r)?);
            }
            AccelIndex::Alt(Landmarks::from_parts(landmarks, fwd, bwd).map_err(corrupt)?)
        }
        1 => {
            let rank = get_u32s(r)?;
            let fwd = decode_up_graph(r)?;
            let bwd = decode_up_graph(r)?;
            let shortcuts = r.get_u64().map_err(Error::Storage)?;
            AccelIndex::Ch(
                ContractionHierarchy::from_parts(ChParts { rank, fwd, bwd, shortcuts })
                    .map_err(corrupt)?,
            )
        }
        other => return Err(corrupt(format!("unknown accel tag {other}"))),
    };

    // Kind/data agreement: a corrupt file must not smuggle a CH payload
    // into an entry the planner believes is ALT (or vice versa).
    let tag_matches = matches!(
        (&accel, kind),
        (AccelIndex::Alt(_), PathIndexKind::Landmarks(_))
            | (AccelIndex::Ch(_), PathIndexKind::Contraction)
    );
    if !tag_matches {
        return Err(corrupt("path-index accel payload does not match declared kind"));
    }

    // Stale built data (WAL mutations past the snapshot): fall back to the
    // lazy rebuild. The bytes were consumed above, so decoding continues.
    let Ok(current) = db.catalog().entry(table) else {
        return Err(corrupt(format!("path index references missing table '{table}'")));
    };
    if current.version != table_version {
        return Ok(None);
    }

    // Recompute the NULL-filtered edge snapshot off the restored base table
    // — deterministic for a matching version, and not index-build work.
    let edges = null_filtered_edges(Arc::clone(&current.table), src_key, dst_key);
    if csr.num_edges() != edges.row_count() {
        return Err(corrupt(format!(
            "persisted CSR has {} edges but table '{table}' yields {}",
            csr.num_edges(),
            edges.row_count()
        )));
    }
    if csr.num_vertices() as usize != vals.len() {
        return Err(corrupt("persisted dictionary size disagrees with CSR vertex count"));
    }
    if reverse.num_vertices() != csr.num_vertices() || reverse.num_edges() != csr.num_edges() {
        return Err(corrupt("persisted reverse CSR disagrees with forward CSR"));
    }
    if let Some((f, b)) = weights_fwd.as_ref().zip(weights_bwd.as_ref()) {
        if f.len() != csr.num_edges() || b.len() != csr.num_edges() {
            return Err(corrupt("persisted weight arrays disagree with CSR edge count"));
        }
    }
    if weight_key.is_some() != weights_fwd.is_some() {
        return Err(corrupt("persisted weights disagree with the declared weight column"));
    }
    let dict: HashMap<HashableValue, u32> =
        vals.into_iter().enumerate().map(|(i, v)| (HashableValue(v), i as u32)).collect();
    if dict.len() != csr.num_vertices() as usize {
        return Err(corrupt("persisted dictionary contains duplicate vertex values"));
    }
    let graph =
        Arc::new(MaterializedGraph::from_saved(edges, csr, reverse, dict, src_key, dst_key));
    let data = PathIndexData { graph, accel, weight_key, weights_fwd, weights_bwd };
    Ok(Some((table_version, Arc::new(data))))
}

fn decode_csr(r: &mut ByteReader<'_>) -> Result<Csr> {
    let n = r.get_usize().map_err(Error::Storage)?;
    let mut offsets = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        offsets.push(r.get_usize().map_err(Error::Storage)?);
    }
    let targets = get_u32s(r)?;
    let edge_rows = get_u32s(r)?;
    Csr::from_raw_parts(offsets, targets, edge_rows).map_err(|e| corrupt(e.to_string()))
}

fn decode_up_graph(r: &mut ByteReader<'_>) -> Result<UpGraphParts> {
    let n = r.get_usize().map_err(Error::Storage)?;
    let mut offsets = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        offsets.push(r.get_usize().map_err(Error::Storage)?);
    }
    let targets = get_u32s(r)?;
    let weights = get_u64s(r)?;
    Ok(UpGraphParts { offsets, targets, weights })
}

fn get_u32s(r: &mut ByteReader<'_>) -> Result<Vec<u32>> {
    let n = r.get_usize().map_err(Error::Storage)?;
    let mut vals = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        vals.push(r.get_u32().map_err(Error::Storage)?);
    }
    Ok(vals)
}

fn get_u64s(r: &mut ByteReader<'_>) -> Result<Vec<u64>> {
    let n = r.get_usize().map_err(Error::Storage)?;
    let mut vals = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        vals.push(r.get_u64().map_err(Error::Storage)?);
    }
    Ok(vals)
}

fn get_opt_i64s(r: &mut ByteReader<'_>) -> Result<Option<Vec<i64>>> {
    match r.get_u8().map_err(Error::Storage)? {
        0 => Ok(None),
        _ => {
            let n = r.get_usize().map_err(Error::Storage)?;
            let mut vals = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                vals.push(r.get_i64().map_err(Error::Storage)?);
            }
            Ok(Some(vals))
        }
    }
}
