//! Runtime expression evaluation.
//!
//! Values flow as [`Value`]s with SQL three-valued logic. Column-at-a-time
//! wrappers ([`eval_to_column`], [`eval_filter_indices`]) provide fast paths
//! for bare column references and constants, which dominate the graph
//! workloads (edge keys are plain columns, `CHEAPEST SUM(1)` is a constant).

use crate::error::{exec_err, Error};
use crate::plan::expr::{BinaryOp, BoundExpr, ScalarFunc, UnaryOp};
use gsql_storage::{Column, ColumnBuilder, DataType, Date, Table, Value};
use std::cmp::Ordering;

type Result<T> = std::result::Result<T, Error>;

/// Abstracts "one row of input" so the evaluator can run over a plain table
/// row or over a virtual pair of rows (join probing) without materializing.
pub trait RowAccess {
    /// Value of column `col` in this row.
    fn value(&self, col: usize) -> Value;
}

/// A row of a materialized table.
pub struct TableRow<'a> {
    /// The table.
    pub table: &'a Table,
    /// The row index.
    pub row: usize,
}

impl RowAccess for TableRow<'_> {
    fn value(&self, col: usize) -> Value {
        self.table.column(col).get(self.row)
    }
}

/// A virtual concatenation of one left row and one (optional) right row —
/// the shape seen by join conditions. `right_row == None` models the
/// NULL-extended row of a left outer join.
pub struct PairRow<'a> {
    /// Left input.
    pub left: &'a Table,
    /// Row in the left input.
    pub left_row: usize,
    /// Right input.
    pub right: &'a Table,
    /// Row in the right input, or `None` for NULL extension.
    pub right_row: Option<usize>,
    /// Number of left columns (right columns start here).
    pub n_left: usize,
}

impl RowAccess for PairRow<'_> {
    fn value(&self, col: usize) -> Value {
        if col < self.n_left {
            self.left.column(col).get(self.left_row)
        } else {
            match self.right_row {
                Some(r) => self.right.column(col - self.n_left).get(r),
                None => Value::Null,
            }
        }
    }
}

/// Evaluate `expr` for row `row` of `table`.
pub fn eval(expr: &BoundExpr, table: &Table, row: usize, params: &[Value]) -> Result<Value> {
    eval_row(expr, &TableRow { table, row }, params)
}

/// Evaluate `expr` over an abstract row.
pub fn eval_row(expr: &BoundExpr, ctx: &impl RowAccess, params: &[Value]) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column { index, .. } => Ok(ctx.value(*index)),
        BoundExpr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or_else(|| exec_err!("missing value for parameter ?{}", i + 1)),
        BoundExpr::Unary { op, expr } => {
            let v = eval_row(expr, ctx, params)?;
            eval_unary(*op, v)
        }
        BoundExpr::Binary { left, op, right } => {
            // Short-circuit AND/OR per three-valued logic.
            match op {
                BinaryOp::And => {
                    let l = eval_row(left, ctx, params)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_row(right, ctx, params)?;
                    return eval_and(l, r);
                }
                BinaryOp::Or => {
                    let l = eval_row(left, ctx, params)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_row(right, ctx, params)?;
                    return eval_or(l, r);
                }
                _ => {}
            }
            let l = eval_row(left, ctx, params)?;
            let r = eval_row(right, ctx, params)?;
            eval_binary(l, *op, r)
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_row(expr, ctx, params)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval_row(expr, ctx, params)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval_row(item, ctx, params)?;
                if w.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&w) {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Between { expr, low, high, negated } => {
            let v = eval_row(expr, ctx, params)?;
            let lo = eval_row(low, ctx, params)?;
            let hi = eval_row(high, ctx, params)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let inside =
                compare(&v, &lo)? != Ordering::Less && compare(&v, &hi)? != Ordering::Greater;
            Ok(Value::Bool(inside != *negated))
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval_row(expr, ctx, params)?;
            let p = eval_row(pattern, ctx, params)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    Ok(Value::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(exec_err!("LIKE requires strings, found {a} and {b}")),
            }
        }
        BoundExpr::Case { operand, branches, else_expr } => {
            match operand {
                Some(op) => {
                    let v = eval_row(op, ctx, params)?;
                    for (when, then) in branches {
                        let w = eval_row(when, ctx, params)?;
                        if !v.is_null() && !w.is_null() && v.sql_eq(&w) {
                            return eval_row(then, ctx, params);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if eval_row(when, ctx, params)? == Value::Bool(true) {
                            return eval_row(then, ctx, params);
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => eval_row(e, ctx, params),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::Cast { expr, ty } => {
            let v = eval_row(expr, ctx, params)?;
            cast_value(v, *ty)
        }
        BoundExpr::Func { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_row(a, ctx, params)?);
            }
            eval_func(*func, vals)
        }
    }
}

/// Evaluate a constant expression (no column references).
pub fn eval_const(expr: &BoundExpr, params: &[Value]) -> Result<Value> {
    // A zero-column single-row table satisfies the interface.
    let empty = Table::empty(gsql_storage::Schema::default());
    eval(expr, &empty, 0, params)
}

/// Evaluate `expr` over every row of `table`, producing a column of type
/// `target_ty`.
pub fn eval_to_column(
    expr: &BoundExpr,
    table: &Table,
    params: &[Value],
    target_ty: DataType,
) -> Result<Column> {
    // Fast path 1: bare column reference of the right type.
    if let BoundExpr::Column { index, ty } = expr {
        if *ty == target_ty {
            return Ok(table.column(*index).clone());
        }
    }
    // Fast path 2: constant (incl. parameters).
    if expr.is_constant() {
        let v = eval_const(expr, params)?;
        let mut b = ColumnBuilder::new(target_ty);
        for _ in 0..table.row_count() {
            b.push(v.clone()).map_err(Error::Storage)?;
        }
        return Ok(b.finish());
    }
    // Fast path 3: vectorizable numeric expression trees (column ∘ constant
    // arithmetic and numeric casts) — this is what `CHEAPEST SUM` weight
    // expressions like `CAST(weight * 2 AS INTEGER)` hit, avoiding per-row
    // `Value` boxing over the whole edge table.
    if let Some(col) = vectorize(expr, table, params)? {
        if col.data_type() == target_ty {
            return Ok(col);
        }
        if col.data_type() == DataType::Int && target_ty == DataType::Double {
            let (vals, validity) = col.as_int_slice().expect("checked Int");
            return Ok(Column::Double(vals.iter().map(|&v| v as f64).collect(), validity.clone()));
        }
        // Unexpected type: fall through to the general row loop below.
    }
    let mut b = ColumnBuilder::new(target_ty);
    for row in 0..table.row_count() {
        let v = eval(expr, table, row, params)?;
        b.push(v).map_err(Error::Storage)?;
    }
    Ok(b.finish())
}

/// Column-at-a-time evaluation of a restricted numeric expression family:
/// column refs, `column ∘ constant` / `constant ∘ column` arithmetic, and
/// numeric `CAST`s. Returns `None` for anything else (the caller falls back
/// to the row-at-a-time evaluator).
fn vectorize(expr: &BoundExpr, table: &Table, params: &[Value]) -> Result<Option<Column>> {
    match expr {
        BoundExpr::Column { index, ty } if ty.is_numeric() => {
            Ok(Some(table.column(*index).clone()))
        }
        BoundExpr::Cast { expr: inner, ty } => {
            let Some(col) = vectorize(inner, table, params)? else {
                return Ok(None);
            };
            match (col, ty) {
                (col, ty) if col.data_type() == *ty => Ok(Some(col)),
                (Column::Int(vals, validity), DataType::Double) => {
                    Ok(Some(Column::Double(vals.iter().map(|&v| v as f64).collect(), validity)))
                }
                (Column::Double(vals, validity), DataType::Int) => {
                    let mut out = Vec::with_capacity(vals.len());
                    for (i, &v) in vals.iter().enumerate() {
                        if validity.get(i) {
                            if !v.is_finite() || !(i64::MIN as f64..=i64::MAX as f64).contains(&v) {
                                return Err(exec_err!("cannot cast {v} to INTEGER"));
                            }
                            out.push(v.trunc() as i64);
                        } else {
                            out.push(0);
                        }
                    }
                    Ok(Some(Column::Int(out, validity)))
                }
                _ => Ok(None),
            }
        }
        BoundExpr::Binary { left, op, right }
            if matches!(op, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div) =>
        {
            // Exactly one side must be a constant.
            let (col_expr, const_expr, col_left) = if right.is_constant() {
                (left, right, true)
            } else if left.is_constant() {
                (right, left, false)
            } else {
                return Ok(None);
            };
            let Some(col) = vectorize(col_expr, table, params)? else {
                return Ok(None);
            };
            let k = eval_const(const_expr, params)?;
            if k.is_null() {
                return Ok(None); // NULL constant: row path handles 3VL
            }
            vectorized_arith(col, *op, k, col_left).map(Some)
        }
        _ => Ok(None),
    }
}

/// Apply `col ∘ k` (or `k ∘ col` when `col_left` is false) element-wise.
fn vectorized_arith(col: Column, op: BinaryOp, k: Value, col_left: bool) -> Result<Column> {
    // Integer × integer stays integer except division; everything else
    // widens to double, matching the scalar evaluator.
    match (&col, &k, op) {
        (
            Column::Int(vals, validity),
            Value::Int(kv),
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul,
        ) => {
            let kv = *kv;
            let mut out = Vec::with_capacity(vals.len());
            for (i, &v) in vals.iter().enumerate() {
                if !validity.get(i) {
                    out.push(0);
                    continue;
                }
                let (a, b) = if col_left { (v, kv) } else { (kv, v) };
                let r = match op {
                    BinaryOp::Add => a.checked_add(b),
                    BinaryOp::Sub => a.checked_sub(b),
                    BinaryOp::Mul => a.checked_mul(b),
                    _ => unreachable!(),
                };
                out.push(r.ok_or_else(|| exec_err!("integer overflow in {a} {op:?} {b}"))?);
            }
            Ok(Column::Int(out, validity.clone()))
        }
        _ => {
            // Double arithmetic (covers Int/Double mixes and division).
            let kv =
                k.as_double().ok_or_else(|| exec_err!("non-numeric operand {k} in arithmetic"))?;
            let (vals, validity): (Vec<f64>, _) = match &col {
                Column::Int(v, b) => (v.iter().map(|&x| x as f64).collect(), b.clone()),
                Column::Double(v, b) => (v.clone(), b.clone()),
                other => {
                    return Err(exec_err!(
                        "non-numeric column of type {} in arithmetic",
                        other.data_type()
                    ))
                }
            };
            if op == BinaryOp::Div {
                let divisor_is_const = col_left;
                if divisor_is_const && kv == 0.0 {
                    return Err(exec_err!("division by zero"));
                }
            }
            let mut out = Vec::with_capacity(vals.len());
            for (i, &v) in vals.iter().enumerate() {
                if !validity.get(i) {
                    out.push(0.0);
                    continue;
                }
                let (a, b) = if col_left { (v, kv) } else { (kv, v) };
                let r = match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    BinaryOp::Div => {
                        if b == 0.0 {
                            return Err(exec_err!("division by zero"));
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                out.push(r);
            }
            Ok(Column::Double(out, validity))
        }
    }
}

/// Evaluate a predicate over every row, returning the indices where it is
/// true (NULL and false are dropped — SQL filter semantics).
///
/// With `threads > 1` the row-at-a-time fallback evaluates contiguous row
/// chunks in parallel and concatenates the surviving indices in chunk
/// order, so the result is identical to the sequential scan (a sequential
/// scan reports the error of the earliest failing row; the parallel path
/// surfaces the earliest failing *chunk*'s error, which is the same shape
/// of error on the same predicate).
pub fn eval_filter_indices(
    predicate: &BoundExpr,
    table: &Table,
    params: &[Value],
    threads: usize,
) -> Result<Vec<usize>> {
    if let Some(mask) = predicate_mask(predicate, table, 0..table.row_count(), params)? {
        return Ok(mask.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect());
    }
    let chunks = gsql_parallel::Pool::new(threads).try_map_chunks(
        table.row_count(),
        |range| -> Result<Vec<usize>> {
            let mut keep = Vec::new();
            for row in range {
                if eval(predicate, table, row, params)? == Value::Bool(true) {
                    keep.push(row);
                }
            }
            Ok(keep)
        },
    )?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Range-restricted [`eval_filter_indices`]: the kept **global** row
/// indices within `range` of `table`, in ascending order. Runs on the
/// calling thread — pipeline workers call this once per morsel, so the
/// parallelism lives in the morsel scheduling, not here. The columnar
/// `column ⋈ constant` mask fast path applies to the range alone.
pub fn eval_filter_range(
    predicate: &BoundExpr,
    table: &Table,
    range: std::ops::Range<usize>,
    params: &[Value],
) -> Result<Vec<usize>> {
    if let Some(mask) = predicate_mask(predicate, table, range.clone(), params)? {
        return Ok(range.zip(mask).filter_map(|(i, b)| b.then_some(i)).collect());
    }
    let mut keep = Vec::new();
    for row in range {
        if eval(predicate, table, row, params)? == Value::Bool(true) {
            keep.push(row);
        }
    }
    Ok(keep)
}

/// Column-at-a-time filter evaluation for `column ⋈ constant` comparisons
/// and conjunctions thereof, restricted to `range`: `mask[i]` is true when
/// the predicate is definitely true for row `range.start + i` (NULLs map
/// to false, matching filter semantics). Returns `None` when the predicate
/// shape is not covered.
fn predicate_mask(
    predicate: &BoundExpr,
    table: &Table,
    range: std::ops::Range<usize>,
    params: &[Value],
) -> Result<Option<Vec<bool>>> {
    match predicate {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            let (Some(l), Some(r)) = (
                predicate_mask(left, table, range.clone(), params)?,
                predicate_mask(right, table, range, params)?,
            ) else {
                return Ok(None);
            };
            Ok(Some(l.iter().zip(&r).map(|(&a, &b)| a && b).collect()))
        }
        BoundExpr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Lt
                    | BinaryOp::LtEq
                    | BinaryOp::Gt
                    | BinaryOp::GtEq
            ) =>
        {
            // Normalize to column ⋈ constant.
            let (col_expr, const_expr, flipped) = match (&**left, &**right) {
                (BoundExpr::Column { .. }, c) if c.is_constant() => (left, right, false),
                (c, BoundExpr::Column { .. }) if c.is_constant() => (right, left, true),
                _ => return Ok(None),
            };
            let BoundExpr::Column { index, .. } = &**col_expr else { unreachable!() };
            let k = eval_const(const_expr, params)?;
            if k.is_null() {
                // NULL comparison: uniformly unknown -> all false.
                return Ok(Some(vec![false; range.len()]));
            }
            let op = if flipped { flip_cmp(*op) } else { *op };
            Ok(compare_column_const(table.column(*index), op, &k, range))
        }
        _ => Ok(None),
    }
}

fn flip_cmp(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

fn cmp_matches(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison operators only"),
    }
}

/// Typed slice comparison against a constant over `range`; `None` when the
/// column type and constant type do not pair up for a fast path.
fn compare_column_const(
    col: &Column,
    op: BinaryOp,
    k: &Value,
    range: std::ops::Range<usize>,
) -> Option<Vec<bool>> {
    let mut mask = Vec::with_capacity(range.len());
    match (col, k) {
        (Column::Int(vals, validity), Value::Int(kv)) => {
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, vals[i].cmp(kv)));
            }
        }
        (Column::Int(vals, validity), Value::Double(kv)) => {
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, (vals[i] as f64).total_cmp(kv)));
            }
        }
        (Column::Double(vals, validity), _) => {
            let kv = k.as_double()?;
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, vals[i].total_cmp(&kv)));
            }
        }
        (Column::Date(vals, validity), Value::Date(kd)) => {
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, vals[i].cmp(&kd.0)));
            }
        }
        (Column::Str(vals, validity), Value::Str(ks)) => {
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, vals[i].as_str().cmp(ks.as_str())));
            }
        }
        (Column::Bool(vals, validity), Value::Bool(kb)) => {
            for i in range {
                mask.push(validity.get(i) && cmp_matches(op, vals[i].cmp(kb)));
            }
        }
        _ => return None,
    }
    Some(mask)
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(x) => x
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| exec_err!("integer overflow negating {x}")),
            Value::Double(x) => Ok(Value::Double(-x)),
            other => Err(exec_err!("cannot negate {other}")),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(exec_err!("NOT requires a boolean, found {other}")),
        },
    }
}

fn eval_and(l: Value, r: Value) -> Result<Value> {
    match (to_bool3(l)?, to_bool3(r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
        (Some(true), Some(true)) => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

fn eval_or(l: Value, r: Value) -> Result<Value> {
    match (to_bool3(l)?, to_bool3(r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
        (Some(false), Some(false)) => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

fn to_bool3(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(exec_err!("expected a boolean, found {other}")),
    }
}

/// Total-order comparison for comparable values; errors on mismatched types.
fn compare(l: &Value, r: &Value) -> Result<Ordering> {
    match (l, r) {
        (Value::Int(_) | Value::Double(_), Value::Int(_) | Value::Double(_))
        | (Value::Str(_), Value::Str(_))
        | (Value::Bool(_), Value::Bool(_))
        | (Value::Date(_), Value::Date(_)) => Ok(l.total_cmp(r)),
        (a, b) => Err(exec_err!("cannot compare {a} with {b}")),
    }
}

fn eval_binary(l: Value, op: BinaryOp, r: Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => return eval_and(l, r),
        Or => return eval_or(l, r),
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Mod => eval_arith(l, op, r),
        Div => {
            let (a, b) = (
                l.as_double().ok_or_else(|| exec_err!("non-numeric operand to '/': {l}"))?,
                r.as_double().ok_or_else(|| exec_err!("non-numeric operand to '/': {r}"))?,
            );
            if b == 0.0 {
                return Err(exec_err!("division by zero"));
            }
            Ok(Value::Double(a / b))
        }
        Concat => Ok(Value::Str(format!("{l}{r}"))),
        Eq => Ok(Value::Bool(l.sql_eq(&r))),
        NotEq => Ok(Value::Bool(!l.sql_eq(&r))),
        Lt => Ok(Value::Bool(compare(&l, &r)? == Ordering::Less)),
        LtEq => Ok(Value::Bool(compare(&l, &r)? != Ordering::Greater)),
        Gt => Ok(Value::Bool(compare(&l, &r)? == Ordering::Greater)),
        GtEq => Ok(Value::Bool(compare(&l, &r)? != Ordering::Less)),
        And | Or => unreachable!("handled above"),
    }
}

fn eval_arith(l: Value, op: BinaryOp, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            let out = match op {
                BinaryOp::Add => a.checked_add(b),
                BinaryOp::Sub => a.checked_sub(b),
                BinaryOp::Mul => a.checked_mul(b),
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(exec_err!("division by zero"));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int).ok_or_else(|| exec_err!("integer overflow in {a} {op:?} {b}"))
        }
        _ => {
            let a = l.as_double().ok_or_else(|| exec_err!("non-numeric operand: {l}"))?;
            let b = r.as_double().ok_or_else(|| exec_err!("non-numeric operand: {r}"))?;
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Err(exec_err!("division by zero"));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Double(out))
        }
    }
}

fn eval_func(func: ScalarFunc, mut args: Vec<Value>) -> Result<Value> {
    // COALESCE/NULLIF have their own NULL behaviour.
    match func {
        ScalarFunc::Coalesce => {
            for v in args {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            return Ok(Value::Null);
        }
        ScalarFunc::Nullif => {
            let b = args.pop().expect("arity checked");
            let a = args.pop().expect("arity checked");
            if !a.is_null() && !b.is_null() && a.sql_eq(&b) {
                return Ok(Value::Null);
            }
            return Ok(a);
        }
        _ => {}
    }
    let v = args.pop().expect("arity checked");
    if v.is_null() {
        return Ok(Value::Null);
    }
    match func {
        ScalarFunc::Upper => match v {
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            other => Err(exec_err!("UPPER requires a string, found {other}")),
        },
        ScalarFunc::Lower => match v {
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            other => Err(exec_err!("LOWER requires a string, found {other}")),
        },
        ScalarFunc::Length => match v {
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            other => Err(exec_err!("LENGTH requires a string, found {other}")),
        },
        ScalarFunc::Abs => match v {
            Value::Int(x) => Ok(Value::Int(x.abs())),
            Value::Double(x) => Ok(Value::Double(x.abs())),
            other => Err(exec_err!("ABS requires a number, found {other}")),
        },
        ScalarFunc::Round => match v {
            Value::Int(x) => Ok(Value::Int(x)),
            Value::Double(x) => Ok(Value::Double(x.round())),
            other => Err(exec_err!("ROUND requires a number, found {other}")),
        },
        ScalarFunc::Floor => match v {
            Value::Int(x) => Ok(Value::Int(x)),
            Value::Double(x) => Ok(Value::Double(x.floor())),
            other => Err(exec_err!("FLOOR requires a number, found {other}")),
        },
        ScalarFunc::Ceil => match v {
            Value::Int(x) => Ok(Value::Int(x)),
            Value::Double(x) => Ok(Value::Double(x.ceil())),
            other => Err(exec_err!("CEIL requires a number, found {other}")),
        },
        ScalarFunc::Sqrt => {
            let x = v.as_double().ok_or_else(|| exec_err!("SQRT requires a number"))?;
            if x < 0.0 {
                return Err(exec_err!("SQRT of a negative number"));
            }
            Ok(Value::Double(x.sqrt()))
        }
        ScalarFunc::Coalesce | ScalarFunc::Nullif => unreachable!("handled above"),
    }
}

/// `CAST` semantics.
pub fn cast_value(v: Value, ty: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    if v.data_type() == Some(ty) {
        return Ok(v);
    }
    match (v, ty) {
        (Value::Int(x), DataType::Double) => Ok(Value::Double(x as f64)),
        (Value::Double(x), DataType::Int) => {
            if x.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(&x) {
                Ok(Value::Int(x.trunc() as i64))
            } else {
                Err(exec_err!("cannot cast {x} to INTEGER"))
            }
        }
        (Value::Int(x), DataType::Varchar) => Ok(Value::Str(x.to_string())),
        (Value::Double(x), DataType::Varchar) => Ok(Value::Str(Value::Double(x).to_string())),
        (Value::Bool(b), DataType::Varchar) => Ok(Value::Str(b.to_string())),
        (Value::Date(d), DataType::Varchar) => Ok(Value::Str(d.to_string())),
        (Value::Str(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| exec_err!("cannot cast '{s}' to INTEGER")),
        (Value::Str(s), DataType::Double) => s
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| exec_err!("cannot cast '{s}' to DOUBLE")),
        (Value::Str(s), DataType::Date) => Date::parse(&s).map(Value::Date).map_err(Error::Storage),
        (Value::Str(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(exec_err!("cannot cast '{s}' to BOOLEAN")),
        },
        (Value::Bool(b), DataType::Int) => Ok(Value::Int(i64::from(b))),
        (v, ty) => Err(exec_err!(
            "unsupported cast from {} to {ty}",
            v.data_type().map(|t| t.to_string()).unwrap_or_else(|| "NULL".into())
        )),
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=s.len()).any(|k| rec(&s[k..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::expr::BoundExpr as E;

    fn lit(v: Value) -> E {
        E::Literal(v)
    }

    fn binary(l: E, op: BinaryOp, r: E) -> E {
        E::Binary { left: Box::new(l), op, right: Box::new(r) }
    }

    fn run(e: &E) -> Value {
        eval_const(e, &[]).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(&binary(lit(Value::Int(2)), BinaryOp::Add, lit(Value::Int(3)))),
            Value::Int(5)
        );
        assert_eq!(
            run(&binary(lit(Value::Int(7)), BinaryOp::Div, lit(Value::Int(2)))),
            Value::Double(3.5)
        );
        assert_eq!(
            run(&binary(lit(Value::Double(1.5)), BinaryOp::Mul, lit(Value::Int(2)))),
            Value::Double(3.0)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let e = binary(lit(Value::Int(1)), BinaryOp::Div, lit(Value::Int(0)));
        assert!(eval_const(&e, &[]).is_err());
    }

    #[test]
    fn integer_overflow_errors() {
        let e = binary(lit(Value::Int(i64::MAX)), BinaryOp::Add, lit(Value::Int(1)));
        assert!(eval_const(&e, &[]).is_err());
    }

    #[test]
    fn null_propagation() {
        assert!(run(&binary(lit(Value::Null), BinaryOp::Add, lit(Value::Int(1)))).is_null());
        assert!(run(&binary(lit(Value::Null), BinaryOp::Eq, lit(Value::Int(1)))).is_null());
    }

    #[test]
    fn three_valued_and_or() {
        let t = lit(Value::Bool(true));
        let f = lit(Value::Bool(false));
        let n = lit(Value::Null);
        assert_eq!(run(&binary(f.clone(), BinaryOp::And, n.clone())), Value::Bool(false));
        assert!(run(&binary(t.clone(), BinaryOp::And, n.clone())).is_null());
        assert_eq!(run(&binary(t.clone(), BinaryOp::Or, n.clone())), Value::Bool(true));
        assert!(run(&binary(f, BinaryOp::Or, n)).is_null());
        let _ = t;
    }

    #[test]
    fn concat_stringifies() {
        let e = binary(lit(Value::from("a")), BinaryOp::Concat, lit(Value::Int(7)));
        assert_eq!(run(&e), Value::from("a7"));
    }

    #[test]
    fn in_list_three_valued() {
        // 1 IN (2, NULL) is NULL, not false.
        let e = E::InList {
            expr: Box::new(lit(Value::Int(1))),
            list: vec![lit(Value::Int(2)), lit(Value::Null)],
            negated: false,
        };
        assert!(run(&e).is_null());
        let e = E::InList {
            expr: Box::new(lit(Value::Int(2))),
            list: vec![lit(Value::Int(2)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(run(&e), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn case_expressions() {
        let e = E::Case {
            operand: None,
            branches: vec![(lit(Value::Bool(false)), lit(Value::Int(1)))],
            else_expr: None,
        };
        assert!(run(&e).is_null());
        let e = E::Case {
            operand: Some(Box::new(lit(Value::Int(2)))),
            branches: vec![
                (lit(Value::Int(1)), lit(Value::from("one"))),
                (lit(Value::Int(2)), lit(Value::from("two"))),
            ],
            else_expr: Some(Box::new(lit(Value::from("other")))),
        };
        assert_eq!(run(&e), Value::from("two"));
    }

    #[test]
    fn casts() {
        assert_eq!(cast_value(Value::Double(2.9), DataType::Int).unwrap(), Value::Int(2));
        assert_eq!(cast_value(Value::from("42"), DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            cast_value(Value::from("2011-01-01"), DataType::Date).unwrap(),
            Value::Date(Date::parse("2011-01-01").unwrap())
        );
        assert!(cast_value(Value::from("x"), DataType::Int).is_err());
        assert!(cast_value(Value::Double(f64::NAN), DataType::Int).is_err());
        assert_eq!(cast_value(Value::Null, DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn functions() {
        assert_eq!(
            eval_func(ScalarFunc::Upper, vec![Value::from("abc")]).unwrap(),
            Value::from("ABC")
        );
        assert_eq!(eval_func(ScalarFunc::Length, vec![Value::from("abc")]).unwrap(), Value::Int(3));
        assert_eq!(eval_func(ScalarFunc::Abs, vec![Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_func(ScalarFunc::Coalesce, vec![Value::Null, Value::Int(2)]).unwrap(),
            Value::Int(2)
        );
        assert!(eval_func(ScalarFunc::Nullif, vec![Value::Int(1), Value::Int(1)])
            .unwrap()
            .is_null());
        assert!(eval_func(ScalarFunc::Sqrt, vec![Value::Double(-1.0)]).is_err());
    }

    #[test]
    fn params_resolve_by_index() {
        let e = E::Param(1);
        assert_eq!(eval_const(&e, &[Value::Int(1), Value::Int(2)]).unwrap(), Value::Int(2));
        assert!(eval_const(&e, &[Value::Int(1)]).is_err());
    }

    // ------------------------------------------------ vectorized fast paths

    use gsql_storage::{ColumnDef, Schema};

    fn numbers_table() -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("i", DataType::Int),
            ColumnDef::new("d", DataType::Double),
            ColumnDef::new("s", DataType::Varchar),
        ]));
        t.append_row(vec![Value::Int(1), Value::Double(0.5), Value::from("a")]).unwrap();
        t.append_row(vec![Value::Int(-3), Value::Double(2.5), Value::from("b")]).unwrap();
        t.append_row(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        t.append_row(vec![Value::Int(10), Value::Double(-1.0), Value::from("c")]).unwrap();
        t
    }

    fn col_ref(i: usize, ty: DataType) -> E {
        E::Column { index: i, ty }
    }

    /// The vectorized result must equal the row-at-a-time result.
    fn assert_vector_matches_scalar(e: &E, ty: DataType) {
        let t = numbers_table();
        let fast = eval_to_column(e, &t, &[], ty).unwrap();
        for row in 0..t.row_count() {
            let scalar = eval(e, &t, row, &[]).unwrap();
            let vector = fast.get(row);
            match (&scalar, &vector) {
                (Value::Null, v) => assert!(v.is_null(), "row {row}"),
                (a, b) => assert!(a.sql_eq(b), "row {row}: scalar {a} vs vector {b}"),
            }
        }
    }

    #[test]
    fn vectorized_arith_matches_scalar() {
        // The appendix A.4 weight shape: CAST(col * 2 AS INTEGER).
        let weight = E::Cast {
            expr: Box::new(binary(col_ref(1, DataType::Double), BinaryOp::Mul, lit(Value::Int(2)))),
            ty: DataType::Int,
        };
        assert_vector_matches_scalar(&weight, DataType::Int);
        assert_vector_matches_scalar(
            &binary(col_ref(0, DataType::Int), BinaryOp::Add, lit(Value::Int(7))),
            DataType::Int,
        );
        assert_vector_matches_scalar(
            &binary(lit(Value::Int(100)), BinaryOp::Sub, col_ref(0, DataType::Int)),
            DataType::Int,
        );
        assert_vector_matches_scalar(
            &binary(col_ref(0, DataType::Int), BinaryOp::Div, lit(Value::Int(4))),
            DataType::Double,
        );
        assert_vector_matches_scalar(
            &E::Cast { expr: Box::new(col_ref(0, DataType::Int)), ty: DataType::Double },
            DataType::Double,
        );
    }

    #[test]
    fn vectorized_div_by_zero_still_errors() {
        let t = numbers_table();
        let e = binary(col_ref(0, DataType::Int), BinaryOp::Div, lit(Value::Int(0)));
        assert!(eval_to_column(&e, &t, &[], DataType::Double).is_err());
    }

    #[test]
    fn vectorized_overflow_still_errors() {
        let t = numbers_table();
        let e = binary(col_ref(0, DataType::Int), BinaryOp::Mul, lit(Value::Int(i64::MAX)));
        assert!(eval_to_column(&e, &t, &[], DataType::Int).is_err());
    }

    #[test]
    fn filter_masks_match_scalar_filtering() {
        let t = numbers_table();
        let cases = vec![
            binary(col_ref(0, DataType::Int), BinaryOp::Gt, lit(Value::Int(0))),
            binary(col_ref(0, DataType::Int), BinaryOp::Eq, lit(Value::Double(1.0))),
            binary(lit(Value::Int(0)), BinaryOp::Lt, col_ref(0, DataType::Int)),
            binary(col_ref(1, DataType::Double), BinaryOp::LtEq, lit(Value::Double(0.5))),
            binary(col_ref(2, DataType::Varchar), BinaryOp::NotEq, lit(Value::from("b"))),
            // conjunction of two vectorizable comparisons
            binary(
                binary(col_ref(0, DataType::Int), BinaryOp::GtEq, lit(Value::Int(-3))),
                BinaryOp::And,
                binary(col_ref(1, DataType::Double), BinaryOp::Gt, lit(Value::Double(0.0))),
            ),
        ];
        for e in cases {
            let fast = eval_filter_indices(&e, &t, &[], 1).unwrap();
            let mut slow = Vec::new();
            for row in 0..t.row_count() {
                if eval(&e, &t, row, &[]).unwrap() == Value::Bool(true) {
                    slow.push(row);
                }
            }
            assert_eq!(fast, slow, "predicate {e:?}");
        }
    }

    #[test]
    fn filter_mask_null_constant_matches_scalar() {
        let t = numbers_table();
        let e = binary(col_ref(0, DataType::Int), BinaryOp::Eq, lit(Value::Null));
        assert!(eval_filter_indices(&e, &t, &[], 1).unwrap().is_empty());
    }

    #[test]
    fn date_filter_uses_fast_path_correctly() {
        let mut t = Table::empty(Schema::new(vec![ColumnDef::new("d", DataType::Date)]));
        for s in ["2010-03-24", "2010-12-02", "2011-06-10"] {
            t.append_row(vec![Value::Date(Date::parse(s).unwrap())]).unwrap();
        }
        t.append_row(vec![Value::Null]).unwrap();
        let e = binary(
            col_ref(0, DataType::Date),
            BinaryOp::Lt,
            lit(Value::Date(Date::parse("2011-01-01").unwrap())),
        );
        assert_eq!(eval_filter_indices(&e, &t, &[], 1).unwrap(), vec![0, 1]);
    }
}
