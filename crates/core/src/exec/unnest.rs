//! `UNNEST`: flattening nested-table path columns into rows.
//!
//! The nested table is a list of row references into the edge-table snapshot
//! (paper §3.3); "the UNNEST operator merely materializes the contained rows
//! according to these references".

use crate::error::{exec_err, Error};
use crate::plan::PlanSchema;
use gsql_storage::{ColumnBuilder, Table, Value};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// Execute an Unnest node: for each input row, expand the path column at
/// `path_col` into one output row per referenced edge.
pub fn execute_unnest(
    input: &Table,
    path_col: usize,
    with_ordinality: bool,
    preserve_empty: bool,
    schema: &PlanSchema,
) -> Result<Arc<Table>> {
    let n_input = input.schema().len();
    let storage = schema.to_storage_schema();
    let n_out = storage.len();
    let n_nested = n_out - n_input - usize::from(with_ordinality);

    // (input_row, Option<(edges table, edge row)>, ordinality)
    let mut input_indices: Vec<usize> = Vec::new();
    let mut builders: Vec<ColumnBuilder> =
        storage.columns().iter().skip(n_input).map(|def| ColumnBuilder::new(def.ty)).collect();

    let path_column = input.column(path_col);
    for row in 0..input.row_count() {
        let value = path_column.get(row);
        let path = match &value {
            Value::Path(p) => Some(p),
            Value::Null => None,
            other => {
                return Err(exec_err!("UNNEST expects a PATH value, found {other}"));
            }
        };
        let rows: &[u32] = path.map(|p| p.rows.as_slice()).unwrap_or(&[]);
        if rows.is_empty() {
            if preserve_empty {
                // Left-outer lateral join: keep the row, NULL-extend.
                input_indices.push(row);
                for b in builders.iter_mut() {
                    b.push(Value::Null).map_err(Error::Storage)?;
                }
            }
            continue;
        }
        let p = path.expect("non-empty path");
        for (ord, &edge_row) in rows.iter().enumerate() {
            input_indices.push(row);
            let edge_row = edge_row as usize;
            if edge_row >= p.edges.row_count() {
                return Err(exec_err!(
                    "path references edge row {edge_row} beyond the snapshot ({} rows)",
                    p.edges.row_count()
                ));
            }
            if p.edges.schema().len() != n_nested {
                return Err(exec_err!(
                    "path snapshot has {} columns, plan expects {n_nested}",
                    p.edges.schema().len()
                ));
            }
            for (ci, b) in builders.iter_mut().take(n_nested).enumerate() {
                b.push(p.edges.column(ci).get(edge_row)).map_err(Error::Storage)?;
            }
            if with_ordinality {
                builders[n_nested].push(Value::Int(ord as i64 + 1)).map_err(Error::Storage)?;
            }
        }
    }

    // Assemble: gathered input columns ++ expanded nested columns.
    let mut columns = Vec::with_capacity(n_out);
    for c in input.columns() {
        columns.push(c.take(&input_indices));
    }
    for b in builders {
        columns.push(b.finish());
    }
    Table::from_columns(storage, columns).map(Arc::new).map_err(Error::Storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanColumn;
    use gsql_storage::{ColumnDef, DataType, PathValue, Schema};

    /// Build an edge snapshot with rows (s, d): (0,1), (1,2), (2,3).
    fn edges() -> Arc<Table> {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::not_null("s", DataType::Int),
            ColumnDef::not_null("d", DataType::Int),
        ]));
        for (s, d) in [(0, 1), (1, 2), (2, 3)] {
            t.append_row(vec![Value::Int(s), Value::Int(d)]).unwrap();
        }
        Arc::new(t)
    }

    /// An input table: (name VARCHAR, path PATH).
    fn input(paths: Vec<Option<Vec<u32>>>) -> Table {
        let e = edges();
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("name", DataType::Varchar),
            ColumnDef::new("path", DataType::Path),
        ]));
        for (i, p) in paths.into_iter().enumerate() {
            let pv = match p {
                Some(rows) => Value::Path(PathValue { edges: Arc::clone(&e), rows }),
                None => Value::Null,
            };
            t.append_row(vec![Value::from(format!("r{i}")), pv]).unwrap();
        }
        t
    }

    fn out_schema(with_ordinality: bool) -> PlanSchema {
        let mut s = PlanSchema::default();
        s.push(PlanColumn::new("name", DataType::Varchar));
        s.push(PlanColumn::new("path", DataType::Path));
        s.push(PlanColumn::new("s", DataType::Int));
        s.push(PlanColumn::new("d", DataType::Int));
        if with_ordinality {
            s.push(PlanColumn::new("ordinality", DataType::Int));
        }
        s
    }

    #[test]
    fn expands_each_edge() {
        let t = input(vec![Some(vec![0, 1]), Some(vec![2])]);
        let out = execute_unnest(&t, 1, false, false, &out_schema(false)).unwrap();
        assert_eq!(out.row_count(), 3);
        assert_eq!(out.row(0)[0], Value::from("r0"));
        assert_eq!(out.row(0)[2], Value::Int(0)); // s of edge row 0
        assert_eq!(out.row(1)[3], Value::Int(2)); // d of edge row 1
        assert_eq!(out.row(2)[2], Value::Int(2)); // s of edge row 2
    }

    #[test]
    fn empty_paths_dropped_by_default() {
        // Matches the paper's appendix: "the first row (Mahinda Perera) is
        // discarded as its path is empty".
        let t = input(vec![Some(vec![]), Some(vec![0])]);
        let out = execute_unnest(&t, 1, false, false, &out_schema(false)).unwrap();
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.row(0)[0], Value::from("r1"));
    }

    #[test]
    fn empty_paths_preserved_with_left_outer() {
        let t = input(vec![Some(vec![]), Some(vec![0])]);
        let out = execute_unnest(&t, 1, false, true, &out_schema(false)).unwrap();
        assert_eq!(out.row_count(), 2);
        assert_eq!(out.row(0)[0], Value::from("r0"));
        assert!(out.row(0)[2].is_null());
        assert!(out.row(0)[3].is_null());
    }

    #[test]
    fn ordinality_numbers_from_one() {
        let t = input(vec![Some(vec![0, 1, 2])]);
        let out = execute_unnest(&t, 1, true, false, &out_schema(true)).unwrap();
        assert_eq!(out.row_count(), 3);
        assert_eq!(out.row(0)[4], Value::Int(1));
        assert_eq!(out.row(2)[4], Value::Int(3));
    }

    #[test]
    fn null_path_behaves_like_empty() {
        let t = input(vec![None, Some(vec![0])]);
        let dropped = execute_unnest(&t, 1, false, false, &out_schema(false)).unwrap();
        assert_eq!(dropped.row_count(), 1);
        let kept = execute_unnest(&t, 1, false, true, &out_schema(false)).unwrap();
        assert_eq!(kept.row_count(), 2);
    }
}
