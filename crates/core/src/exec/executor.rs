//! The plan executor.
//!
//! Fully materializing, column-at-a-time — the MonetDB execution model the
//! paper's prototype lives in. Each operator consumes `Arc<Table>` snapshots
//! and produces a new materialized table; `Arc` keeps base-table scans and
//! path row-references zero-copy.
//!
//! The executor is driven by an [`ExecContext`]: catalog, `?` parameters,
//! graph indexes, session settings (row-limit guard, graph-index flag,
//! degree of parallelism) and — for `EXPLAIN ANALYZE` — a thread-safe
//! per-operator statistics collector.
//!
//! The plan walk itself is single-threaded; **inside** the data-parallel
//! operators (filter, hash join, distinct, graph traversals) work fans out
//! over a scoped pool of `threads` workers and merges back in input order,
//! so results are bit-for-bit identical to `threads = 1`.

use crate::context::ExecContext;
use crate::error::{exec_err, Error};
use crate::exec::expression::{eval, eval_const, eval_filter_indices, eval_to_column};
use crate::exec::{aggregate, graph_op, join, pipeline, unnest};
use crate::plan::{BoundExpr, LogicalPlan, SortKey};
use gsql_obs::TraceValue;
use gsql_parallel::Pool;
use gsql_storage::{Column, Table, Value};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

type Result<T> = std::result::Result<T, Error>;

/// Executes logical plans against an [`ExecContext`].
pub struct Executor<'a> {
    ctx: &'a ExecContext<'a>,
    /// Current plan depth, tracked for statistics indentation.
    depth: Cell<usize>,
}

impl<'a> Executor<'a> {
    /// Create an executor over a context.
    pub fn new(ctx: &'a ExecContext<'a>) -> Executor<'a> {
        Executor { ctx, depth: Cell::new(0) }
    }

    /// The execution context.
    pub fn ctx(&self) -> &'a ExecContext<'a> {
        self.ctx
    }

    /// Execute a plan to a materialized table.
    ///
    /// When the context collects statistics, every call records the
    /// operator's label, depth, output rows and inclusive wall time; when a
    /// session row limit is set, any operator output exceeding it aborts
    /// the query.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Arc<Table>> {
        // The statement deadline is checked once per operator here — the
        // executor's operator loop — and at finer grain inside the graph
        // traversal batches (see `graph_op`), so timeouts interrupt long
        // statements mid-flight.
        self.ctx.check_deadline()?;
        // Verbose tracing opens one span per operator. The plan walk is
        // single-threaded, so save/restore of the parent pointer nests
        // children correctly; the span is closed on both success and error
        // paths so the tree stays balanced.
        let op_span = if self.ctx.trace_verbose() {
            self.ctx.trace_begin(&plan.node_label()).map(|id| (id, self.ctx.swap_trace_parent(id)))
        } else {
            None
        };
        let result = match self.ctx.stats_cell() {
            None => self.execute_inner(plan),
            Some(cell) => {
                let depth = self.depth.get();
                let idx = cell.lock().expect("stats lock").begin(plan.node_label(), depth);
                self.depth.set(depth + 1);
                let t0 = Instant::now();
                let result = self.execute_inner(plan);
                self.depth.set(depth);
                // Operator bodies may have left extra detail (e.g. ALT
                // settled-vertex counts); it belongs to this operator.
                let detail = self.ctx.take_op_detail();
                if let Ok(t) = &result {
                    cell.lock().expect("stats lock").finish(
                        idx,
                        t.row_count(),
                        t0.elapsed(),
                        detail,
                    );
                }
                result
            }
        };
        if let Some((id, prev)) = op_span {
            self.ctx.swap_trace_parent(prev);
            if let Some(t) = self.ctx.trace() {
                match &result {
                    Ok(table) => t.end_with(
                        id,
                        vec![("rows".to_string(), TraceValue::from(table.row_count() as i64))],
                    ),
                    Err(_) => t.end(id),
                }
            }
        }
        let out = result?;
        self.ctx.check_row_limit(out.row_count(), || plan.node_label())?;
        Ok(out)
    }

    /// The stats depth assigned to children of the operator currently being
    /// executed (the pipeline module synthesizes fused-operator slots at
    /// explicit depths).
    pub(crate) fn depth_for_stats(&self) -> usize {
        self.depth.get()
    }

    /// Execute a sub-plan with its root recorded at an explicit stats
    /// depth. Used by the pipeline engine, whose fused chains flatten the
    /// recursion the depth counter normally tracks.
    pub(crate) fn execute_at_depth(&self, plan: &LogicalPlan, depth: usize) -> Result<Arc<Table>> {
        let prev = self.depth.get();
        self.depth.set(depth);
        let result = self.execute(plan);
        self.depth.set(prev);
        result
    }

    fn execute_inner(&self, plan: &LogicalPlan) -> Result<Arc<Table>> {
        // Streaming operator shapes go through the morsel-driven pipeline
        // engine first. Timeouts abort outright; any other pipeline error
        // falls through to the barrier operators below, which re-run the
        // node sequentially-deterministically so surfaced error messages
        // are identical to `pipeline = off`.
        if self.ctx.pipeline_enabled() && pipeline::fusable_root(plan) {
            match pipeline::execute(self, plan) {
                Ok(t) => return Ok(t),
                Err(e @ Error::Timeout { .. }) => return Err(e),
                Err(_) => {}
            }
        }
        let params = self.ctx.params();
        match plan {
            LogicalPlan::SingleRow => {
                let mut t = Table::empty(gsql_storage::Schema::default());
                t.append_row(Vec::new()).map_err(Error::Storage)?;
                Ok(Arc::new(t))
            }
            LogicalPlan::Scan { table, .. } => {
                self.ctx.catalog().get(table).map_err(Error::Storage)
            }
            LogicalPlan::IndexedGraph { table, .. }
            | LogicalPlan::PathIndexedGraph { table, .. } => {
                // Reached only when a graph operator did not consume the
                // node (or the index was dropped): scan the base table.
                self.ctx.catalog().get(table).map_err(Error::Storage)
            }
            LogicalPlan::Values { rows, schema } => {
                let mut t = Table::empty(schema.to_storage_schema());
                for row in rows {
                    let values: Vec<Value> =
                        row.iter().map(|e| eval_const(e, params)).collect::<Result<_>>()?;
                    t.append_row(values).map_err(Error::Storage)?;
                }
                Ok(Arc::new(t))
            }
            LogicalPlan::Filter { input, predicate } => {
                let t = self.execute(input)?;
                let keep = eval_filter_indices(predicate, &t, params, self.ctx.threads())?;
                if keep.len() == t.row_count() {
                    return Ok(t); // nothing filtered: reuse the snapshot
                }
                Ok(Arc::new(t.take(&keep)))
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let t = self.execute(input)?;
                let storage_schema = schema.to_storage_schema();
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, def) in exprs.iter().zip(storage_schema.columns()) {
                    columns.push(eval_to_column(e, &t, params, def.ty)?);
                }
                Table::from_columns(storage_schema, columns).map(Arc::new).map_err(Error::Storage)
            }
            LogicalPlan::Join { left, right, kind, on, schema } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                join::execute_join(&l, &r, *kind, on.as_ref(), schema, params, self.ctx.threads())
            }
            LogicalPlan::GraphSelect { .. } | LogicalPlan::GraphJoin { .. } => {
                graph_op::execute(self, plan)
            }
            LogicalPlan::Aggregate { input, group, aggs, schema } => {
                let t = self.execute(input)?;
                aggregate::execute_aggregate(&t, group, aggs, schema, params, self.ctx.threads())
            }
            LogicalPlan::Sort { input, keys } => {
                let t = self.execute(input)?;
                Ok(Arc::new(sort_table(&t, keys, params, self.ctx.threads())?))
            }
            LogicalPlan::Limit { input, limit, offset } => {
                let t = self.execute(input)?;
                let n = t.row_count();
                let start = (*offset).min(n);
                let end = match limit {
                    Some(l) => (start + l).min(n),
                    None => n,
                };
                Ok(Arc::new(t.slice_rows(start..end)))
            }
            LogicalPlan::Distinct { input } => {
                let t = self.execute(input)?;
                Ok(Arc::new(distinct_table(&t, self.ctx.threads())?))
            }
            LogicalPlan::Union { left, right, all } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                debug_assert!(*all, "binder wraps UNION (distinct) in a Distinct node");
                union_tables(&l, &r)
            }
            LogicalPlan::Unnest { input, path_col, with_ordinality, preserve_empty, schema } => {
                let t = self.execute(input)?;
                unnest::execute_unnest(&t, *path_col, *with_ordinality, *preserve_empty, schema)
            }
        }
    }
}

/// Sort a table by the given keys (stable; NULLs first, as in
/// [`Value::total_cmp`]).
///
/// With `threads > 1` and enough rows, the argsort becomes a parallel
/// merge sort on the pool's chunk primitives: each contiguous chunk is
/// argsorted independently, then sorted runs merge pairwise (rounds of
/// parallel merges). Chunks are contiguous in row order and ties always
/// take the earlier run, so the result is exactly the stable sequential
/// sort — bit-for-bit, at every thread count.
pub fn sort_table(
    table: &Table,
    keys: &[SortKey],
    params: &[Value],
    threads: usize,
) -> Result<Table> {
    // Evaluate all key columns once (column-at-a-time), then argsort.
    let mut key_cols: Vec<(Column, bool)> = Vec::with_capacity(keys.len());
    for k in keys {
        let ty = k.expr.data_type().unwrap_or(gsql_storage::DataType::Varchar);
        key_cols.push((eval_to_column(&k.expr, table, params, ty)?, k.asc));
    }
    let cmp = |a: usize, b: usize| {
        for (col, asc) in &key_cols {
            let cmp = col.get(a).total_cmp(&col.get(b));
            if cmp != std::cmp::Ordering::Equal {
                return if *asc { cmp } else { cmp.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    };
    let n = table.row_count();
    let pool = Pool::new(threads);
    let order: Vec<usize> = if pool.is_sequential() || pool.chunks(n).len() <= 1 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| cmp(a, b));
        order
    } else {
        // Per-chunk stable argsorts, in parallel. Chunk index ranges are
        // contiguous and ascending, so run `i`'s original indices all
        // precede run `i + 1`'s — the invariant the stable merge needs.
        let mut runs: Vec<Vec<usize>> = pool.map_chunks(n, |range| {
            let mut idx: Vec<usize> = range.collect();
            idx.sort_by(|&a, &b| cmp(a, b));
            idx
        });
        // Pairwise merge rounds, each round's merges in parallel.
        while runs.len() > 1 {
            let mut next: Vec<Vec<usize>> =
                pool.map(runs.len() / 2, |i| merge_runs(&runs[2 * i], &runs[2 * i + 1], &cmp));
            if runs.len() % 2 == 1 {
                next.push(runs.pop().expect("odd run out"));
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    };
    Ok(table.take(&order))
}

/// Stable two-run merge: on equal keys the left run wins. Every index in
/// `left` originates before every index in `right`, so this reproduces the
/// sequential stable sort exactly.
fn merge_runs(
    left: &[usize],
    right: &[usize],
    cmp: &(impl Fn(usize, usize) -> std::cmp::Ordering + Sync),
) -> Vec<usize> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if cmp(left[i], right[j]) != std::cmp::Ordering::Greater {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Hash one row cell-by-cell into a single `u64` — no per-row key vector is
/// allocated. Uses the deterministic (fixed-key) [`DefaultHasher`] so the
/// parallel pre-hash pass produces the same digests on every thread.
fn hash_row(table: &Table, row: usize) -> u64 {
    use gsql_storage::value::HashableValue;
    let mut h = DefaultHasher::new();
    for col in table.columns() {
        HashableValue(col.get(row)).hash(&mut h);
    }
    h.finish()
}

/// Cell-wise row equality under SQL grouping semantics (NULL == NULL,
/// `Int(1)` == `Double(1.0)` — the [`HashableValue`] contract), without
/// materializing either row.
fn rows_equal(table: &Table, a: usize, b: usize) -> bool {
    use gsql_storage::value::HashableValue;
    table.columns().iter().all(|c| HashableValue(c.get(a)) == HashableValue(c.get(b)))
}

/// Remove duplicate rows (first occurrence wins, order preserved).
///
/// Rows are hashed incrementally into one `u64` digest per row (no
/// per-row `Vec` of values); with `threads > 1` the digest pass — the bulk
/// of the work — runs chunk-parallel, and the first-wins merge stays
/// sequential so the surviving rows are identical to a sequential scan.
/// Digest collisions are resolved by cell-wise comparison.
pub fn distinct_table(table: &Table, threads: usize) -> Result<Table> {
    let n = table.row_count();
    let hashes: Vec<u64> = Pool::new(threads)
        .map_chunks(n, |range| range.map(|i| hash_row(table, i)).collect::<Vec<u64>>())
        .into_iter()
        .flatten()
        .collect();
    // hash -> indices of kept rows with that digest (usually one).
    let mut seen: HashMap<u64, Vec<usize>> = HashMap::with_capacity(n);
    let mut keep = Vec::new();
    for (i, &digest) in hashes.iter().enumerate() {
        let candidates = seen.entry(digest).or_default();
        if candidates.iter().any(|&j| rows_equal(table, i, j)) {
            continue;
        }
        candidates.push(i);
        keep.push(i);
    }
    Ok(table.take(&keep))
}

/// Concatenate two tables **column-at-a-time** (the engine is columnar end
/// to end). Types are already unified by the binder; should a column pair
/// still disagree (e.g. Int vs Double from a VALUES source), that column
/// falls back to per-value pushes, which widen Int→Double.
pub fn union_tables(l: &Table, r: &Table) -> Result<Arc<Table>> {
    if l.schema().len() != r.schema().len() {
        return Err(exec_err!("UNION arity mismatch"));
    }
    let mut columns = Vec::with_capacity(l.schema().len());
    for (i, (lc, rc)) in l.columns().iter().zip(r.columns()).enumerate() {
        let def = l.schema().column(i);
        let col = if lc.data_type() == def.ty && rc.data_type() == def.ty {
            // Columnar fast path: clone left, splice right onto it.
            let mut col = lc.clone();
            col.extend_from(rc).map_err(Error::Storage)?;
            col
        } else {
            // Widening path (e.g. Int values under a Double schema).
            let mut col = Column::empty(def.ty);
            for v in lc.iter().chain(rc.iter()) {
                col.push(v).map_err(Error::Storage)?;
            }
            col
        };
        // Preserve the NOT NULL enforcement of the row-at-a-time path.
        if !def.nullable && col.null_count() > 0 {
            return Err(Error::Storage(gsql_storage::StorageError::NullViolation(
                def.name.clone(),
            )));
        }
        columns.push(col);
    }
    Table::from_columns(l.schema().clone(), columns).map(Arc::new).map_err(Error::Storage)
}

/// Evaluate one projected row (used by DML paths).
pub fn eval_row_exprs(
    exprs: &[BoundExpr],
    table: &Table,
    row: usize,
    params: &[Value],
) -> Result<Vec<Value>> {
    exprs.iter().map(|e| eval(e, table, row, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, DataType, Schema};

    fn mixed_table(rows: usize) -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Varchar),
        ]));
        for i in 0..rows {
            let a = if i % 13 == 0 { Value::Null } else { Value::Int((i % 7) as i64) };
            t.append_row(vec![a, Value::from(format!("s{}", i % 5))]).unwrap();
        }
        t
    }

    #[test]
    fn distinct_first_occurrence_wins_in_order() {
        let t = mixed_table(200);
        let d = distinct_table(&t, 1).unwrap();
        // 7 ints + NULL on a, 5 strings on b — at most 40 combinations, and
        // the kept rows must appear in first-seen order.
        assert!(d.row_count() <= 40);
        let mut seen_rows: Vec<Vec<Value>> = Vec::new();
        for i in 0..d.row_count() {
            let row = d.row(i);
            assert!(!seen_rows.contains(&row), "row {i} duplicated");
            seen_rows.push(row);
        }
        // First row of the input survives as the first output row.
        assert_eq!(d.row(0), t.row(0));
    }

    #[test]
    fn distinct_groups_int_and_double_like_hashable_value() {
        // Int(1) and Double(1.0) compare equal under grouping semantics.
        let mut t = Table::empty(Schema::new(vec![ColumnDef::new("x", DataType::Double)]));
        t.append_row(vec![Value::Int(1)]).unwrap();
        t.append_row(vec![Value::Double(1.0)]).unwrap();
        t.append_row(vec![Value::Null]).unwrap();
        t.append_row(vec![Value::Null]).unwrap();
        let d = distinct_table(&t, 1).unwrap();
        assert_eq!(d.row_count(), 2);
    }

    #[test]
    fn parallel_sort_matches_sequential_stably() {
        use crate::plan::BoundExpr;
        // Heavy duplication in the key column so stability is observable:
        // rows with equal keys must keep their input order.
        let t = mixed_table(5000);
        let keys =
            vec![SortKey { expr: BoundExpr::Column { index: 0, ty: DataType::Int }, asc: true }];
        let seq = sort_table(&t, &keys, &[], 1).unwrap();
        for threads in [2, 3, 8] {
            let par = sort_table(&t, &keys, &[], threads).unwrap();
            assert_eq!(par.row_count(), seq.row_count(), "threads {threads}");
            for i in 0..seq.row_count() {
                assert_eq!(par.row(i), seq.row(i), "threads {threads} row {i}");
            }
        }
        // Descending + secondary key, same contract.
        let keys = vec![
            SortKey { expr: BoundExpr::Column { index: 1, ty: DataType::Varchar }, asc: false },
            SortKey { expr: BoundExpr::Column { index: 0, ty: DataType::Int }, asc: true },
        ];
        let seq = sort_table(&t, &keys, &[], 1).unwrap();
        let par = sort_table(&t, &keys, &[], 4).unwrap();
        for i in 0..seq.row_count() {
            assert_eq!(par.row(i), seq.row(i), "desc row {i}");
        }
    }

    #[test]
    fn distinct_parallel_matches_sequential() {
        let t = mixed_table(3000);
        let seq = distinct_table(&t, 1).unwrap();
        for threads in [2, 8] {
            let par = distinct_table(&t, threads).unwrap();
            assert_eq!(par.row_count(), seq.row_count(), "threads {threads}");
            for i in 0..seq.row_count() {
                assert_eq!(par.row(i), seq.row(i), "threads {threads} row {i}");
            }
        }
    }
}
