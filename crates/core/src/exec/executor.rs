//! The plan executor.
//!
//! Fully materializing, column-at-a-time — the MonetDB execution model the
//! paper's prototype lives in. Each operator consumes `Arc<Table>` snapshots
//! and produces a new materialized table; `Arc` keeps base-table scans and
//! path row-references zero-copy.
//!
//! The executor is driven by an [`ExecContext`]: catalog, `?` parameters,
//! graph indexes, session settings (row-limit guard, graph-index flag) and
//! — for `EXPLAIN ANALYZE` — a per-operator statistics collector.

use crate::context::ExecContext;
use crate::error::{exec_err, Error};
use crate::exec::expression::{eval, eval_const, eval_filter_indices, eval_to_column};
use crate::exec::{aggregate, graph_op, join, unnest};
use crate::plan::{BoundExpr, LogicalPlan, SortKey};
use gsql_storage::{Column, Table, Value};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

type Result<T> = std::result::Result<T, Error>;

/// Executes logical plans against an [`ExecContext`].
pub struct Executor<'a> {
    ctx: &'a ExecContext<'a>,
    /// Current plan depth, tracked for statistics indentation.
    depth: Cell<usize>,
}

impl<'a> Executor<'a> {
    /// Create an executor over a context.
    pub fn new(ctx: &'a ExecContext<'a>) -> Executor<'a> {
        Executor { ctx, depth: Cell::new(0) }
    }

    /// The execution context.
    pub fn ctx(&self) -> &'a ExecContext<'a> {
        self.ctx
    }

    /// Execute a plan to a materialized table.
    ///
    /// When the context collects statistics, every call records the
    /// operator's label, depth, output rows and inclusive wall time; when a
    /// session row limit is set, any operator output exceeding it aborts
    /// the query.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Arc<Table>> {
        let out = match self.ctx.stats_cell() {
            None => self.execute_inner(plan)?,
            Some(cell) => {
                let depth = self.depth.get();
                let idx = cell.borrow_mut().begin(plan.node_label(), depth);
                self.depth.set(depth + 1);
                let t0 = Instant::now();
                let result = self.execute_inner(plan);
                self.depth.set(depth);
                if let Ok(t) = &result {
                    cell.borrow_mut().finish(idx, t.row_count(), t0.elapsed());
                }
                result?
            }
        };
        self.ctx.check_row_limit(out.row_count(), || plan.node_label())?;
        Ok(out)
    }

    fn execute_inner(&self, plan: &LogicalPlan) -> Result<Arc<Table>> {
        let params = self.ctx.params();
        match plan {
            LogicalPlan::SingleRow => {
                let mut t = Table::empty(gsql_storage::Schema::default());
                t.append_row(Vec::new()).map_err(Error::Storage)?;
                Ok(Arc::new(t))
            }
            LogicalPlan::Scan { table, .. } => {
                self.ctx.catalog().get(table).map_err(Error::Storage)
            }
            LogicalPlan::IndexedGraph { table, .. } => {
                // Reached only when a graph operator did not consume the
                // node (or the index was dropped): scan the base table.
                self.ctx.catalog().get(table).map_err(Error::Storage)
            }
            LogicalPlan::Values { rows, schema } => {
                let mut t = Table::empty(schema.to_storage_schema());
                for row in rows {
                    let values: Vec<Value> =
                        row.iter().map(|e| eval_const(e, params)).collect::<Result<_>>()?;
                    t.append_row(values).map_err(Error::Storage)?;
                }
                Ok(Arc::new(t))
            }
            LogicalPlan::Filter { input, predicate } => {
                let t = self.execute(input)?;
                let keep = eval_filter_indices(predicate, &t, params)?;
                if keep.len() == t.row_count() {
                    return Ok(t); // nothing filtered: reuse the snapshot
                }
                Ok(Arc::new(t.take(&keep)))
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let t = self.execute(input)?;
                let storage_schema = schema.to_storage_schema();
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, def) in exprs.iter().zip(storage_schema.columns()) {
                    columns.push(eval_to_column(e, &t, params, def.ty)?);
                }
                Table::from_columns(storage_schema, columns).map(Arc::new).map_err(Error::Storage)
            }
            LogicalPlan::Join { left, right, kind, on, schema } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                join::execute_join(&l, &r, *kind, on.as_ref(), schema, params)
            }
            LogicalPlan::GraphSelect { .. } | LogicalPlan::GraphJoin { .. } => {
                graph_op::execute(self, plan)
            }
            LogicalPlan::Aggregate { input, group, aggs, schema } => {
                let t = self.execute(input)?;
                aggregate::execute_aggregate(&t, group, aggs, schema, params)
            }
            LogicalPlan::Sort { input, keys } => {
                let t = self.execute(input)?;
                Ok(Arc::new(sort_table(&t, keys, params)?))
            }
            LogicalPlan::Limit { input, limit, offset } => {
                let t = self.execute(input)?;
                let n = t.row_count();
                let start = (*offset).min(n);
                let end = match limit {
                    Some(l) => (start + l).min(n),
                    None => n,
                };
                let indices: Vec<usize> = (start..end).collect();
                Ok(Arc::new(t.take(&indices)))
            }
            LogicalPlan::Distinct { input } => {
                let t = self.execute(input)?;
                Ok(Arc::new(distinct_table(&t)?))
            }
            LogicalPlan::Union { left, right, all } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                debug_assert!(*all, "binder wraps UNION (distinct) in a Distinct node");
                union_tables(&l, &r)
            }
            LogicalPlan::Unnest { input, path_col, with_ordinality, preserve_empty, schema } => {
                let t = self.execute(input)?;
                unnest::execute_unnest(&t, *path_col, *with_ordinality, *preserve_empty, schema)
            }
        }
    }
}

/// Sort a table by the given keys (stable; NULLs first, as in
/// [`Value::total_cmp`]).
pub fn sort_table(table: &Table, keys: &[SortKey], params: &[Value]) -> Result<Table> {
    // Evaluate all key columns once (column-at-a-time), then argsort.
    let mut key_cols: Vec<(Column, bool)> = Vec::with_capacity(keys.len());
    for k in keys {
        let ty = k.expr.data_type().unwrap_or(gsql_storage::DataType::Varchar);
        key_cols.push((eval_to_column(&k.expr, table, params, ty)?, k.asc));
    }
    let mut order: Vec<usize> = (0..table.row_count()).collect();
    order.sort_by(|&a, &b| {
        for (col, asc) in &key_cols {
            let cmp = col.get(a).total_cmp(&col.get(b));
            if cmp != std::cmp::Ordering::Equal {
                return if *asc { cmp } else { cmp.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.take(&order))
}

/// Remove duplicate rows (first occurrence wins, order preserved).
pub fn distinct_table(table: &Table) -> Result<Table> {
    use gsql_storage::value::HashableValue;
    let mut seen: HashSet<Vec<HashableValue>> = HashSet::new();
    let mut keep = Vec::new();
    for i in 0..table.row_count() {
        let key: Vec<HashableValue> = table.row(i).into_iter().map(HashableValue).collect();
        if seen.insert(key) {
            keep.push(i);
        }
    }
    Ok(table.take(&keep))
}

/// Concatenate two tables **column-at-a-time** (the engine is columnar end
/// to end). Types are already unified by the binder; should a column pair
/// still disagree (e.g. Int vs Double from a VALUES source), that column
/// falls back to per-value pushes, which widen Int→Double.
pub fn union_tables(l: &Table, r: &Table) -> Result<Arc<Table>> {
    if l.schema().len() != r.schema().len() {
        return Err(exec_err!("UNION arity mismatch"));
    }
    let mut columns = Vec::with_capacity(l.schema().len());
    for (i, (lc, rc)) in l.columns().iter().zip(r.columns()).enumerate() {
        let def = l.schema().column(i);
        let col = if lc.data_type() == def.ty && rc.data_type() == def.ty {
            // Columnar fast path: clone left, splice right onto it.
            let mut col = lc.clone();
            col.extend_from(rc).map_err(Error::Storage)?;
            col
        } else {
            // Widening path (e.g. Int values under a Double schema).
            let mut col = Column::empty(def.ty);
            for v in lc.iter().chain(rc.iter()) {
                col.push(v).map_err(Error::Storage)?;
            }
            col
        };
        // Preserve the NOT NULL enforcement of the row-at-a-time path.
        if !def.nullable && col.null_count() > 0 {
            return Err(Error::Storage(gsql_storage::StorageError::NullViolation(
                def.name.clone(),
            )));
        }
        columns.push(col);
    }
    Table::from_columns(l.schema().clone(), columns).map(Arc::new).map_err(Error::Storage)
}

/// Evaluate one projected row (used by DML paths).
pub fn eval_row_exprs(
    exprs: &[BoundExpr],
    table: &Table,
    row: usize,
    params: &[Value],
) -> Result<Vec<Value>> {
    exprs.iter().map(|e| eval(e, table, row, params)).collect()
}
