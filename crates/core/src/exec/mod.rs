//! Physical execution: fully materialized, column-at-a-time operators.

pub mod aggregate;
pub mod executor;
pub mod expression;
pub mod graph_op;
pub mod join;
pub mod pipeline;
pub mod unnest;

pub use executor::Executor;
pub use graph_op::{build_graph, build_graph_with_threads, MaterializedGraph};
