//! Push-based, morsel-driven pipeline execution.
//!
//! The barrier model (`executor.rs`) runs every operator as its own
//! fan-out with a full materialized table between stages. This module
//! replaces that for the streaming operator shapes: a plan rooted at a
//! filter, project, join, aggregate or limit is decomposed into a
//! **pipeline** — a fused chain of streaming operators over one source —
//! terminated by a **sink**. Workers pull fixed-size morsels (contiguous
//! row ranges of the source) from a shared [`MorselQueue`] and run each
//! morsel through the whole fused chain to completion in worker-local
//! state; the sink's per-morsel partials merge sequentially **in
//! morsel-index order**.
//!
//! Pipelines break at the classic breakers: a hash-join **build** side is
//! fully executed and hashed before its probe pipeline starts; aggregates
//! and limits are sinks; sort, DISTINCT, UNION, UNNEST and the graph
//! operators stay materializing barrier nodes (their *inputs* still
//! execute as pipelines).
//!
//! Determinism contract: morsel boundaries depend only on the input size
//! and `morsel_rows` — never the worker count — and the merge consumes
//! partials in morsel-index order, so every result (including float
//! aggregates) is bit-identical at every thread count. Error messages are
//! kept sequential-identical the same way the parallel aggregate does it:
//! on any non-timeout pipeline error the executor re-runs the node through
//! the barrier path and surfaces *that* error.

use crate::context::PipelineStat;
use crate::error::Error;
use crate::exec::expression::{eval, eval_filter_indices, eval_filter_range, eval_to_column};
use crate::exec::join::{materialize_pairs, JoinProbe};
use crate::exec::{aggregate, Executor};
use crate::plan::{AggCall, BoundExpr, LogicalPlan, PlanSchema};
use gsql_obs::TraceValue;
use gsql_parallel::{MorselQueue, Pool};
use gsql_storage::{Column, DataType, Table, Value};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Result<T> = std::result::Result<T, Error>;

/// True when `plan` is a shape this module executes as a pipeline root.
/// (Joins need a condition: a bare cross product stays on the barrier
/// path.)
pub(crate) fn fusable_root(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => true,
        LogicalPlan::Join { on, .. } => on.is_some(),
        LogicalPlan::Aggregate { .. } | LogicalPlan::Limit { .. } => true,
        _ => false,
    }
}

/// True when `plan` can be a fused (streaming) member of a chain.
fn fusable_op(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Filter { .. }
            | LogicalPlan::Project { .. }
            | LogicalPlan::Join { on: Some(_), .. }
    )
}

/// What the pipeline's root does with the stream of morsel outputs.
enum SinkSpec<'p> {
    /// Concatenate morsel outputs into the root's output table.
    Table,
    /// Concatenate until `offset + limit` rows are produced, then stop
    /// upstream morsel production and slice.
    Limit { limit: Option<usize>, offset: usize },
    /// Fold each morsel into an aggregate partial; merge partials in
    /// morsel-index order.
    Agg { group: &'p [BoundExpr], aggs: &'p [AggCall], schema: &'p PlanSchema },
}

/// One fused streaming operator, top-down position `chain[i]`.
struct FusedOp<'p> {
    node: &'p LogicalPlan,
    kind: OpKind<'p>,
    /// Cumulative output rows across all morsels (row-limit guard + stats).
    rows: AtomicUsize,
}

enum OpKind<'p> {
    Filter(&'p BoundExpr),
    Project {
        exprs: &'p [BoundExpr],
        schema: &'p PlanSchema,
    },
    /// Probe against a built hash table; the build (right) side plan is
    /// executed as a breaker before the pipeline starts.
    Probe {
        probe: JoinProbe,
        n_left: usize,
        schema: &'p PlanSchema,
    },
}

/// The static decomposition of a plan into sink + fused chain + source.
struct Decomposed<'p> {
    sink: SinkSpec<'p>,
    /// Chain nodes top-down (outermost first). For a Table sink the root
    /// itself is `chain[0]`; for Aggregate/Limit sinks the chain holds only
    /// nodes strictly below the root.
    chain: Vec<&'p LogicalPlan>,
    source: &'p LogicalPlan,
}

/// Split `plan` into sink, fused chain and source. Returns `None` when the
/// decomposition would be a no-op (a Table-sink root with nothing fusable
/// never reaches here because `fusable_root` gates it).
fn decompose(plan: &LogicalPlan) -> Decomposed<'_> {
    let (sink, mut node) = match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            (SinkSpec::Agg { group, aggs, schema }, &**input)
        }
        LogicalPlan::Limit { input, limit, offset } => {
            (SinkSpec::Limit { limit: *limit, offset: *offset }, &**input)
        }
        _ => (SinkSpec::Table, plan),
    };
    let mut chain = Vec::new();
    while fusable_op(node) {
        chain.push(node);
        node = match node {
            LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => input,
            LogicalPlan::Join { left, .. } => left,
            _ => unreachable!("fusable_op covers these shapes"),
        };
    }
    Decomposed { sink, chain, source: node }
}

/// A morsel's data as it flows through the fused chain: row subsets of the
/// pipeline source stay index-based (zero-copy until the sink), while
/// project/probe outputs are materialized morsel-local tables.
enum Batch {
    /// A contiguous source-row range (the morsel as grabbed).
    Range(Range<usize>),
    /// Ascending source-row indices (post-filter).
    Rows(Vec<usize>),
    /// A materialized morsel output (post-project/probe).
    Table(Table),
}

impl Batch {
    fn len(&self) -> usize {
        match self {
            Batch::Range(r) => r.len(),
            Batch::Rows(rows) => rows.len(),
            Batch::Table(t) => t.row_count(),
        }
    }
}

/// A sink-side partial for one morsel.
enum MorselOut {
    Batch(Batch),
    Agg(aggregate::AggPartial),
}

/// Run one morsel through the fused chain (innermost op first).
fn run_chain(
    source: &Table,
    morsel: Range<usize>,
    ops: &[FusedOp<'_>],
    params: &[Value],
    row_limit: Option<u64>,
) -> Result<Batch> {
    let mut batch = Batch::Range(morsel);
    for op in ops.iter().rev() {
        batch = match (&op.kind, batch) {
            (OpKind::Filter(pred), Batch::Range(r)) => {
                Batch::Rows(eval_filter_range(pred, source, r, params)?)
            }
            (OpKind::Filter(pred), Batch::Rows(rows)) => {
                let mut keep = Vec::new();
                for row in rows {
                    if eval(pred, source, row, params)? == Value::Bool(true) {
                        keep.push(row);
                    }
                }
                Batch::Rows(keep)
            }
            (OpKind::Filter(pred), Batch::Table(t)) => {
                let keep = eval_filter_indices(pred, &t, params, 1)?;
                if keep.len() == t.row_count() {
                    Batch::Table(t)
                } else {
                    Batch::Table(t.take(&keep))
                }
            }
            (OpKind::Project { exprs, schema }, batch) => {
                let local = match batch {
                    Batch::Range(r) => source.slice_rows(r),
                    Batch::Rows(rows) => source.take(&rows),
                    Batch::Table(t) => t,
                };
                let storage = schema.to_storage_schema();
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, def) in exprs.iter().zip(storage.columns()) {
                    columns.push(eval_to_column(e, &local, params, def.ty)?);
                }
                Batch::Table(Table::from_columns(storage, columns).map_err(Error::Storage)?)
            }
            (OpKind::Probe { probe, n_left, schema }, batch) => {
                let mut pairs = Vec::new();
                let joined = match &batch {
                    Batch::Range(r) => {
                        probe.probe_rows(source, r.clone(), *n_left, params, &mut pairs)?;
                        materialize_pairs(source, &probe.right, &pairs, schema)?
                    }
                    Batch::Rows(rows) => {
                        probe.probe_rows(
                            source,
                            rows.iter().copied(),
                            *n_left,
                            params,
                            &mut pairs,
                        )?;
                        materialize_pairs(source, &probe.right, &pairs, schema)?
                    }
                    Batch::Table(t) => {
                        probe.probe_rows(t, 0..t.row_count(), *n_left, params, &mut pairs)?;
                        materialize_pairs(t, &probe.right, &pairs, schema)?
                    }
                };
                Batch::Table(joined)
            }
        };
        let produced = op.rows.fetch_add(batch.len(), Ordering::Relaxed) + batch.len();
        if let Some(limit) = row_limit {
            if produced as u64 > limit {
                return Err(Error::Exec(format!(
                    "row limit exceeded: operator {} produced {produced} rows \
                     (SET row_limit = {limit}; 0 disables)",
                    op.node.node_label()
                )));
            }
        }
    }
    Ok(batch)
}

/// Execute a fusable plan through the morsel pipeline. The caller
/// (`Executor::execute_inner`) falls back to the barrier path on any
/// non-timeout error so surfaced errors stay sequential-identical.
pub(crate) fn execute(ex: &Executor<'_>, plan: &LogicalPlan) -> Result<Arc<Table>> {
    let ctx = ex.ctx();
    let dec = decompose(plan);
    let stats_on = ctx.stats_cell().is_some();
    let t0 = Instant::now();

    // Reserve stats slots for the fused chain top-down, so the rendered
    // tree keeps the barrier model's pre-order. The root's own slot was
    // already begun by `Executor::execute`; `Executor`'s depth points one
    // below the root here.
    let base_depth = ex.depth_for_stats();
    let chain_slots: Vec<Option<usize>> = dec
        .chain
        .iter()
        .enumerate()
        .map(|(i, node)| {
            if !stats_on || std::ptr::eq(*node, plan) {
                return None;
            }
            let cell = ctx.stats_cell().expect("stats on");
            // Chain position i sits i nodes below the root; position 0 is
            // the root itself for Table sinks (already recorded).
            let depth = base_depth + i - usize::from(matches!(dec.sink, SinkSpec::Table));
            Some(cell.lock().expect("stats lock").begin(node.node_label(), depth))
        })
        .collect();

    // Execute the source (breaker boundary) with the right stats depth.
    let source_depth = base_depth + dec.chain.len()
        - usize::from(matches!(dec.sink, SinkSpec::Table) && !dec.chain.is_empty());
    let source = ex.execute_at_depth(dec.source, source_depth)?;

    // Build the probe hash tables bottom-up (pre-order places the deepest
    // join's build side first).
    let pool = Pool::new(ctx.threads());
    let ops = build_fused_ops(ex, &dec, &pool, base_depth)?;

    // The morsel loop.
    let queue = MorselQueue::new(source.row_count(), ctx.morsel_rows());
    // All morsels exist the moment the queue does (it partitions a row
    // range), so a morsel's queue wait is grab time minus this instant.
    let queue_born = Instant::now();
    let metrics = ctx.metrics().map(Arc::as_ref);
    let workers = pool.threads().min(queue.morsel_count()).max(1);
    let params = ctx.params();
    let row_limit = ctx.settings().row_limit;
    let deadline = ctx.deadline();
    let produced = AtomicUsize::new(0);
    let limit_target = match &dec.sink {
        SinkSpec::Limit { limit: Some(l), offset } => Some(offset + l),
        _ => None,
    };
    let poisoned = AtomicBool::new(false);
    let sink = &dec.sink;
    let source_ref: &Table = &source;
    let ops_ref: &[FusedOp<'_>] = &ops;
    let pipe_span = ctx.trace().map(|t| t.begin(ctx.trace_parent(), "pipeline"));

    type PipelineWorkerOut = (Vec<(usize, MorselOut)>, Duration, Duration);
    let worker_results: Vec<std::result::Result<PipelineWorkerOut, Error>> =
        pool.broadcast(workers, |_w| {
            let mut local: Vec<(usize, MorselOut)> = Vec::new();
            let mut wait_total = Duration::ZERO;
            let mut wait_max = Duration::ZERO;
            while let Some(m) = queue.next() {
                let wait = queue_born.elapsed();
                wait_total += wait;
                wait_max = wait_max.max(wait);
                if let Some(reg) = metrics {
                    reg.observe_queue_wait_us(wait.as_micros() as u64);
                }
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(d) = deadline {
                    if d.expired() {
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(Error::Timeout { limit_ms: d.limit_ms });
                    }
                }
                let out = (|| -> Result<MorselOut> {
                    let batch = run_chain(source_ref, m.rows.clone(), ops_ref, params, row_limit)?;
                    match sink {
                        SinkSpec::Table | SinkSpec::Limit { .. } => {
                            if let Some(target) = limit_target {
                                let total = produced.fetch_add(batch.len(), Ordering::Relaxed)
                                    + batch.len();
                                if total >= target {
                                    // Enough rows: stop handing out morsels.
                                    queue.stop();
                                }
                            }
                            Ok(MorselOut::Batch(batch))
                        }
                        SinkSpec::Agg { group, aggs, .. } => {
                            let partial = match &batch {
                                Batch::Range(r) => aggregate::aggregate_morsel(
                                    source_ref,
                                    r.clone(),
                                    group,
                                    aggs,
                                    params,
                                )?,
                                Batch::Rows(rows) => aggregate::aggregate_morsel(
                                    source_ref,
                                    rows.iter().copied(),
                                    group,
                                    aggs,
                                    params,
                                )?,
                                Batch::Table(t) => aggregate::aggregate_morsel(
                                    t,
                                    0..t.row_count(),
                                    group,
                                    aggs,
                                    params,
                                )?,
                            };
                            Ok(MorselOut::Agg(partial))
                        }
                    }
                })();
                match out {
                    Ok(o) => local.push((m.index, o)),
                    Err(e) => {
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
            Ok((local, wait_total, wait_max))
        });

    // Per-worker morsel counts for the pipeline stat, then the partials.
    let mut per_worker: Vec<usize> = Vec::with_capacity(worker_results.len());
    let mut items: Vec<(usize, MorselOut)> = Vec::new();
    let mut queue_wait = Duration::ZERO;
    let mut queue_wait_max = Duration::ZERO;
    let mut first_err: Option<Error> = None;
    for r in worker_results {
        match r {
            Ok((local, wait_total, wait_max)) => {
                per_worker.push(local.len());
                items.extend(local);
                queue_wait += wait_total;
                queue_wait_max = queue_wait_max.max(wait_max);
            }
            Err(e @ Error::Timeout { .. }) => return Err(e),
            Err(e) => {
                per_worker.push(0);
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    items.sort_unstable_by_key(|(idx, _)| *idx);

    // Merge in morsel-index order.
    let out = merge(&dec, plan, &source, items, ctx.params())?;

    let morsels: usize = per_worker.iter().sum();
    if let Some(reg) = metrics {
        reg.record_pipeline(morsels as u64);
    }
    if let (Some(t), Some(id)) = (ctx.trace(), pipe_span) {
        t.end_with(
            id,
            vec![
                ("label".to_string(), TraceValue::from(pipeline_label(&dec))),
                ("morsels".to_string(), TraceValue::from(morsels)),
                ("workers".to_string(), TraceValue::from(per_worker.len())),
                (
                    "min_per_worker".to_string(),
                    TraceValue::from(per_worker.iter().copied().min().unwrap_or(0)),
                ),
                (
                    "max_per_worker".to_string(),
                    TraceValue::from(per_worker.iter().copied().max().unwrap_or(0)),
                ),
                ("queue_wait_us".to_string(), TraceValue::Int(queue_wait.as_micros() as i64)),
            ],
        );
    }
    if stats_on {
        let elapsed = t0.elapsed();
        if let Some(cell) = ctx.stats_cell() {
            let mut stats = cell.lock().expect("stats lock");
            for (slot, op) in chain_slots.iter().zip(&ops) {
                if let Some(slot) = slot {
                    stats.finish(*slot, op.rows.load(Ordering::Relaxed), elapsed, None);
                }
            }
        }
        ctx.record_pipeline_stat(PipelineStat {
            label: pipeline_label(&dec),
            morsels,
            min_per_worker: per_worker.iter().copied().min().unwrap_or(0),
            max_per_worker: per_worker.iter().copied().max().unwrap_or(0),
            workers: per_worker.len(),
            elapsed: t0.elapsed(),
            queue_wait,
            queue_wait_max,
        });
    }
    Ok(out)
}

/// Dummy predicate used as a placeholder while probe builds run.
static FALSE_PREDICATE: BoundExpr = BoundExpr::Literal(Value::Bool(false));

/// Instantiate the fused operators for a decomposed chain, executing each
/// join's build (right) side as a breaker. Build sides run deepest-join
/// first so the stats tree keeps execution pre-order.
fn build_fused_ops<'p>(
    ex: &Executor<'_>,
    dec: &Decomposed<'p>,
    pool: &Pool,
    base_depth: usize,
) -> Result<Vec<FusedOp<'p>>> {
    let ctx = ex.ctx();
    let mut ops: Vec<FusedOp<'p>> = Vec::with_capacity(dec.chain.len());
    for node in &dec.chain {
        let kind = match node {
            LogicalPlan::Filter { predicate, .. } => OpKind::Filter(predicate),
            LogicalPlan::Project { exprs, schema, .. } => OpKind::Project { exprs, schema },
            LogicalPlan::Join { .. } => {
                OpKind::Filter(&FALSE_PREDICATE) // replaced by the build pass below
            }
            _ => unreachable!("chain holds fusable ops only"),
        };
        ops.push(FusedOp { node, kind, rows: AtomicUsize::new(0) });
    }
    for i in (0..dec.chain.len()).rev() {
        if let LogicalPlan::Join { left, right, kind, on, schema } = dec.chain[i] {
            let depth = base_depth + i + 1 - usize::from(matches!(dec.sink, SinkSpec::Table));
            let built = ex.execute_at_depth(right, depth)?;
            let probe = JoinProbe::build(
                built,
                *kind,
                on.as_ref().expect("fused joins carry a condition"),
                left.schema().len(),
                ctx.params(),
                pool,
            )?;
            ops[i].kind = OpKind::Probe { probe, n_left: left.schema().len(), schema };
        }
    }
    Ok(ops)
}

/// True when [`execute_with_extra_columns`] would take the fused path for
/// `plan`. The graph operators check this before reordering graph
/// acquisition ahead of their input's execution (they need the vertex key
/// type to type the extra columns).
pub(crate) fn fusion_eligible(ctx: &crate::context::ExecContext<'_>, plan: &LogicalPlan) -> bool {
    if !ctx.pipeline_enabled() || ctx.stats_cell().is_some() || !fusable_root(plan) {
        return false;
    }
    let dec = decompose(plan);
    matches!(dec.sink, SinkSpec::Table) && chain_materializes(&dec.chain)
}

/// Pipeline `plan` and evaluate `extras` (expression over the plan's
/// output, result type) against each morsel's output **in the same fused
/// pass**, while the morsel is hot in cache. The graph operators use this
/// to derive their source/dest vertex columns without a second full-table
/// expression sweep over an intermediate materialized input.
///
/// Returns `None` when the plan does not take the fused path — the caller
/// falls back to execute-then-evaluate. Non-timeout pipeline errors also
/// return `None`, so the barrier re-run surfaces its deterministic error
/// message. Disabled while `EXPLAIN ANALYZE` collects statistics (the
/// barrier path keeps per-operator stats exact).
pub(crate) fn execute_with_extra_columns(
    ex: &Executor<'_>,
    plan: &LogicalPlan,
    extras: &[(&BoundExpr, DataType)],
) -> Result<Option<(Arc<Table>, Vec<Column>)>> {
    if !fusion_eligible(ex.ctx(), plan) {
        return Ok(None);
    }
    match fused_with_extras(ex, plan, extras) {
        Ok(v) => Ok(Some(v)),
        Err(e @ Error::Timeout { .. }) => Err(e),
        Err(_) => Ok(None),
    }
}

fn fused_with_extras(
    ex: &Executor<'_>,
    plan: &LogicalPlan,
    extras: &[(&BoundExpr, DataType)],
) -> Result<(Arc<Table>, Vec<Column>)> {
    let ctx = ex.ctx();
    let dec = decompose(plan);
    let source = ex.execute(dec.source)?;
    let pool = Pool::new(ctx.threads());
    let ops = build_fused_ops(ex, &dec, &pool, ex.depth_for_stats())?;

    let queue = MorselQueue::new(source.row_count(), ctx.morsel_rows());
    let queue_born = Instant::now();
    let metrics = ctx.metrics().map(Arc::as_ref);
    let workers = pool.threads().min(queue.morsel_count()).max(1);
    let params = ctx.params();
    let row_limit = ctx.settings().row_limit;
    let deadline = ctx.deadline();
    let poisoned = AtomicBool::new(false);
    let source_ref: &Table = &source;
    let ops_ref: &[FusedOp<'_>] = &ops;
    let pipe_span = ctx.trace().map(|t| t.begin(ctx.trace_parent(), "pipeline"));

    type ExtraItem = (usize, Table, Vec<Column>);
    let worker_results: Vec<std::result::Result<Vec<ExtraItem>, Error>> =
        pool.broadcast(workers, |_w| {
            let mut local: Vec<ExtraItem> = Vec::new();
            while let Some(m) = queue.next() {
                if let Some(reg) = metrics {
                    reg.observe_queue_wait_us(queue_born.elapsed().as_micros() as u64);
                }
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(d) = deadline {
                    if d.expired() {
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(Error::Timeout { limit_ms: d.limit_ms });
                    }
                }
                let out = (|| -> Result<(Table, Vec<Column>)> {
                    let batch = run_chain(source_ref, m.rows.clone(), ops_ref, params, row_limit)?;
                    let Batch::Table(t) = batch else {
                        unreachable!("a materializing chain yields table batches")
                    };
                    let mut cols = Vec::with_capacity(extras.len());
                    for (e, ty) in extras {
                        cols.push(eval_to_column(e, &t, params, *ty)?);
                    }
                    Ok((t, cols))
                })();
                match out {
                    Ok((t, cols)) => local.push((m.index, t, cols)),
                    Err(e) => {
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
            Ok(local)
        });

    let mut items: Vec<ExtraItem> = Vec::new();
    let mut first_err: Option<Error> = None;
    for r in worker_results {
        match r {
            Ok(local) => items.extend(local),
            Err(e @ Error::Timeout { .. }) => return Err(e),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    items.sort_unstable_by_key(|(idx, _, _)| *idx);
    if let Some(reg) = metrics {
        reg.record_pipeline(items.len() as u64);
    }
    if let (Some(t), Some(id)) = (ctx.trace(), pipe_span) {
        t.end_with(
            id,
            vec![
                ("label".to_string(), TraceValue::from(pipeline_label(&dec))),
                ("morsels".to_string(), TraceValue::from(items.len())),
                ("workers".to_string(), TraceValue::from(workers)),
            ],
        );
    }

    // Concatenate morsel tables and their extra columns in morsel order.
    let storage = plan.schema().to_storage_schema();
    let mut columns: Vec<Column> = storage.columns().iter().map(|d| Column::empty(d.ty)).collect();
    let mut extra_cols: Vec<Column> = extras.iter().map(|(_, ty)| Column::empty(*ty)).collect();
    for (_, t, cols) in &items {
        for (c, src) in columns.iter_mut().zip(t.columns()) {
            c.extend_from(src).map_err(Error::Storage)?;
        }
        for (c, src) in extra_cols.iter_mut().zip(cols) {
            c.extend_from(src).map_err(Error::Storage)?;
        }
    }
    let table = Table::from_columns(storage, columns).map(Arc::new).map_err(Error::Storage)?;
    // The fused path bypasses `Executor::execute`'s root bookkeeping, so
    // enforce the row limit on the concatenated output here.
    ctx.check_row_limit(table.row_count(), || plan.node_label())?;
    Ok((table, extra_cols))
}

/// Merge the morsel partials (already sorted by morsel index) into the
/// root's output.
fn merge(
    dec: &Decomposed<'_>,
    plan: &LogicalPlan,
    source: &Arc<Table>,
    items: Vec<(usize, MorselOut)>,
    params: &[Value],
) -> Result<Arc<Table>> {
    match &dec.sink {
        SinkSpec::Agg { group, aggs, schema } => {
            let mut merger = aggregate::AggMerger::new(aggs);
            for (_, out) in items {
                let MorselOut::Agg(partial) = out else {
                    unreachable!("agg sink receives agg partials")
                };
                merger.push(partial)?;
            }
            let _ = params;
            merger.finish(group.is_empty(), schema)
        }
        SinkSpec::Table => {
            let materializing = chain_materializes(&dec.chain);
            concat_batches(plan, source, items.into_iter().map(|(_, o)| o), None, materializing)
        }
        SinkSpec::Limit { limit, offset } => {
            let materializing = chain_materializes(&dec.chain);
            let take_until = limit.map(|l| offset + l);
            let full = concat_batches(
                plan,
                source,
                items.into_iter().map(|(_, o)| o),
                take_until,
                materializing,
            )?;
            let n = full.row_count();
            let start = (*offset).min(n);
            let end = match limit {
                Some(l) => (start + l).min(n),
                None => n,
            };
            if start == 0 && end == n {
                Ok(full)
            } else {
                Ok(Arc::new(full.slice_rows(start..end)))
            }
        }
    }
}

/// True when the fused chain changes the row shape (project or probe),
/// i.e. its morsel outputs are materialized tables rather than source-row
/// index sets.
fn chain_materializes(chain: &[&LogicalPlan]) -> bool {
    chain.iter().any(|n| matches!(n, LogicalPlan::Project { .. } | LogicalPlan::Join { .. }))
}

/// Concatenate batch partials in morsel order. Index batches merge into one
/// gather (with the keep-all fast path returning the source snapshot);
/// table batches splice column-at-a-time. `take_until` caps the
/// concatenation for limit sinks (later rows can never be needed).
fn concat_batches(
    plan: &LogicalPlan,
    source: &Arc<Table>,
    batches: impl Iterator<Item = MorselOut>,
    take_until: Option<usize>,
    materializing: bool,
) -> Result<Arc<Table>> {
    let mut indices: Vec<usize> = Vec::new();
    let mut tables: Vec<Table> = Vec::new();
    let mut total = 0usize;
    for out in batches {
        let MorselOut::Batch(batch) = out else { unreachable!("table sink receives batches") };
        if let Some(cap) = take_until {
            if total >= cap {
                break;
            }
        }
        match batch {
            Batch::Range(r) => {
                total += r.len();
                indices.extend(r);
            }
            Batch::Rows(rows) => {
                total += rows.len();
                indices.extend(rows);
            }
            Batch::Table(t) => {
                total += t.row_count();
                tables.push(t);
            }
        }
    }
    if materializing {
        debug_assert!(indices.is_empty(), "a materializing chain produces table batches");
        // `Limit::schema()` delegates to its input, so `plan.schema()` is
        // the outermost fused op's output shape for every sink kind.
        let storage = plan.schema().to_storage_schema();
        let mut columns: Vec<Column> =
            storage.columns().iter().map(|d| Column::empty(d.ty)).collect();
        for t in &tables {
            for (c, src) in columns.iter_mut().zip(t.columns()) {
                c.extend_from(src).map_err(Error::Storage)?;
            }
        }
        return Table::from_columns(storage, columns).map(Arc::new).map_err(Error::Storage);
    }
    // Index batches: all rows reference the pipeline source.
    if indices.len() == source.row_count() {
        // Nothing filtered: reuse the source snapshot (same fast path the
        // barrier filter has).
        return Ok(Arc::clone(source));
    }
    Ok(Arc::new(source.take(&indices)))
}

/// A short human label for the pipeline (`EXPLAIN ANALYZE` detail).
fn pipeline_label(dec: &Decomposed<'_>) -> String {
    let mut parts: Vec<String> = vec![short_label(dec.source)];
    for node in dec.chain.iter().rev() {
        parts.push(short_label(node));
    }
    match dec.sink {
        SinkSpec::Table => {}
        SinkSpec::Limit { .. } => parts.push("limit".to_string()),
        SinkSpec::Agg { .. } => parts.push("aggregate".to_string()),
    }
    parts.join(" -> ")
}

fn short_label(node: &LogicalPlan) -> String {
    match node {
        LogicalPlan::Scan { table, .. } => format!("scan {table}"),
        LogicalPlan::Filter { .. } => "filter".to_string(),
        LogicalPlan::Project { .. } => "project".to_string(),
        LogicalPlan::Join { .. } => "probe".to_string(),
        LogicalPlan::Aggregate { .. } => "aggregate".to_string(),
        other => other.node_label().split_whitespace().next().unwrap_or("op").to_lowercase(),
    }
}

/// `EXPLAIN` rendering with pipeline annotations: members of each pipeline
/// (sink, fused ops, leaf source) carry ` [pipeline N]`; materializing
/// internal nodes carry ` [breaker]`. With the pipeline engine off the
/// plain plan text is returned unchanged.
pub fn explain_with_pipelines(plan: &LogicalPlan, pipeline_on: bool) -> String {
    if !pipeline_on {
        return plan.explain();
    }
    let mut out = String::new();
    let mut next_id = 0usize;
    annotate(plan, &mut out, 0, &mut next_id);
    out
}

fn annotate(plan: &LogicalPlan, out: &mut String, depth: usize, next_id: &mut usize) {
    use std::fmt::Write as _;
    if fusable_root(plan) {
        let pid = *next_id;
        *next_id += 1;
        let dec = decompose(plan);
        // Root line (sink or outermost fused op).
        let _ = writeln!(out, "{}{} [pipeline {pid}]", "  ".repeat(depth), plan.node_label());
        let extra = usize::from(!matches!(dec.sink, SinkSpec::Table));
        for (i, node) in dec.chain.iter().enumerate() {
            if std::ptr::eq(*node, plan) {
                continue; // already rendered as the root line
            }
            let d = depth + i + extra;
            let _ = writeln!(out, "{}{} [pipeline {pid}]", "  ".repeat(d), node.node_label());
        }
        let source_depth = depth + dec.chain.len() + extra;
        if dec.source.children().is_empty() {
            let _ = writeln!(
                out,
                "{}{} [pipeline {pid}]",
                "  ".repeat(source_depth),
                dec.source.node_label()
            );
        } else {
            annotate(dec.source, out, source_depth, next_id);
        }
        // Build sides, deepest join first (execution pre-order).
        for (i, node) in dec.chain.iter().enumerate().rev() {
            if let LogicalPlan::Join { right, .. } = node {
                let d = depth + i + extra + 1;
                annotate(right, out, d, next_id);
            }
        }
    } else {
        let breaker = matches!(
            plan,
            LogicalPlan::Sort { .. }
                | LogicalPlan::Distinct { .. }
                | LogicalPlan::Union { .. }
                | LogicalPlan::Unnest { .. }
                | LogicalPlan::GraphSelect { .. }
                | LogicalPlan::GraphJoin { .. }
        );
        let suffix = if breaker { " [breaker]" } else { "" };
        let _ = writeln!(out, "{}{}{suffix}", "  ".repeat(depth), plan.node_label());
        for child in plan.children() {
            annotate(child, out, depth + 1, next_id);
        }
    }
}
