//! Execution of the paper's graph operators.
//!
//! This is the engine-side counterpart of §3.1/§3.2:
//!
//! 1. the edge table expression is materialized;
//! 2. the vertex set `V = S ∪ D` is derived and every vertex value is
//!    translated into the dense domain `H = {0, …, |V|−1}`;
//! 3. a CSR is built over `H` (counting sort + prefix sum);
//! 4. the `X`/`Y` values are mapped into `H` — values that are not vertices
//!    are filtered out ("the values from X and Y are then joined with V,
//!    performing an initial filtering");
//! 5. the external library (gsql-graph) computes reachability and the
//!    requested shortest paths, batching all pairs with the same source
//!    into one traversal;
//! 6. the result set is materialized back: surviving input rows, one cost
//!    column per `CHEAPEST SUM`, and path columns holding row references
//!    into the edge snapshot (§3.3).

use crate::context::ExecContext;
use crate::error::{exec_err, Error};
use crate::exec::executor::Executor;
use crate::exec::expression::{eval_const, eval_to_column};
use crate::exec::pipeline;
use crate::path_index::PathIndexData;
use crate::plan::{BoundExpr, CheapestSpec, LogicalPlan, PlanSchema};
use gsql_graph::batch::CostValue;
use gsql_graph::{
    BatchComputer, Csr, GraphError, PairResult, TraversalKind, TraversalObserver, WeightSpec,
};
use gsql_obs::{EngineMetrics, TraceValue};
use gsql_storage::value::HashableValue;
use gsql_storage::{Column, ColumnBuilder, DataType, PathValue, Table, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// A graph materialized from an edge table: the snapshot (for path row
/// references), the CSR, and the value→dense-id dictionary.
///
/// This is also what a `CREATE GRAPH INDEX` caches (paper §6 future work):
/// "these indices will store the full graph, ready to be used when a query
/// matches the edge table that generated the graph".
#[derive(Debug)]
pub struct MaterializedGraph {
    /// Edge-table snapshot. Rows with NULL endpoints are excluded, so CSR
    /// edge-row ids index this table directly.
    pub edges: Arc<Table>,
    /// The CSR over dense vertex ids.
    pub csr: Csr,
    /// Vertex value → dense id.
    pub dict: HashMap<HashableValue, u32>,
    /// Ordinal of the source key column in `edges`.
    pub src_key: usize,
    /// Ordinal of the destination key column in `edges`.
    pub dst_key: usize,
    /// Lazily built reverse CSR, used by the bidirectional-BFS fast path
    /// for indexed single-pair unweighted queries. Building it costs as
    /// much as the forward CSR, so it is only materialized for graphs that
    /// outlive one query (graph indices).
    reverse: std::sync::OnceLock<Csr>,
    /// Degree of parallelism the graph was built with; reused for the lazy
    /// reverse CSR (parallel construction is bit-identical to sequential,
    /// so this only affects speed).
    build_threads: usize,
}

impl MaterializedGraph {
    /// Map a vertex value to its dense id, if it is a vertex of the graph.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        if v.is_null() {
            return None;
        }
        self.dict.get(&HashableValue(v.clone())).copied()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The reverse CSR, built on first use and cached for the graph's
    /// lifetime.
    pub fn reverse(&self) -> &Csr {
        self.reverse
            .get_or_init(|| gsql_graph::reverse_csr_with_threads(&self.csr, self.build_threads))
    }

    /// Reassemble a graph from persisted parts (warm restart). The reverse
    /// CSR is installed eagerly — a restored path index must answer its
    /// first query without any build work.
    pub(crate) fn from_saved(
        edges: Arc<Table>,
        csr: Csr,
        reverse: Csr,
        dict: HashMap<HashableValue, u32>,
        src_key: usize,
        dst_key: usize,
    ) -> MaterializedGraph {
        let slot = std::sync::OnceLock::new();
        slot.set(reverse).expect("fresh OnceLock");
        MaterializedGraph { edges, csr, dict, src_key, dst_key, reverse: slot, build_threads: 1 }
    }
}

/// The NULL-endpoint filter every materialized graph applies to its edge
/// snapshot, factored out so warm-start restoration recomputes **exactly**
/// the snapshot the index was built over.
pub(crate) fn null_filtered_edges(edges: Arc<Table>, src_key: usize, dst_key: usize) -> Arc<Table> {
    let src_col = edges.column(src_key);
    let dst_col = edges.column(dst_key);
    if src_col.null_count() == 0 && dst_col.null_count() == 0 {
        return edges;
    }
    let keep: Vec<usize> =
        (0..edges.row_count()).filter(|&i| !src_col.is_null(i) && !dst_col.is_null(i)).collect();
    Arc::new(edges.take(&keep))
}

/// [`build_graph_with_threads`] with the sequential build.
pub fn build_graph(edges: Arc<Table>, src_key: usize, dst_key: usize) -> Result<MaterializedGraph> {
    build_graph_with_threads(edges, src_key, dst_key, 1)
}

/// Build a [`MaterializedGraph`] from a materialized edge table.
///
/// This is the construction cost that the paper's evaluation shows
/// dominating single-pair query latency (§4) and that batching (Fig. 1b)
/// and graph indices (§6) amortize. The CSR's counting sort + prefix sum
/// run over `threads` workers (bit-identical to sequential); the vertex
/// dictionary stays sequential (dense ids are assigned in first-seen
/// order).
pub fn build_graph_with_threads(
    edges: Arc<Table>,
    src_key: usize,
    dst_key: usize,
    threads: usize,
) -> Result<MaterializedGraph> {
    // Exclude edges with NULL endpoints so the snapshot's row ids equal the
    // CSR's edge-row ids.
    let edges = null_filtered_edges(edges, src_key, dst_key);

    let src_col = edges.column(src_key);
    let dst_col = edges.column(dst_key);
    let n_rows = edges.row_count();

    // Vertex dictionary over S ∪ D, assigning dense ids in first-seen order.
    let mut dict: HashMap<HashableValue, u32> = HashMap::new();
    let mut src_ids = Vec::with_capacity(n_rows);
    let mut dst_ids = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let s = src_col.get(i);
        let d = dst_col.get(i);
        let next = dict.len() as u32;
        let sid = *dict.entry(HashableValue(s)).or_insert(next);
        let next = dict.len() as u32;
        let did = *dict.entry(HashableValue(d)).or_insert(next);
        src_ids.push(sid);
        dst_ids.push(did);
    }
    let csr = Csr::from_edges_with_threads(dict.len() as u32, &src_ids, &dst_ids, threads)
        .map_err(Error::Graph)?;
    Ok(MaterializedGraph {
        edges,
        csr,
        dict,
        src_key,
        dst_key,
        reverse: std::sync::OnceLock::new(),
        build_threads: threads.max(1),
    })
}

/// How one `CHEAPEST SUM` spec is actually executed.
enum SpecRun {
    /// Constant weight: run BFS and scale the hop count. `CHEAPEST SUM(1)`
    /// is the paper's unweighted shortest path.
    Hops {
        /// The constant weight (validated > 0).
        scale: Value,
    },
    /// Per-edge weights.
    Weighted(WeightSpec),
}

/// Build the execution form of a weight spec over the edge snapshot.
fn prepare_spec(spec: &CheapestSpec, edges: &Table, params: &[Value]) -> Result<SpecRun> {
    if spec.weight.is_constant() {
        let v = eval_const(&spec.weight, params)?;
        let positive = match &v {
            Value::Int(x) => *x > 0,
            Value::Double(x) => *x > 0.0 && x.is_finite(),
            _ => false,
        };
        if !positive {
            return Err(Error::Graph(GraphError::NonPositiveWeight {
                edge_row: 0,
                weight: v.to_string(),
            }));
        }
        return Ok(SpecRun::Hops { scale: v });
    }
    let col = eval_to_column(&spec.weight, edges, params, spec.weight_ty)?;
    match &col {
        Column::Int(vals, validity) => {
            if let Some(row) = (0..vals.len()).find(|&i| !validity.get(i)) {
                return Err(Error::Graph(GraphError::NullWeight { edge_row: row as u32 }));
            }
            Ok(SpecRun::Weighted(WeightSpec::Int(vals.clone())))
        }
        Column::Double(vals, validity) => {
            if let Some(row) = (0..vals.len()).find(|&i| !validity.get(i)) {
                return Err(Error::Graph(GraphError::NullWeight { edge_row: row as u32 }));
            }
            Ok(SpecRun::Weighted(WeightSpec::Float(vals.clone())))
        }
        other => Err(exec_err!("CHEAPEST SUM weight must be numeric, found {}", other.data_type())),
    }
}

/// Bridges the graph library's per-traversal callbacks onto the engine
/// metrics registry, while accumulating totals for the enclosing trace
/// span. Called from the traversal worker pool, so both sinks are relaxed
/// atomics — nothing here influences results.
struct MetricsObserver<'m> {
    metrics: Option<&'m EngineMetrics>,
    traversals: AtomicU64,
    settled: AtomicU64,
}

impl<'m> MetricsObserver<'m> {
    fn new(metrics: Option<&'m EngineMetrics>) -> MetricsObserver<'m> {
        MetricsObserver { metrics, traversals: AtomicU64::new(0), settled: AtomicU64::new(0) }
    }

    fn totals(&self) -> (u64, u64) {
        (self.traversals.load(Ordering::Relaxed), self.settled.load(Ordering::Relaxed))
    }
}

impl TraversalObserver for MetricsObserver<'_> {
    fn traversal(&self, kind: TraversalKind, settled: usize) {
        if let Some(m) = self.metrics {
            m.record_traversal(kind.as_str(), settled as u64);
        }
        self.traversals.fetch_add(1, Ordering::Relaxed);
        self.settled.fetch_add(settled as u64, Ordering::Relaxed);
    }
}

/// Per-spec results for a batch of pairs.
struct SpecResults {
    results: Vec<PairResult>,
    scale: Option<Value>,
    want_path: bool,
    cost_ty: DataType,
}

impl SpecResults {
    fn cost_of(&self, pair_idx: usize) -> Result<Value> {
        let r = &self.results[pair_idx];
        let raw = r.cost.ok_or_else(|| exec_err!("cost requested for unreachable pair"))?;
        let v = match (&self.scale, raw) {
            (None, CostValue::Int(c)) => Value::Int(c),
            (None, CostValue::Float(c)) => Value::Double(c),
            (Some(Value::Int(k)), CostValue::Int(hops)) => {
                Value::Int(hops.checked_mul(*k).ok_or_else(|| exec_err!("cost overflow"))?)
            }
            (Some(Value::Double(k)), CostValue::Int(hops)) => Value::Double(hops as f64 * k),
            (Some(s), c) => {
                return Err(exec_err!("inconsistent scale {s} for cost {c:?}"));
            }
        };
        // Respect the declared cost type (e.g. `CHEAPEST SUM(1.5)` is
        // Double even though hops are integers).
        match (self.cost_ty, v) {
            (DataType::Double, Value::Int(x)) => Ok(Value::Double(x as f64)),
            (_, v) => Ok(v),
        }
    }

    fn path_of(&self, pair_idx: usize, edges: &Arc<Table>) -> Result<Value> {
        let r = &self.results[pair_idx];
        let rows = r.path.clone().ok_or_else(|| exec_err!("path requested but not computed"))?;
        Ok(Value::Path(PathValue { edges: Arc::clone(edges), rows }))
    }
}

/// Run all specs (or a plain reachability probe) over a pair batch.
///
/// `from_index` marks graphs that outlive the query (graph indices); those
/// may use the bidirectional-BFS fast path for single-pair unweighted
/// requests, amortizing the reverse-CSR construction across queries.
/// The context supplies the `?` parameters, the worker-pool width for the
/// distinct-source traversals (results merged in input order — identical
/// to sequential) and the statement deadline, polled between traversal
/// groups so a timeout interrupts a long batch mid-flight.
fn run_specs(
    graph: &MaterializedGraph,
    pairs: &[(u32, u32)],
    specs: &[CheapestSpec],
    ctx: &ExecContext<'_>,
    from_index: bool,
) -> Result<(Vec<bool>, Vec<SpecResults>)> {
    let observer = MetricsObserver::new(ctx.metrics().map(Arc::as_ref));
    let span = ctx.trace().map(|t| t.begin(ctx.trace_parent(), "traversal"));
    let result = run_specs_observed(graph, pairs, specs, ctx, from_index, &observer);
    if let (Some(t), Some(id)) = (ctx.trace(), span) {
        let (traversals, settled) = observer.totals();
        t.end_with(
            id,
            vec![
                ("pairs".to_string(), TraceValue::from(pairs.len() as i64)),
                ("traversals".to_string(), TraceValue::from(traversals as i64)),
                ("settled".to_string(), TraceValue::from(settled as i64)),
            ],
        );
    }
    result
}

/// [`run_specs`] body, with every traversal reported to `observer`.
fn run_specs_observed(
    graph: &MaterializedGraph,
    pairs: &[(u32, u32)],
    specs: &[CheapestSpec],
    ctx: &ExecContext<'_>,
    from_index: bool,
    observer: &MetricsObserver<'_>,
) -> Result<(Vec<bool>, Vec<SpecResults>)> {
    let params = ctx.params();
    let computer = BatchComputer::new(&graph.csr)
        .with_threads(ctx.threads())
        .with_deadline(ctx.deadline_instant())
        .with_observer(Some(observer));
    let bidir_eligible = from_index && pairs.len() == 1;
    if specs.is_empty() {
        if bidir_eligible {
            let (s, d) = pairs[0];
            let hit = gsql_graph::bidirectional_bfs(&graph.csr, graph.reverse(), s, d);
            observer
                .traversal(TraversalKind::BidirBfs, hit.as_ref().map_or(0, |h| h.settled as usize));
            return Ok((vec![hit.is_some()], Vec::new()));
        }
        // Reachability only: BFS, paths discarded (paper §3.2).
        let results = computer
            .compute(pairs, &WeightSpec::Unweighted, false)
            .map_err(|e| graph_err(ctx, e))?;
        let reachable = results.iter().map(|r| r.reachable).collect();
        return Ok((reachable, Vec::new()));
    }
    let mut all = Vec::with_capacity(specs.len());
    for spec in specs {
        let run = prepare_spec(spec, &graph.edges, params)?;
        let (weight_spec, scale) = match run {
            SpecRun::Hops { scale } => (WeightSpec::Unweighted, Some(scale)),
            SpecRun::Weighted(w) => (w, None),
        };
        let results = if bidir_eligible && matches!(weight_spec, WeightSpec::Unweighted) {
            let (s, d) = pairs[0];
            let hit = gsql_graph::bidirectional_bfs(&graph.csr, graph.reverse(), s, d);
            observer
                .traversal(TraversalKind::BidirBfs, hit.as_ref().map_or(0, |h| h.settled as usize));
            vec![match hit {
                Some(hit) => PairResult {
                    reachable: true,
                    cost: Some(CostValue::Int(hit.dist as i64)),
                    path: spec.want_path.then_some(hit.path),
                },
                None => PairResult { reachable: false, cost: None, path: None },
            }]
        } else {
            computer.compute(pairs, &weight_spec, spec.want_path).map_err(|e| graph_err(ctx, e))?
        };
        all.push(SpecResults {
            results,
            scale,
            want_path: spec.want_path,
            cost_ty: spec.weight_ty,
        });
    }
    // Reachability is weight-independent (all weights finite and positive),
    // so the first spec's flags select the surviving rows.
    let reachable = all[0].results.iter().map(|r| r.reachable).collect();
    Ok((reachable, all))
}

/// Lift a graph-runtime error: an abandoned-deadline batch becomes the
/// statement's [`Error::Timeout`]; everything else stays a graph error.
fn graph_err(ctx: &ExecContext<'_>, e: GraphError) -> Error {
    match e {
        GraphError::DeadlineExceeded => ctx.timeout_error(),
        other => Error::Graph(other),
    }
}

/// Execute a `GraphSelect` or `GraphJoin` node.
pub fn execute(ex: &Executor<'_>, plan: &LogicalPlan) -> Result<Arc<Table>> {
    match plan {
        LogicalPlan::GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema } => {
            execute_graph_select(ex, input, edge, *src_key, *dst_key, source, dest, specs, schema)
        }
        LogicalPlan::GraphJoin {
            left,
            right,
            edge,
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        } => execute_graph_join(
            ex, left, right, edge, *src_key, *dst_key, source, dest, specs, schema,
        ),
        other => Err(exec_err!("graph_op::execute on non-graph node {other:?}")),
    }
}

/// Obtain the graph for an edge plan — from a matching, fresh path or
/// graph index when one exists, otherwise by building it now.
///
/// Index usage comes in three flavours: the optimizer-planned
/// [`LogicalPlan::PathIndexedGraph`] hint (the returned [`PathIndexData`]
/// carries the acceleration index — ALT landmarks or a contraction
/// hierarchy), the optimizer-planned [`LogicalPlan::IndexedGraph`] hint,
/// and a runtime lookup for plain `Scan` edges (plans produced without a
/// session context). All honour the context's index flags, whose accessors
/// return `None` when the setting is off.
fn obtain_graph(
    ex: &Executor<'_>,
    edge: &LogicalPlan,
    src_key: usize,
    dst_key: usize,
) -> Result<(Arc<MaterializedGraph>, bool, Option<Arc<PathIndexData>>)> {
    let ctx = ex.ctx();
    if let (LogicalPlan::PathIndexedGraph { index, .. }, Some(registry)) =
        (edge, ctx.path_indexes())
    {
        if let Some(data) = registry.data_by_name(ctx.catalog(), index, ctx.threads())? {
            let graph = Arc::clone(&data.graph);
            return Ok((graph, true, Some(data)));
        }
        // Index dropped since planning: fall through to the scan fallback
        // built into the PathIndexedGraph executor arm.
    }
    if let (LogicalPlan::IndexedGraph { index, .. }, Some(registry)) = (edge, ctx.indexes()) {
        if let Some(graph) = registry.graph_by_name(ctx.catalog(), index, ctx.threads())? {
            return Ok((graph, true, None));
        }
    }
    if let (LogicalPlan::Scan { table, schema }, Some(registry)) = (edge, ctx.indexes()) {
        let src_name = &schema.column(src_key).name;
        let dst_name = &schema.column(dst_key).name;
        if let Some(graph) = registry.lookup(
            ctx.catalog(),
            table,
            src_name,
            dst_name,
            src_key,
            dst_key,
            ctx.threads(),
        )? {
            return Ok((graph, true, None));
        }
    }
    let edges = ex.execute(edge)?;
    let threads = ctx.threads();
    Ok((Arc::new(build_graph_with_threads(edges, src_key, dst_key, threads)?), false, None))
}

/// Run a single-pair batch through the accelerated search (ALT or CH,
/// whichever the index was built as) when the index covers every spec.
/// Returns `None` when any spec turns out ineligible at runtime (e.g. the
/// index was recreated with a different weight column between planning and
/// execution) — the caller falls back to the plain traversals, which are
/// always correct.
fn run_specs_accel(
    ex: &Executor<'_>,
    data: &PathIndexData,
    pair: (u32, u32),
    specs: &[CheapestSpec],
    params: &[Value],
) -> Result<Option<(Vec<bool>, Vec<SpecResults>)>> {
    if !specs.iter().all(|s| crate::optimize::spec_accel_eligible(s, data.weight_key)) {
        return Ok(None);
    }
    let ctx = ex.ctx();
    let span = ctx.trace().map(|t| t.begin(ctx.trace_parent(), "traversal"));
    let (s, d) = pair;
    let mut settled_total = 0usize;
    let mut all = Vec::with_capacity(specs.len());
    let mut reachable = Vec::new();
    if specs.is_empty() {
        // Reachability probe: one accelerated search over the index's
        // native weights; a finite distance means connected.
        let (dist, settled) = data.search(s, d);
        settled_total += settled;
        reachable.push(dist.is_some());
    }
    if !specs.is_empty() {
        // Mirrors `prepare_spec`: a constant weight scales the hop count
        // (validated strictly positive with the same error), a matching
        // weight column uses the index's prevalidated weights. Eligibility
        // pins constant specs to hop indexes, so every spec is served by
        // the index's native search — hop distances there — and one search
        // covers them all.
        let mut scales = Vec::with_capacity(specs.len());
        for spec in specs {
            let scale = if spec.weight.is_constant() {
                let v = eval_const(&spec.weight, params)?;
                let positive = match &v {
                    Value::Int(x) => *x > 0,
                    Value::Double(x) => *x > 0.0 && x.is_finite(),
                    _ => false,
                };
                if !positive {
                    return Err(Error::Graph(GraphError::NonPositiveWeight {
                        edge_row: 0,
                        weight: v.to_string(),
                    }));
                }
                Some(v)
            } else {
                None
            };
            scales.push(scale);
        }
        let (dist, settled) = data.search(s, d);
        settled_total += settled;
        reachable.push(dist.is_some());
        for (spec, scale) in specs.iter().zip(scales) {
            all.push(SpecResults {
                results: vec![PairResult {
                    reachable: dist.is_some(),
                    cost: dist.map(|c| CostValue::Int(c as i64)),
                    path: None,
                }],
                scale,
                want_path: false,
                cost_ty: spec.weight_ty,
            });
        }
    }
    if let Some(m) = ctx.metrics() {
        m.record_traversal(data.kind_name(), settled_total as u64);
    }
    if let (Some(t), Some(id)) = (ctx.trace(), span) {
        t.end_with(
            id,
            vec![
                ("kind".to_string(), TraceValue::from(data.kind_name())),
                ("pairs".to_string(), TraceValue::from(1i64)),
                ("settled".to_string(), TraceValue::from(settled_total as i64)),
            ],
        );
    }
    ctx.record_op_detail(data.analyze_detail(settled_total));
    Ok(Some((reachable, all)))
}

/// Run a multi-pair batch through the index's many-to-many tier: bucket
/// CH (`S + T` upward searches for the whole matrix) or multi-target ALT
/// (one goal-directed search per distinct source). Same eligibility and
/// fallback contract as [`run_specs_accel`]; costs are bit-identical to
/// the per-source Dijkstra fallback at every thread count. An expired
/// statement deadline surfaces as the statement's timeout error, matching
/// `BatchComputer`.
fn run_specs_accel_batch(
    ex: &Executor<'_>,
    data: &PathIndexData,
    pairs: &[(u32, u32)],
    specs: &[CheapestSpec],
    params: &[Value],
) -> Result<Option<(Vec<bool>, Vec<SpecResults>)>> {
    if !specs.iter().all(|s| crate::optimize::spec_accel_eligible(s, data.weight_key)) {
        return Ok(None);
    }
    // Validate constant scales up front (mirrors `prepare_spec`, same
    // error), before any traversal work runs.
    let mut scales = Vec::with_capacity(specs.len());
    for spec in specs {
        let scale = if spec.weight.is_constant() {
            let v = eval_const(&spec.weight, params)?;
            let positive = match &v {
                Value::Int(x) => *x > 0,
                Value::Double(x) => *x > 0.0 && x.is_finite(),
                _ => false,
            };
            if !positive {
                return Err(Error::Graph(GraphError::NonPositiveWeight {
                    edge_row: 0,
                    weight: v.to_string(),
                }));
            }
            Some(v)
        } else {
            None
        };
        scales.push(scale);
    }
    let ctx = ex.ctx();
    let span = ctx.trace().map(|t| t.begin(ctx.trace_parent(), "traversal"));
    let batch = data
        .search_batch(pairs, ctx.threads(), ctx.deadline_instant())
        .ok_or_else(|| ctx.timeout_error())?;
    if let Some(m) = ctx.metrics() {
        m.record_traversal(batch.kind, batch.settled as u64);
    }
    if let (Some(t), Some(id)) = (ctx.trace(), span) {
        t.end_with(
            id,
            vec![
                ("kind".to_string(), TraceValue::from(batch.kind)),
                ("pairs".to_string(), TraceValue::from(pairs.len() as i64)),
                ("settled".to_string(), TraceValue::from(batch.settled as i64)),
            ],
        );
    }
    let reachable: Vec<bool> = batch.dist.iter().map(|d| d.is_some()).collect();
    let mut all = Vec::with_capacity(specs.len());
    for (spec, scale) in specs.iter().zip(scales) {
        all.push(SpecResults {
            results: batch
                .dist
                .iter()
                .map(|d| PairResult {
                    reachable: d.is_some(),
                    cost: d.map(|c| CostValue::Int(c as i64)),
                    path: None,
                })
                .collect(),
            scale,
            want_path: false,
            cost_ty: spec.weight_ty,
        });
    }
    ctx.record_op_detail(batch.detail);
    Ok(Some((reachable, all)))
}

#[allow(clippy::too_many_arguments)]
fn execute_graph_select(
    ex: &Executor<'_>,
    input: &LogicalPlan,
    edge: &LogicalPlan,
    src_key: usize,
    dst_key: usize,
    source: &BoundExpr,
    dest: &BoundExpr,
    specs: &[CheapestSpec],
    schema: &PlanSchema,
) -> Result<Arc<Table>> {
    // Fused path: when the input is a pipelinable chain, the vertex
    // expressions X/Y are evaluated per morsel inside the input's own
    // fused pass — no second full-table expression sweep over an
    // intermediate table. The graph is obtained first because the extra
    // columns are typed by the edge key. Otherwise: materialize the input,
    // then map X/Y into the dense domain, dropping rows whose endpoints
    // are not vertices (the "initial filtering" of §3.1).
    let (input_table, x_col, y_col, graph, from_index, accel_data) =
        if pipeline::fusion_eligible(ex.ctx(), input) {
            let (graph, from_index, accel_data) = obtain_graph(ex, edge, src_key, dst_key)?;
            let key_ty = graph.edges.schema().column(src_key).ty;
            let (input_table, mut cols) = match pipeline::execute_with_extra_columns(
                ex,
                input,
                &[(source, key_ty), (dest, key_ty)],
            )? {
                Some(fused) => fused,
                None => {
                    let t = ex.execute(input)?;
                    let x = eval_to_column(source, &t, ex.ctx().params(), key_ty)?;
                    let y = eval_to_column(dest, &t, ex.ctx().params(), key_ty)?;
                    (t, vec![x, y])
                }
            };
            let y_col = cols.pop().expect("two extra columns");
            let x_col = cols.pop().expect("two extra columns");
            (input_table, x_col, y_col, graph, from_index, accel_data)
        } else {
            let input_table = ex.execute(input)?;
            let (graph, from_index, accel_data) = obtain_graph(ex, edge, src_key, dst_key)?;
            let key_ty = graph.edges.schema().column(src_key).ty;
            let x_col = eval_to_column(source, &input_table, ex.ctx().params(), key_ty)?;
            let y_col = eval_to_column(dest, &input_table, ex.ctx().params(), key_ty)?;
            (input_table, x_col, y_col, graph, from_index, accel_data)
        };
    let mut candidates: Vec<usize> = Vec::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for row in 0..input_table.row_count() {
        let (Some(sid), Some(did)) = (graph.lookup(&x_col.get(row)), graph.lookup(&y_col.get(row)))
        else {
            continue;
        };
        candidates.push(row);
        pairs.push((sid, did));
    }

    // Requests route through the accelerated search when a covering path
    // index is attached — single pairs through the point-to-point tier,
    // multi-pair batches through the many-to-many tier; everything else
    // (ineligible specs, dropped index) takes the plain traversals.
    let accelerated = match (&accel_data, pairs.len()) {
        (Some(data), 1) => run_specs_accel(ex, data, pairs[0], specs, ex.ctx().params())?,
        (Some(data), n) if n > 1 => {
            run_specs_accel_batch(ex, data, &pairs, specs, ex.ctx().params())?
        }
        _ => None,
    };
    let (reachable, spec_results) = match accelerated {
        Some(result) => result,
        None => run_specs(&graph, &pairs, specs, ex.ctx(), from_index)?,
    };

    let kept: Vec<usize> = (0..pairs.len()).filter(|&i| reachable[i]).collect();
    let kept_input_rows: Vec<usize> = kept.iter().map(|&i| candidates[i]).collect();

    let mut columns: Vec<Column> =
        input_table.columns().iter().map(|c| c.take(&kept_input_rows)).collect();
    append_spec_columns(&mut columns, &spec_results, &kept, &graph.edges)?;
    Table::from_columns(schema.to_storage_schema(), columns).map(Arc::new).map_err(Error::Storage)
}

#[allow(clippy::too_many_arguments)]
fn execute_graph_join(
    ex: &Executor<'_>,
    left: &LogicalPlan,
    right: &LogicalPlan,
    edge: &LogicalPlan,
    src_key: usize,
    dst_key: usize,
    source: &BoundExpr,
    dest: &BoundExpr,
    specs: &[CheapestSpec],
    schema: &PlanSchema,
) -> Result<Arc<Table>> {
    // GraphJoin is the batched many-to-many shape; a covering path index
    // serves the whole distinct-source × distinct-dest matrix through the
    // bucket-CH / multi-target-ALT tier below. Pipelinable sides evaluate
    // their vertex expression inside their own fused pass (see
    // `execute_graph_select`); that reorders graph acquisition first, so
    // only do it when a side actually fuses.
    let ctx = ex.ctx();
    let fuse = pipeline::fusion_eligible(ctx, left) || pipeline::fusion_eligible(ctx, right);
    let (left_table, right_table, x_col, y_col, graph, from_index, accel_data) = if fuse {
        let (graph, from_index, accel_data) = obtain_graph(ex, edge, src_key, dst_key)?;
        let key_ty = graph.edges.schema().column(src_key).ty;
        let (left_table, x_col) = graph_side(ex, left, source, key_ty)?;
        let (right_table, y_col) = graph_side(ex, right, dest, key_ty)?;
        (left_table, right_table, x_col, y_col, graph, from_index, accel_data)
    } else {
        let left_table = ex.execute(left)?;
        let right_table = ex.execute(right)?;
        let (graph, from_index, accel_data) = obtain_graph(ex, edge, src_key, dst_key)?;
        let key_ty = graph.edges.schema().column(src_key).ty;
        let x_col = eval_to_column(source, &left_table, ctx.params(), key_ty)?;
        let y_col = eval_to_column(dest, &right_table, ctx.params(), key_ty)?;
        (left_table, right_table, x_col, y_col, graph, from_index, accel_data)
    };

    // Distinct vertex ids on each side, with their row lists.
    let mut left_ids: Vec<(usize, u32)> = Vec::new();
    for row in 0..left_table.row_count() {
        if let Some(sid) = graph.lookup(&x_col.get(row)) {
            left_ids.push((row, sid));
        }
    }
    let mut right_ids: Vec<(usize, u32)> = Vec::new();
    for row in 0..right_table.row_count() {
        if let Some(did) = graph.lookup(&y_col.get(row)) {
            right_ids.push((row, did));
        }
    }
    let mut distinct_src: Vec<u32> = left_ids.iter().map(|&(_, s)| s).collect();
    distinct_src.sort_unstable();
    distinct_src.dedup();
    let mut distinct_dst: Vec<u32> = right_ids.iter().map(|&(_, d)| d).collect();
    distinct_dst.sort_unstable();
    distinct_dst.dedup();

    // One traversal per distinct source over all distinct destinations.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(distinct_src.len() * distinct_dst.len());
    for &s in &distinct_src {
        for &d in &distinct_dst {
            pairs.push((s, d));
        }
    }
    let accelerated = match &accel_data {
        Some(data) if !pairs.is_empty() => {
            run_specs_accel_batch(ex, data, &pairs, specs, ex.ctx().params())?
        }
        _ => None,
    };
    let (reachable, spec_results) = match accelerated {
        Some(result) => result,
        None => run_specs(&graph, &pairs, specs, ex.ctx(), from_index)?,
    };
    let pair_index: HashMap<(u32, u32), usize> =
        pairs.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();

    // Emit matching (left row, right row) pairs.
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    let mut kept_pairs: Vec<usize> = Vec::new();
    for &(li, sid) in &left_ids {
        for &(ri, did) in &right_ids {
            let pi = pair_index[&(sid, did)];
            if reachable[pi] {
                left_rows.push(li);
                right_rows.push(ri);
                kept_pairs.push(pi);
            }
        }
    }

    let mut columns: Vec<Column> =
        left_table.columns().iter().map(|c| c.take(&left_rows)).collect();
    columns.extend(right_table.columns().iter().map(|c| c.take(&right_rows)));
    append_spec_columns(&mut columns, &spec_results, &kept_pairs, &graph.edges)?;
    Table::from_columns(schema.to_storage_schema(), columns).map(Arc::new).map_err(Error::Storage)
}

/// Execute one side of a graph join, evaluating its vertex expression in
/// the side's fused pipeline pass when possible.
fn graph_side(
    ex: &Executor<'_>,
    side: &LogicalPlan,
    expr: &BoundExpr,
    key_ty: DataType,
) -> Result<(Arc<Table>, Column)> {
    match pipeline::execute_with_extra_columns(ex, side, &[(expr, key_ty)])? {
        Some((t, mut cols)) => {
            let col = cols.pop().expect("one extra column");
            Ok((t, col))
        }
        None => {
            let t = ex.execute(side)?;
            let col = eval_to_column(expr, &t, ex.ctx().params(), key_ty)?;
            Ok((t, col))
        }
    }
}

/// Append the cost (and path) columns for every spec.
fn append_spec_columns(
    columns: &mut Vec<Column>,
    spec_results: &[SpecResults],
    kept_pairs: &[usize],
    edges: &Arc<Table>,
) -> Result<()> {
    for sr in spec_results {
        let cost_ty = sr.cost_ty;
        let mut cost_builder = ColumnBuilder::new(cost_ty);
        for &pi in kept_pairs {
            cost_builder.push(sr.cost_of(pi)?).map_err(Error::Storage)?;
        }
        columns.push(cost_builder.finish());
        if sr.want_path {
            let mut path_builder = ColumnBuilder::new(DataType::Path);
            for &pi in kept_pairs {
                path_builder.push(sr.path_of(pi, edges)?).map_err(Error::Storage)?;
            }
            columns.push(path_builder.finish());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, Schema};

    fn edge_table() -> Arc<Table> {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("src", DataType::Int),
            ColumnDef::new("dst", DataType::Int),
            ColumnDef::new("w", DataType::Int),
        ]));
        // 10 -> 20 -> 30, plus 10 -> 30 expensive direct edge
        for (s, d, w) in [(10, 20, 1), (20, 30, 1), (10, 30, 5)] {
            t.append_row(vec![Value::Int(s), Value::Int(d), Value::Int(w)]).unwrap();
        }
        t.append_row(vec![Value::Null, Value::Int(99), Value::Int(1)]).unwrap(); // NULL endpoint: must be dropped
        Arc::new(t)
    }

    #[test]
    fn build_graph_maps_values_and_drops_null_edges() {
        let g = build_graph(edge_table(), 0, 1).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3); // 10, 20, 30 (99 row dropped)
        assert!(g.lookup(&Value::Int(10)).is_some());
        assert!(g.lookup(&Value::Int(99)).is_none());
        assert!(g.lookup(&Value::Null).is_none());
        // Snapshot excludes the NULL row so row ids line up with the CSR.
        assert_eq!(g.edges.row_count(), 3);
    }

    #[test]
    fn dictionary_round_trips_through_csr() {
        let g = build_graph(edge_table(), 0, 1).unwrap();
        let s10 = g.lookup(&Value::Int(10)).unwrap();
        let s30 = g.lookup(&Value::Int(30)).unwrap();
        let computer = BatchComputer::new(&g.csr);
        let r = computer.shortest_path(s10, s30, &WeightSpec::Unweighted).unwrap();
        assert!(r.reachable);
        assert_eq!(r.cost.unwrap().as_f64(), 1.0); // direct hop 10->30
    }

    #[test]
    fn weighted_cheapest_avoids_expensive_edge() {
        let g = build_graph(edge_table(), 0, 1).unwrap();
        let s10 = g.lookup(&Value::Int(10)).unwrap();
        let s30 = g.lookup(&Value::Int(30)).unwrap();
        let weights: Vec<i64> = vec![1, 1, 5];
        let computer = BatchComputer::new(&g.csr);
        let r = computer.shortest_path(s10, s30, &WeightSpec::Int(weights)).unwrap();
        assert_eq!(r.cost.unwrap().as_f64(), 2.0); // via 20
        assert_eq!(r.path.unwrap(), vec![0, 1]); // snapshot row ids
    }
}
