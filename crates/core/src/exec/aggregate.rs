//! Hash aggregation.

use crate::error::{exec_err, Error};
use crate::exec::expression::eval;
use crate::plan::{AggCall, AggFunc, BoundExpr, PlanSchema};
use gsql_storage::value::HashableValue;
use gsql_storage::{Table, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// Running state of one aggregate within one group.
#[derive(Debug)]
enum AggState {
    Count(i64),
    SumInt(Option<i64>),
    SumDouble(Option<f64>),
    MinMax { current: Option<Value>, is_min: bool },
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        match call.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match call.out_ty {
                gsql_storage::DataType::Double => AggState::SumDouble(None),
                _ => AggState::SumInt(None),
            },
            AggFunc::Min => AggState::MinMax { current: None, is_min: true },
            AggFunc::Max => AggState::MinMax { current: None, is_min: false },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None (count every row); COUNT(x) counts
                // non-NULL values.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::SumInt(acc) => {
                if let Some(val) = v {
                    if let Some(x) = val.as_int() {
                        *acc = Some(
                            acc.unwrap_or(0)
                                .checked_add(x)
                                .ok_or_else(|| exec_err!("integer overflow in SUM"))?,
                        );
                    } else if !val.is_null() {
                        return Err(exec_err!("SUM over non-integer value {val}"));
                    }
                }
            }
            AggState::SumDouble(acc) => {
                if let Some(val) = v {
                    if let Some(x) = val.as_double() {
                        *acc = Some(acc.unwrap_or(0.0) + x);
                    } else if !val.is_null() {
                        return Err(exec_err!("SUM over non-numeric value {val}"));
                    }
                }
            }
            AggState::MinMax { current, is_min } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match current {
                            None => true,
                            Some(cur) => {
                                let cmp = val.total_cmp(cur);
                                if *is_min {
                                    cmp == std::cmp::Ordering::Less
                                } else {
                                    cmp == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if replace {
                            *current = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(x) = val.as_double() {
                        *sum += x;
                        *count += 1;
                    } else if !val.is_null() {
                        return Err(exec_err!("AVG over non-numeric value {val}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(acc) => acc.map(Value::Int).unwrap_or(Value::Null),
            AggState::SumDouble(acc) => acc.map(Value::Double).unwrap_or(Value::Null),
            AggState::MinMax { current, .. } => current.unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / count as f64)
                }
            }
        }
    }
}

/// One group's accumulators plus DISTINCT bookkeeping.
struct GroupState {
    keys: Vec<Value>,
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<HashableValue>>>,
}

/// Execute hash aggregation.
pub fn execute_aggregate(
    input: &Table,
    group: &[BoundExpr],
    aggs: &[AggCall],
    schema: &PlanSchema,
    params: &[Value],
) -> Result<Arc<Table>> {
    let mut groups: HashMap<Vec<HashableValue>, GroupState> = HashMap::new();
    let mut order: Vec<Vec<HashableValue>> = Vec::new(); // first-seen group order

    for row in 0..input.row_count() {
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(eval(g, input, row, params)?);
        }
        let key: Vec<HashableValue> = key_vals.iter().cloned().map(HashableValue).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            GroupState {
                keys: key_vals,
                states: aggs.iter().map(AggState::new).collect(),
                distinct_seen: aggs
                    .iter()
                    .map(|a| if a.distinct { Some(HashSet::new()) } else { None })
                    .collect(),
            }
        });
        for (i, call) in aggs.iter().enumerate() {
            let arg = match &call.arg {
                Some(e) => Some(eval(e, input, row, params)?),
                None => None,
            };
            if let (Some(seen), Some(v)) = (&mut entry.distinct_seen[i], &arg) {
                if v.is_null() || !seen.insert(HashableValue(v.clone())) {
                    continue; // duplicate (or NULL) under DISTINCT
                }
            }
            entry.states[i].update(arg.as_ref())?;
        }
    }

    // Global aggregation over an empty input still yields one row.
    if group.is_empty() && groups.is_empty() {
        let key: Vec<HashableValue> = Vec::new();
        order.push(key.clone());
        groups.insert(
            key,
            GroupState {
                keys: Vec::new(),
                states: aggs.iter().map(AggState::new).collect(),
                distinct_seen: vec![None; aggs.len()],
            },
        );
    }

    let mut out = Table::empty(schema.to_storage_schema());
    for key in order {
        let state = groups.remove(&key).expect("group recorded");
        let mut row = state.keys;
        for s in state.states {
            row.push(s.finish());
        }
        out.append_row(row).map_err(Error::Storage)?;
    }
    Ok(Arc::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanColumn;
    use gsql_storage::{ColumnDef, DataType, Schema};

    fn input() -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("g", DataType::Varchar),
            ColumnDef::new("x", DataType::Int),
        ]));
        for (g, x) in [("a", 1), ("b", 10), ("a", 2), ("b", 20), ("a", 2)] {
            t.append_row(vec![Value::from(g), Value::Int(x)]).unwrap();
        }
        // A row with NULLs in both columns.
        t.append_row(vec![Value::Null, Value::Null]).unwrap();
        t
    }

    fn col(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column { index: i, ty }
    }

    fn run(group: &[BoundExpr], aggs: &[AggCall], names: &[(&str, DataType)]) -> Table {
        let t = input();
        let mut schema = PlanSchema::default();
        for (n, ty) in names {
            schema.push(PlanColumn::new(*n, *ty));
        }
        Arc::try_unwrap(execute_aggregate(&t, group, aggs, &schema, &[]).unwrap()).unwrap()
    }

    #[test]
    fn grouped_count_and_sum() {
        let out = run(
            &[col(0, DataType::Varchar)],
            &[
                AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
            ],
            &[("g", DataType::Varchar), ("n", DataType::Int), ("s", DataType::Int)],
        );
        assert_eq!(out.row_count(), 3); // a, b, NULL group
                                        // First-seen order: a, b, NULL.
        assert_eq!(out.row(0), vec![Value::from("a"), Value::Int(3), Value::Int(5)]);
        assert_eq!(out.row(1), vec![Value::from("b"), Value::Int(2), Value::Int(30)]);
        assert!(out.row(2)[0].is_null());
        assert_eq!(out.row(2)[1], Value::Int(1)); // COUNT(*) counts the row
        assert!(out.row(2)[2].is_null()); // SUM of no non-null values
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let t = Table::empty(Schema::new(vec![ColumnDef::new("x", DataType::Int)]));
        let mut schema = PlanSchema::default();
        schema.push(PlanColumn::new("n", DataType::Int));
        schema.push(PlanColumn::new("m", DataType::Int));
        let aggs = [
            AggCall { func: AggFunc::CountStar, arg: None, distinct: false, out_ty: DataType::Int },
            AggCall {
                func: AggFunc::Max,
                arg: Some(col(0, DataType::Int)),
                distinct: false,
                out_ty: DataType::Int,
            },
        ];
        let out = execute_aggregate(&t, &[], &aggs, &schema, &[]).unwrap();
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn min_max_avg() {
        let out = run(
            &[],
            &[
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Double,
                },
            ],
            &[("mn", DataType::Int), ("mx", DataType::Int), ("av", DataType::Double)],
        );
        assert_eq!(out.row(0)[0], Value::Int(1));
        assert_eq!(out.row(0)[1], Value::Int(20));
        assert_eq!(out.row(0)[2], Value::Double(7.0)); // (1+10+2+20+2)/5
    }

    #[test]
    fn count_distinct() {
        let out = run(
            &[],
            &[AggCall {
                func: AggFunc::Count,
                arg: Some(col(1, DataType::Int)),
                distinct: true,
                out_ty: DataType::Int,
            }],
            &[("n", DataType::Int)],
        );
        assert_eq!(out.row(0)[0], Value::Int(4)); // {1, 2, 10, 20}
    }
}
