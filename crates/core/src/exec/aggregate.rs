//! Hash aggregation, sequential and hash-partitioned parallel.
//!
//! With `threads > 1` and enough rows, grouped aggregation partitions the
//! input by a deterministic hash of the group key (the same fixed-key
//! `DefaultHasher` digest the distinct operator uses): every row of a
//! group lands in exactly one partition, partitions aggregate
//! independently on the `gsql-parallel` pool, and the per-partition group
//! lists merge by first-seen row order. Rows inside a partition are
//! processed in ascending input order, so every accumulator — including
//! float sums, whose value depends on addition order — sees exactly the
//! row sequence the sequential scan would feed it: the output is
//! bit-identical at every thread count. Errors are sequential-identical
//! too: the parallel phases evaluate keys and arguments in a different
//! interleaving, so on any failure the input is re-aggregated
//! sequentially and that error is the one surfaced.

use crate::error::{exec_err, Error};
use crate::exec::expression::eval;
use crate::plan::{AggCall, AggFunc, BoundExpr, PlanSchema};
use gsql_parallel::Pool;
use gsql_storage::value::HashableValue;
use gsql_storage::{Table, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// Minimum rows before grouped aggregation fans out over the pool (below
/// this, the hash pass costs more than the parallelism wins back).
const PARALLEL_MIN_ROWS: usize = 512;

/// Running state of one aggregate within one group.
#[derive(Debug)]
enum AggState {
    Count(i64),
    SumInt(Option<i64>),
    SumDouble(Option<f64>),
    MinMax { current: Option<Value>, is_min: bool },
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        match call.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match call.out_ty {
                gsql_storage::DataType::Double => AggState::SumDouble(None),
                _ => AggState::SumInt(None),
            },
            AggFunc::Min => AggState::MinMax { current: None, is_min: true },
            AggFunc::Max => AggState::MinMax { current: None, is_min: false },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None (count every row); COUNT(x) counts
                // non-NULL values.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::SumInt(acc) => {
                if let Some(val) = v {
                    if let Some(x) = val.as_int() {
                        *acc = Some(
                            acc.unwrap_or(0)
                                .checked_add(x)
                                .ok_or_else(|| exec_err!("integer overflow in SUM"))?,
                        );
                    } else if !val.is_null() {
                        return Err(exec_err!("SUM over non-integer value {val}"));
                    }
                }
            }
            AggState::SumDouble(acc) => {
                if let Some(val) = v {
                    if let Some(x) = val.as_double() {
                        *acc = Some(acc.unwrap_or(0.0) + x);
                    } else if !val.is_null() {
                        return Err(exec_err!("SUM over non-numeric value {val}"));
                    }
                }
            }
            AggState::MinMax { current, is_min } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match current {
                            None => true,
                            Some(cur) => {
                                let cmp = val.total_cmp(cur);
                                if *is_min {
                                    cmp == std::cmp::Ordering::Less
                                } else {
                                    cmp == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if replace {
                            *current = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(x) = val.as_double() {
                        *sum += x;
                        *count += 1;
                    } else if !val.is_null() {
                        return Err(exec_err!("AVG over non-numeric value {val}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(acc) => acc.map(Value::Int).unwrap_or(Value::Null),
            AggState::SumDouble(acc) => acc.map(Value::Double).unwrap_or(Value::Null),
            AggState::MinMax { current, .. } => current.unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / count as f64)
                }
            }
        }
    }

    /// Fold another partial of the **same aggregate** into this one. The
    /// pipeline merge calls this in morsel-index order, so float results
    /// depend only on the morsel boundaries (fixed by input size and
    /// `morsel_rows`), never on the thread count.
    fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a), AggState::SumInt(b)) => {
                if let Some(y) = b {
                    *a = Some(
                        a.unwrap_or(0)
                            .checked_add(y)
                            .ok_or_else(|| exec_err!("integer overflow in SUM"))?,
                    );
                }
            }
            (AggState::SumDouble(a), AggState::SumDouble(b)) => {
                if let Some(y) = b {
                    *a = Some(a.unwrap_or(0.0) + y);
                }
            }
            (AggState::MinMax { current, is_min }, AggState::MinMax { current: other, .. }) => {
                if let Some(v) = other {
                    let replace = match current {
                        None => true,
                        Some(cur) => {
                            let cmp = v.total_cmp(cur);
                            if *is_min {
                                cmp == std::cmp::Ordering::Less
                            } else {
                                cmp == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *current = Some(v);
                    }
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            _ => return Err(exec_err!("mismatched aggregate states in merge")),
        }
        Ok(())
    }
}

/// One group's accumulators plus DISTINCT bookkeeping.
struct GroupState {
    /// First input row that opened the group (global first-seen order).
    first_row: usize,
    keys: Vec<Value>,
    states: Vec<AggState>,
    distinct_seen: Vec<Option<HashSet<HashableValue>>>,
}

/// Aggregate a subset of rows (ascending order), returning the groups in
/// first-seen order. This is the whole input for the sequential path and
/// one hash partition for the parallel path — the row subset fully
/// determines the result, so both paths share it.
fn aggregate_rows(
    input: &Table,
    rows: impl Iterator<Item = usize>,
    group: &[BoundExpr],
    aggs: &[AggCall],
    params: &[Value],
) -> Result<Vec<GroupState>> {
    let mut index: HashMap<Vec<HashableValue>, usize> = HashMap::new();
    let mut groups: Vec<GroupState> = Vec::new();
    for row in rows {
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(eval(g, input, row, params)?);
        }
        let key: Vec<HashableValue> = key_vals.iter().cloned().map(HashableValue).collect();
        let slot = *index.entry(key).or_insert_with(|| {
            groups.push(GroupState {
                first_row: row,
                keys: key_vals,
                states: aggs.iter().map(AggState::new).collect(),
                distinct_seen: aggs
                    .iter()
                    .map(|a| if a.distinct { Some(HashSet::new()) } else { None })
                    .collect(),
            });
            groups.len() - 1
        });
        let entry = &mut groups[slot];
        for (i, call) in aggs.iter().enumerate() {
            let arg = match &call.arg {
                Some(e) => Some(eval(e, input, row, params)?),
                None => None,
            };
            if let (Some(seen), Some(v)) = (&mut entry.distinct_seen[i], &arg) {
                if v.is_null() || !seen.insert(HashableValue(v.clone())) {
                    continue; // duplicate (or NULL) under DISTINCT
                }
            }
            entry.states[i].update(arg.as_ref())?;
        }
    }
    Ok(groups)
}

/// One group's **morsel-local** partial: accumulators fed only this
/// morsel's rows (ascending row order), plus — for DISTINCT aggregates —
/// the insertion-ordered distinct values seen in this morsel. DISTINCT
/// state updates are deferred entirely to the merge, which dedups across
/// morsels; merging two partials that each saw the same value must not
/// count it twice.
struct PartialGroup {
    keys: Vec<Value>,
    states: Vec<AggState>,
    distinct_vals: Vec<Option<Vec<Value>>>,
}

/// The aggregate partial of one morsel: its groups in first-seen order.
pub(crate) struct AggPartial {
    groups: Vec<PartialGroup>,
}

/// Aggregate one morsel's rows (ascending) into a mergeable partial.
pub(crate) fn aggregate_morsel(
    input: &Table,
    rows: impl Iterator<Item = usize>,
    group: &[BoundExpr],
    aggs: &[AggCall],
    params: &[Value],
) -> Result<AggPartial> {
    let mut index: HashMap<Vec<HashableValue>, usize> = HashMap::new();
    let mut groups: Vec<PartialGroup> = Vec::new();
    // Morsel-local dedup for DISTINCT aggregates (merge dedups across
    // morsels; this just keeps the per-morsel value lists small).
    let mut local_seen: Vec<Vec<Option<HashSet<HashableValue>>>> = Vec::new();
    for row in rows {
        let mut key_vals = Vec::with_capacity(group.len());
        for g in group {
            key_vals.push(eval(g, input, row, params)?);
        }
        let key: Vec<HashableValue> = key_vals.iter().cloned().map(HashableValue).collect();
        let slot = *index.entry(key).or_insert_with(|| {
            groups.push(PartialGroup {
                keys: key_vals,
                states: aggs.iter().map(AggState::new).collect(),
                distinct_vals: aggs
                    .iter()
                    .map(|a| if a.distinct { Some(Vec::new()) } else { None })
                    .collect(),
            });
            local_seen.push(
                aggs.iter().map(|a| if a.distinct { Some(HashSet::new()) } else { None }).collect(),
            );
            groups.len() - 1
        });
        let entry = &mut groups[slot];
        for (i, call) in aggs.iter().enumerate() {
            let arg = match &call.arg {
                Some(e) => Some(eval(e, input, row, params)?),
                None => None,
            };
            if let (Some(vals), Some(v)) = (&mut entry.distinct_vals[i], &arg) {
                let seen = local_seen[slot][i].as_mut().expect("distinct set");
                if !v.is_null() && seen.insert(HashableValue(v.clone())) {
                    vals.push(v.clone());
                }
                continue; // state update deferred to the merge
            }
            entry.states[i].update(arg.as_ref())?;
        }
    }
    Ok(AggPartial { groups })
}

/// Sequential merger of morsel [`AggPartial`]s, consumed strictly in
/// morsel-index order. Group output order is global first-seen order —
/// identical to a sequential scan, because morsels are in row order and
/// each partial's groups are in first-seen order within its morsel.
pub(crate) struct AggMerger<'a> {
    aggs: &'a [AggCall],
    index: HashMap<Vec<HashableValue>, usize>,
    groups: Vec<GroupState>,
}

impl<'a> AggMerger<'a> {
    pub fn new(aggs: &'a [AggCall]) -> AggMerger<'a> {
        AggMerger { aggs, index: HashMap::new(), groups: Vec::new() }
    }

    /// Fold the next morsel's partial into the global state.
    pub fn push(&mut self, partial: AggPartial) -> Result<()> {
        for pg in partial.groups {
            let key: Vec<HashableValue> = pg.keys.iter().cloned().map(HashableValue).collect();
            let PartialGroup { keys, states, distinct_vals } = pg;
            let slot = match self.index.get(&key) {
                Some(&slot) => slot,
                None => {
                    self.groups.push(GroupState {
                        first_row: self.groups.len(),
                        keys,
                        states: self.aggs.iter().map(AggState::new).collect(),
                        distinct_seen: self
                            .aggs
                            .iter()
                            .map(|a| if a.distinct { Some(HashSet::new()) } else { None })
                            .collect(),
                    });
                    self.index.insert(key, self.groups.len() - 1);
                    self.groups.len() - 1
                }
            };
            let entry = &mut self.groups[slot];
            for (i, state) in states.into_iter().enumerate() {
                if entry.distinct_seen[i].is_none() {
                    entry.states[i].merge(state)?;
                }
            }
            for (i, vals) in distinct_vals.into_iter().enumerate() {
                let Some(vals) = vals else { continue };
                let seen = entry.distinct_seen[i].as_mut().expect("distinct set");
                for v in vals {
                    if seen.insert(HashableValue(v.clone())) {
                        entry.states[i].update(Some(&v))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Finish into the output table (same tail as [`execute_aggregate`],
    /// including the one-row result of a global aggregate over no input).
    pub fn finish(self, group_empty: bool, schema: &PlanSchema) -> Result<Arc<Table>> {
        let mut groups = self.groups;
        if group_empty && groups.is_empty() {
            groups.push(GroupState {
                first_row: 0,
                keys: Vec::new(),
                states: self.aggs.iter().map(AggState::new).collect(),
                distinct_seen: vec![None; self.aggs.len()],
            });
        }
        let mut out = Table::empty(schema.to_storage_schema());
        for state in groups {
            let mut row = state.keys;
            for s in state.states {
                row.push(s.finish());
            }
            out.append_row(row).map_err(Error::Storage)?;
        }
        Ok(Arc::new(out))
    }
}

/// Deterministic digest of one row's group key (fixed-key [`DefaultHasher`]
/// over the [`HashableValue`] cells — the same scheme the distinct
/// operator's row hash uses), so the parallel partitioning is identical on
/// every run and thread count.
fn group_key_hash(input: &Table, row: usize, group: &[BoundExpr], params: &[Value]) -> Result<u64> {
    let mut h = DefaultHasher::new();
    for g in group {
        HashableValue(eval(g, input, row, params)?).hash(&mut h);
    }
    Ok(h.finish())
}

/// The hash-partitioned parallel path for grouped aggregation: groups in
/// global first-seen order, or `None` when any evaluation failed (the
/// caller re-runs sequentially to surface the sequential error).
fn parallel_grouped(
    input: &Table,
    n: usize,
    group: &[BoundExpr],
    aggs: &[AggCall],
    params: &[Value],
    pool: &Pool,
) -> Option<Vec<GroupState>> {
    // Phase 1 (parallel): digest every row's group key, chunk-wise.
    let digests: Vec<Result<Vec<u64>>> = pool.map_chunks(n, |range| {
        range.map(|row| group_key_hash(input, row, group, params)).collect()
    });
    let mut hashes: Vec<u64> = Vec::with_capacity(n);
    for chunk in digests {
        hashes.extend(chunk.ok()?);
    }
    // Phase 2 (sequential, cheap): route rows to partitions. Same key
    // ⇒ same digest ⇒ same partition, so no group spans partitions.
    let parts = pool.threads();
    let mut rows_by_part: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (row, &digest) in hashes.iter().enumerate() {
        rows_by_part[(digest % parts as u64) as usize].push(row);
    }
    // Phase 3 (parallel): aggregate each partition independently.
    let partials: Vec<Result<Vec<GroupState>>> = pool.map(parts, |p| {
        aggregate_rows(input, rows_by_part[p].iter().copied(), group, aggs, params)
    });
    // Phase 4: merge the partial states into global first-seen order.
    let mut groups: Vec<GroupState> = Vec::new();
    for part in partials {
        groups.extend(part.ok()?);
    }
    groups.sort_by_key(|g| g.first_row);
    Some(groups)
}

/// Execute hash aggregation; `threads > 1` enables the hash-partitioned
/// parallel path for grouped aggregation over large inputs (bit-identical
/// to sequential — see the module docs).
pub fn execute_aggregate(
    input: &Table,
    group: &[BoundExpr],
    aggs: &[AggCall],
    schema: &PlanSchema,
    params: &[Value],
    threads: usize,
) -> Result<Arc<Table>> {
    let n = input.row_count();
    let pool = Pool::new(threads);
    let parallel = if !pool.is_sequential() && !group.is_empty() && n >= PARALLEL_MIN_ROWS {
        parallel_grouped(input, n, group, aggs, params, &pool)
    } else {
        None
    };
    let mut groups = match parallel {
        Some(groups) => groups,
        // Either the input is small/sequential, or the parallel path hit an
        // evaluation error: re-run sequentially so the surfaced error is
        // exactly the one the sequential scan reports (the parallel phases
        // evaluate keys and arguments in a different interleaving, so their
        // first error may come from a later row).
        None => aggregate_rows(input, 0..n, group, aggs, params)?,
    };

    // Global aggregation over an empty input still yields one row.
    if group.is_empty() && groups.is_empty() {
        groups.push(GroupState {
            first_row: 0,
            keys: Vec::new(),
            states: aggs.iter().map(AggState::new).collect(),
            distinct_seen: vec![None; aggs.len()],
        });
    }

    let mut out = Table::empty(schema.to_storage_schema());
    for state in groups {
        let mut row = state.keys;
        for s in state.states {
            row.push(s.finish());
        }
        out.append_row(row).map_err(Error::Storage)?;
    }
    Ok(Arc::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanColumn;
    use gsql_storage::{ColumnDef, DataType, Schema};

    fn input() -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("g", DataType::Varchar),
            ColumnDef::new("x", DataType::Int),
        ]));
        for (g, x) in [("a", 1), ("b", 10), ("a", 2), ("b", 20), ("a", 2)] {
            t.append_row(vec![Value::from(g), Value::Int(x)]).unwrap();
        }
        // A row with NULLs in both columns.
        t.append_row(vec![Value::Null, Value::Null]).unwrap();
        t
    }

    fn col(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column { index: i, ty }
    }

    fn run(group: &[BoundExpr], aggs: &[AggCall], names: &[(&str, DataType)]) -> Table {
        let t = input();
        let mut schema = PlanSchema::default();
        for (n, ty) in names {
            schema.push(PlanColumn::new(*n, *ty));
        }
        Arc::try_unwrap(execute_aggregate(&t, group, aggs, &schema, &[], 1).unwrap()).unwrap()
    }

    #[test]
    fn grouped_count_and_sum() {
        let out = run(
            &[col(0, DataType::Varchar)],
            &[
                AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
            ],
            &[("g", DataType::Varchar), ("n", DataType::Int), ("s", DataType::Int)],
        );
        assert_eq!(out.row_count(), 3); // a, b, NULL group
                                        // First-seen order: a, b, NULL.
        assert_eq!(out.row(0), vec![Value::from("a"), Value::Int(3), Value::Int(5)]);
        assert_eq!(out.row(1), vec![Value::from("b"), Value::Int(2), Value::Int(30)]);
        assert!(out.row(2)[0].is_null());
        assert_eq!(out.row(2)[1], Value::Int(1)); // COUNT(*) counts the row
        assert!(out.row(2)[2].is_null()); // SUM of no non-null values
    }

    #[test]
    fn parallel_error_is_the_sequential_error() {
        // SUM over a VARCHAR column fails on every row with a message
        // naming the row's value; the parallel path must surface exactly
        // the error the sequential scan reports (the first row's), not
        // whichever partition errors first.
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("x", DataType::Varchar),
        ]));
        for i in 0..2000usize {
            t.append_row(vec![Value::Int((i % 17) as i64), Value::from(format!("s{i}"))]).unwrap();
        }
        let group = [col(0, DataType::Int)];
        let aggs = [AggCall {
            func: AggFunc::Sum,
            arg: Some(col(1, DataType::Varchar)),
            distinct: false,
            out_ty: DataType::Int,
        }];
        let mut schema = PlanSchema::default();
        schema.push(PlanColumn::new("g", DataType::Int));
        schema.push(PlanColumn::new("s", DataType::Int));
        let seq = execute_aggregate(&t, &group, &aggs, &schema, &[], 1).unwrap_err();
        assert!(seq.to_string().contains("s0"), "{seq}");
        for threads in [2, 8] {
            let par = execute_aggregate(&t, &group, &aggs, &schema, &[], threads).unwrap_err();
            assert_eq!(par.to_string(), seq.to_string(), "threads {threads}");
        }
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let t = Table::empty(Schema::new(vec![ColumnDef::new("x", DataType::Int)]));
        let mut schema = PlanSchema::default();
        schema.push(PlanColumn::new("n", DataType::Int));
        schema.push(PlanColumn::new("m", DataType::Int));
        let aggs = [
            AggCall { func: AggFunc::CountStar, arg: None, distinct: false, out_ty: DataType::Int },
            AggCall {
                func: AggFunc::Max,
                arg: Some(col(0, DataType::Int)),
                distinct: false,
                out_ty: DataType::Int,
            },
        ];
        let out = execute_aggregate(&t, &[], &aggs, &schema, &[], 4).unwrap();
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
        assert!(out.row(0)[1].is_null());
    }

    #[test]
    fn min_max_avg() {
        let out = run(
            &[],
            &[
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Int,
                },
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(col(1, DataType::Int)),
                    distinct: false,
                    out_ty: DataType::Double,
                },
            ],
            &[("mn", DataType::Int), ("mx", DataType::Int), ("av", DataType::Double)],
        );
        assert_eq!(out.row(0)[0], Value::Int(1));
        assert_eq!(out.row(0)[1], Value::Int(20));
        assert_eq!(out.row(0)[2], Value::Double(7.0)); // (1+10+2+20+2)/5
    }

    #[test]
    fn parallel_grouped_aggregation_matches_sequential() {
        // Enough rows to cross PARALLEL_MIN_ROWS, NULL keys, float AVG
        // (addition-order sensitive) and DISTINCT state all included.
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("x", DataType::Double),
        ]));
        for i in 0..4000usize {
            let g = if i % 97 == 0 { Value::Null } else { Value::Int((i % 23) as i64) };
            t.append_row(vec![g, Value::Double((i as f64) * 0.31 - 500.0)]).unwrap();
        }
        let group = [col(0, DataType::Int)];
        let aggs = [
            AggCall { func: AggFunc::CountStar, arg: None, distinct: false, out_ty: DataType::Int },
            AggCall {
                func: AggFunc::Sum,
                arg: Some(col(1, DataType::Double)),
                distinct: false,
                out_ty: DataType::Double,
            },
            AggCall {
                func: AggFunc::Avg,
                arg: Some(col(1, DataType::Double)),
                distinct: false,
                out_ty: DataType::Double,
            },
            AggCall {
                func: AggFunc::Count,
                arg: Some(col(1, DataType::Double)),
                distinct: true,
                out_ty: DataType::Int,
            },
        ];
        let mut schema = PlanSchema::default();
        for (n, ty) in [
            ("g", DataType::Int),
            ("n", DataType::Int),
            ("s", DataType::Double),
            ("a", DataType::Double),
            ("d", DataType::Int),
        ] {
            schema.push(PlanColumn::new(n, ty));
        }
        let seq = execute_aggregate(&t, &group, &aggs, &schema, &[], 1).unwrap();
        for threads in [2, 3, 8] {
            let par = execute_aggregate(&t, &group, &aggs, &schema, &[], threads).unwrap();
            assert_eq!(par.row_count(), seq.row_count(), "threads {threads}");
            for r in 0..seq.row_count() {
                assert_eq!(par.row(r), seq.row(r), "threads {threads} row {r}");
            }
        }
    }

    #[test]
    fn count_distinct() {
        let out = run(
            &[],
            &[AggCall {
                func: AggFunc::Count,
                arg: Some(col(1, DataType::Int)),
                distinct: true,
                out_ty: DataType::Int,
            }],
            &[("n", DataType::Int)],
        );
        assert_eq!(out.row(0)[0], Value::Int(4)); // {1, 2, 10, 20}
    }
}
