//! Join execution: hash join for equi-conditions, nested loop otherwise.
//!
//! The hash join parallelizes over row partitions: build-side keys are
//! evaluated chunk-parallel before the (cheap, sequential) table insert,
//! and the probe side is partitioned into contiguous left-row chunks whose
//! match lists concatenate in chunk order — the output pair list is
//! identical to a sequential probe.

use crate::error::{exec_err, Error};
use crate::exec::expression::{eval, eval_row, PairRow};
use crate::plan::{BinaryOp, BoundExpr, JoinKind, PlanSchema};
use gsql_parallel::Pool;
use gsql_storage::value::HashableValue;
use gsql_storage::{Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// Execute a join between two materialized inputs over `threads` workers
/// (`1` = sequential).
pub fn execute_join(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    schema: &PlanSchema,
    params: &[Value],
    threads: usize,
) -> Result<Arc<Table>> {
    let n_left = left.schema().len();
    let mut pairs: Vec<(usize, Option<usize>)> = Vec::new();

    match on {
        None => {
            // Cross product.
            if kind != JoinKind::Cross {
                return Err(exec_err!("non-cross join without a condition"));
            }
            for i in 0..left.row_count() {
                for j in 0..right.row_count() {
                    pairs.push((i, Some(j)));
                }
            }
        }
        Some(cond) => {
            let (equi, residual) = split_equi_keys(cond, n_left);
            let pool = Pool::new(threads);
            if equi.is_empty() {
                nested_loop(left, right, kind, cond, n_left, params, &pool, &mut pairs)?;
            } else {
                hash_join(
                    left,
                    right,
                    kind,
                    &equi,
                    residual.as_ref(),
                    n_left,
                    params,
                    &pool,
                    &mut pairs,
                )?;
            }
        }
    }

    materialize_pairs(left, right, &pairs, schema).map(Arc::new)
}

/// The probe-side half of an equi join, prepared once and probed many times
/// — the pipeline engine builds this as a **breaker** (the build side is
/// fully executed and hashed before the probe pipeline starts) and then
/// probes it morsel by morsel with per-worker pair lists.
pub(crate) struct JoinProbe {
    /// The materialized build (right) side.
    pub right: Arc<Table>,
    kind: JoinKind,
    /// Equi-key expression pairs; empty means nested-loop probing on
    /// `residual` alone.
    equi: Vec<(BoundExpr, BoundExpr)>,
    /// Residual predicate over the joined pair row (the full condition for
    /// nested-loop probes).
    residual: Option<BoundExpr>,
    /// Hash table from equi key to build-side rows, in ascending row order.
    ht: HashMap<Vec<HashableValue>, Vec<usize>>,
}

impl JoinProbe {
    /// Build the hash table over `right` (key evaluation chunk-parallel,
    /// insertion sequential in row order — identical candidate ordering to
    /// a sequential build).
    pub fn build(
        right: Arc<Table>,
        kind: JoinKind,
        on: &BoundExpr,
        n_left: usize,
        params: &[Value],
        pool: &Pool,
    ) -> Result<JoinProbe> {
        let (equi, residual) = split_equi_keys(on, n_left);
        let mut ht: HashMap<Vec<HashableValue>, Vec<usize>> = HashMap::new();
        if !equi.is_empty() {
            let build_keys: Vec<Option<Vec<HashableValue>>> = pool
                .try_map_chunks(
                    right.row_count(),
                    |range| -> Result<Vec<Option<Vec<HashableValue>>>> {
                        range.map(|j| key_of(&equi, true, &right, j, params)).collect()
                    },
                )?
                .into_iter()
                .flatten()
                .collect();
            for (j, key) in build_keys.into_iter().enumerate() {
                if let Some(key) = key {
                    ht.entry(key).or_default().push(j);
                }
            }
        }
        Ok(JoinProbe { right, kind, equi, residual, ht })
    }

    /// Probe one batch of left rows (ascending), appending `(left_row,
    /// right_row)` pairs in exactly the order a sequential probe of those
    /// rows would emit them.
    pub fn probe_rows(
        &self,
        left: &Table,
        rows: impl Iterator<Item = usize>,
        n_left: usize,
        params: &[Value],
        pairs: &mut Vec<(usize, Option<usize>)>,
    ) -> Result<()> {
        for i in rows {
            let mut matched = false;
            if self.equi.is_empty() {
                // Nested-loop probe on the full condition.
                let cond = self.residual.as_ref().expect("nested-loop probe has a condition");
                for j in 0..self.right.row_count() {
                    let ctx = PairRow {
                        left,
                        left_row: i,
                        right: &self.right,
                        right_row: Some(j),
                        n_left,
                    };
                    if eval_row(cond, &ctx, params)? == Value::Bool(true) {
                        matched = true;
                        pairs.push((i, Some(j)));
                    }
                }
            } else if let Some(key) = key_of(&self.equi, false, left, i, params)? {
                if let Some(candidates) = self.ht.get(key.as_slice()) {
                    for &j in candidates {
                        let ok = match &self.residual {
                            None => true,
                            Some(res) => {
                                let ctx = PairRow {
                                    left,
                                    left_row: i,
                                    right: &self.right,
                                    right_row: Some(j),
                                    n_left,
                                };
                                eval_row(res, &ctx, params)? == Value::Bool(true)
                            }
                        };
                        if ok {
                            matched = true;
                            pairs.push((i, Some(j)));
                        }
                    }
                }
            }
            if !matched && self.kind == JoinKind::LeftOuter {
                pairs.push((i, None));
            }
        }
        Ok(())
    }
}

/// Decompose `cond` into equi-key pairs `(left_expr, right_expr)` — where
/// one side references only left columns and the other only right columns —
/// plus a residual predicate of the remaining conjuncts.
fn split_equi_keys(
    cond: &BoundExpr,
    n_left: usize,
) -> (Vec<(BoundExpr, BoundExpr)>, Option<BoundExpr>) {
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Option<BoundExpr> = None;
    for c in conjuncts {
        if let BoundExpr::Binary { left, op: BinaryOp::Eq, right } = &c {
            let l_side = side_of(left, n_left);
            let r_side = side_of(right, n_left);
            match (l_side, r_side) {
                (Side::Left, Side::Right) => {
                    // Rebase the right expression onto right-table ordinals.
                    equi.push(((**left).clone(), rebase(right, n_left)));
                    continue;
                }
                (Side::Right, Side::Left) => {
                    equi.push(((**right).clone(), rebase(left, n_left)));
                    continue;
                }
                _ => {}
            }
        }
        residual = Some(match residual {
            None => c,
            Some(r) => {
                BoundExpr::Binary { left: Box::new(r), op: BinaryOp::And, right: Box::new(c) }
            }
        });
    }
    (equi, residual)
}

#[derive(PartialEq, Clone, Copy)]
enum Side {
    Left,
    Right,
    Both,
    Neither,
}

fn side_of(e: &BoundExpr, n_left: usize) -> Side {
    let cols = e.referenced_columns();
    let has_left = cols.iter().any(|&c| c < n_left);
    let has_right = cols.iter().any(|&c| c >= n_left);
    match (has_left, has_right) {
        (true, true) => Side::Both,
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        (false, false) => Side::Neither,
    }
}

fn rebase(e: &BoundExpr, n_left: usize) -> BoundExpr {
    e.remap_columns(&|i| i - n_left)
}

fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary { left, op: BinaryOp::And, right } = e {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Evaluate one side's equi-key row: `None` when any key cell is NULL
/// (NULL keys never match).
fn key_of(
    keys: &[(BoundExpr, BoundExpr)],
    pick_right: bool,
    table: &Table,
    row: usize,
    params: &[Value],
) -> Result<Option<Vec<HashableValue>>> {
    let mut key = Vec::with_capacity(keys.len());
    for (lk, rk) in keys {
        let v = eval(if pick_right { rk } else { lk }, table, row, params)?;
        if v.is_null() {
            return Ok(None);
        }
        key.push(HashableValue(v));
    }
    Ok(Some(key))
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    equi: &[(BoundExpr, BoundExpr)],
    residual: Option<&BoundExpr>,
    n_left: usize,
    params: &[Value],
    pool: &Pool,
    pairs: &mut Vec<(usize, Option<usize>)>,
) -> Result<()> {
    // Build phase: key evaluation — the expression-heavy part — runs
    // chunk-parallel; the table insert stays sequential in row order, so
    // every candidate list is ordered by right row exactly as a sequential
    // build would produce.
    let build_keys: Vec<Option<Vec<HashableValue>>> = pool
        .try_map_chunks(right.row_count(), |range| -> Result<Vec<Option<Vec<HashableValue>>>> {
            range.map(|j| key_of(equi, true, right, j, params)).collect()
        })?
        .into_iter()
        .flatten()
        .collect();
    let mut ht: HashMap<&[HashableValue], Vec<usize>> = HashMap::new();
    for (j, key) in build_keys.iter().enumerate() {
        if let Some(key) = key {
            ht.entry(key.as_slice()).or_default().push(j);
        }
    }

    // Probe phase: contiguous left-row partitions, each emitting its own
    // ordered pair list; concatenation in partition order reproduces the
    // sequential probe output.
    let partitions =
        pool.try_map_chunks(left.row_count(), |range| -> Result<Vec<(usize, Option<usize>)>> {
            let mut local = Vec::new();
            for i in range {
                let mut matched = false;
                if let Some(key) = key_of(equi, false, left, i, params)? {
                    if let Some(candidates) = ht.get(key.as_slice()) {
                        for &j in candidates {
                            let ok = match residual {
                                None => true,
                                Some(res) => {
                                    let ctx = PairRow {
                                        left,
                                        left_row: i,
                                        right,
                                        right_row: Some(j),
                                        n_left,
                                    };
                                    eval_row(res, &ctx, params)? == Value::Bool(true)
                                }
                            };
                            if ok {
                                matched = true;
                                local.push((i, Some(j)));
                            }
                        }
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    local.push((i, None));
                }
            }
            Ok(local)
        })?;
    pairs.extend(partitions.into_iter().flatten());
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn nested_loop(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    cond: &BoundExpr,
    n_left: usize,
    params: &[Value],
    pool: &Pool,
    pairs: &mut Vec<(usize, Option<usize>)>,
) -> Result<()> {
    // Parallel over left-row partitions; right side scanned per row as in
    // the sequential loop, output concatenated in partition order.
    let partitions =
        pool.try_map_chunks(left.row_count(), |range| -> Result<Vec<(usize, Option<usize>)>> {
            let mut local = Vec::new();
            for i in range {
                let mut matched = false;
                for j in 0..right.row_count() {
                    let ctx = PairRow { left, left_row: i, right, right_row: Some(j), n_left };
                    if eval_row(cond, &ctx, params)? == Value::Bool(true) {
                        matched = true;
                        local.push((i, Some(j)));
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    local.push((i, None));
                }
            }
            Ok(local)
        })?;
    pairs.extend(partitions.into_iter().flatten());
    Ok(())
}

/// Materialize the joined pairs into an output table.
pub(crate) fn materialize_pairs(
    left: &Table,
    right: &Table,
    pairs: &[(usize, Option<usize>)],
    schema: &PlanSchema,
) -> Result<Table> {
    let left_idx: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
    let mut columns = Vec::with_capacity(schema.len());
    for c in left.columns() {
        columns.push(c.take(&left_idx));
    }
    // The right side may contain NULL extensions; gather cell-wise.
    let storage = schema.to_storage_schema();
    for (ci, def) in storage.columns().iter().enumerate().skip(left.schema().len()) {
        let rci = ci - left.schema().len();
        let mut b = gsql_storage::ColumnBuilder::new(def.ty);
        for &(_, j) in pairs {
            let v = match j {
                Some(j) => right.column(rci).get(j),
                None => Value::Null,
            };
            b.push(v).map_err(Error::Storage)?;
        }
        columns.push(b.finish());
    }
    // The plan schema may declare left columns nullable (outer-join shapes);
    // the storage schema of the output follows the plan.
    Table::from_columns(storage, columns).map_err(Error::Storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanColumn;
    use gsql_storage::{ColumnDef, DataType, Schema};

    fn table(name_prefix: &str, rows: &[(i64, &str)]) -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::not_null(format!("{name_prefix}_id"), DataType::Int),
            ColumnDef::new(format!("{name_prefix}_v"), DataType::Varchar),
        ]));
        for (id, v) in rows {
            t.append_row(vec![Value::Int(*id), Value::from(*v)]).unwrap();
        }
        t
    }

    fn out_schema(l: &Table, r: &Table) -> PlanSchema {
        let mut s = PlanSchema::default();
        for c in l.schema().columns().iter().chain(r.schema().columns()) {
            s.push(PlanColumn::new(c.name.clone(), c.ty));
        }
        s
    }

    fn eq_cond(li: usize, ri: usize) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::Column { index: li, ty: DataType::Int }),
            op: BinaryOp::Eq,
            right: Box::new(BoundExpr::Column { index: ri, ty: DataType::Int }),
        }
    }

    #[test]
    fn inner_hash_join_matches() {
        let l = table("l", &[(1, "a"), (2, "b"), (3, "c")]);
        let r = table("r", &[(2, "x"), (3, "y"), (3, "z"), (4, "w")]);
        let schema = out_schema(&l, &r);
        let out =
            execute_join(&l, &r, JoinKind::Inner, Some(&eq_cond(0, 2)), &schema, &[], 1).unwrap();
        assert_eq!(out.row_count(), 3); // 2-x, 3-y, 3-z
    }

    #[test]
    fn left_outer_join_null_extends() {
        let l = table("l", &[(1, "a"), (2, "b")]);
        let r = table("r", &[(2, "x")]);
        let mut schema = PlanSchema::default();
        for c in l.schema().columns() {
            schema.push(PlanColumn::new(c.name.clone(), c.ty));
        }
        for c in r.schema().columns() {
            let mut pc = PlanColumn::new(c.name.clone(), c.ty);
            pc.nullable = true;
            schema.push(pc);
        }
        let out = execute_join(&l, &r, JoinKind::LeftOuter, Some(&eq_cond(0, 2)), &schema, &[], 1)
            .unwrap();
        assert_eq!(out.row_count(), 2);
        // Row for id=1 has NULLs on the right.
        let row = out.row(0);
        assert_eq!(row[0], Value::Int(1));
        assert!(row[2].is_null());
        assert!(row[3].is_null());
    }

    #[test]
    fn cross_join_product() {
        let l = table("l", &[(1, "a"), (2, "b")]);
        let r = table("r", &[(10, "x"), (20, "y"), (30, "z")]);
        let schema = out_schema(&l, &r);
        let out = execute_join(&l, &r, JoinKind::Cross, None, &schema, &[], 1).unwrap();
        assert_eq!(out.row_count(), 6);
    }

    #[test]
    fn nested_loop_for_inequality() {
        let l = table("l", &[(1, "a"), (5, "b")]);
        let r = table("r", &[(2, "x"), (4, "y")]);
        let schema = out_schema(&l, &r);
        let cond = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column { index: 0, ty: DataType::Int }),
            op: BinaryOp::Lt,
            right: Box::new(BoundExpr::Column { index: 2, ty: DataType::Int }),
        };
        let out = execute_join(&l, &r, JoinKind::Inner, Some(&cond), &schema, &[], 1).unwrap();
        assert_eq!(out.row_count(), 2); // 1<2, 1<4
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = Table::empty(Schema::new(vec![ColumnDef::new("a", DataType::Int)]));
        l.append_row(vec![Value::Null]).unwrap();
        l.append_row(vec![Value::Int(1)]).unwrap();
        let mut r = Table::empty(Schema::new(vec![ColumnDef::new("b", DataType::Int)]));
        r.append_row(vec![Value::Null]).unwrap();
        r.append_row(vec![Value::Int(1)]).unwrap();
        let mut schema = PlanSchema::default();
        schema.push(PlanColumn::new("a", DataType::Int));
        schema.push(PlanColumn::new("b", DataType::Int));
        let out =
            execute_join(&l, &r, JoinKind::Inner, Some(&eq_cond(0, 1)), &schema, &[], 1).unwrap();
        assert_eq!(out.row_count(), 1); // only 1 = 1
    }

    #[test]
    fn parallel_join_matches_sequential() {
        // Enough rows to split into several chunks; duplicate keys to
        // exercise candidate-list ordering.
        let lrows: Vec<(i64, String)> = (0..1200).map(|i| (i % 37, format!("l{i}"))).collect();
        let rrows: Vec<(i64, String)> = (0..900).map(|i| (i % 41, format!("r{i}"))).collect();
        let lref: Vec<(i64, &str)> = lrows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let rref: Vec<(i64, &str)> = rrows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let l = table("l", &lref);
        let r = table("r", &rref);
        let schema = out_schema(&l, &r);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
            let schema = if kind == JoinKind::LeftOuter {
                let mut s = PlanSchema::default();
                for c in l.schema().columns() {
                    s.push(PlanColumn::new(c.name.clone(), c.ty));
                }
                for c in r.schema().columns() {
                    let mut pc = PlanColumn::new(c.name.clone(), c.ty);
                    pc.nullable = true;
                    s.push(pc);
                }
                s
            } else {
                schema.clone()
            };
            let seq = execute_join(&l, &r, kind, Some(&eq_cond(0, 2)), &schema, &[], 1).unwrap();
            for threads in [2, 8] {
                let par = execute_join(&l, &r, kind, Some(&eq_cond(0, 2)), &schema, &[], threads)
                    .unwrap();
                assert_eq!(par.row_count(), seq.row_count(), "{kind:?} threads {threads}");
                for i in 0..seq.row_count() {
                    assert_eq!(par.row(i), seq.row(i), "{kind:?} threads {threads} row {i}");
                }
            }
        }
        // Nested-loop path (inequality condition).
        let cond = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column { index: 0, ty: DataType::Int }),
            op: BinaryOp::Lt,
            right: Box::new(BoundExpr::Column { index: 2, ty: DataType::Int }),
        };
        let seq = execute_join(&l, &r, JoinKind::Inner, Some(&cond), &schema, &[], 1).unwrap();
        let par = execute_join(&l, &r, JoinKind::Inner, Some(&cond), &schema, &[], 4).unwrap();
        assert_eq!(par.row_count(), seq.row_count());
        for i in 0..seq.row_count() {
            assert_eq!(par.row(i), seq.row(i), "nested-loop row {i}");
        }
    }

    #[test]
    fn equi_key_with_residual() {
        let l = table("l", &[(1, "keep"), (1, "drop")]);
        let r = table("r", &[(1, "x")]);
        let schema = out_schema(&l, &r);
        // l_id = r_id AND l_v = 'keep'
        let cond = BoundExpr::Binary {
            left: Box::new(eq_cond(0, 2)),
            op: BinaryOp::And,
            right: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Column { index: 1, ty: DataType::Varchar }),
                op: BinaryOp::Eq,
                right: Box::new(BoundExpr::Literal(Value::from("keep"))),
            }),
        };
        let out = execute_join(&l, &r, JoinKind::Inner, Some(&cond), &schema, &[], 1).unwrap();
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.row(0)[1], Value::from("keep"));
    }
}
