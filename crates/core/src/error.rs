//! Unified error type for the query engine.

use gsql_graph::GraphError;
use gsql_parser::ParseError;
use gsql_storage::StorageError;
use std::fmt;

/// Any error the engine can produce while processing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Storage-layer failure (catalog, types, constraints).
    Storage(StorageError),
    /// Graph-runtime failure (e.g. the non-positive-weight runtime
    /// exception mandated by the paper).
    Graph(GraphError),
    /// Semantic analysis failed (unknown column, type mismatch, …).
    Bind(String),
    /// Runtime execution failed.
    Exec(String),
    /// The statement exceeded its wall-clock budget (the `timeout_ms`
    /// session setting or [`crate::Session::execute_with_timeout`]). The
    /// deadline is checked before every operator and between per-source
    /// traversal groups, so long statements are interrupted mid-flight.
    Timeout {
        /// The configured budget in milliseconds.
        limit_ms: u64,
    },
    /// The statement is syntactically valid but uses an unsupported feature.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Graph(e) => write!(f, "{e}"),
            Error::Bind(msg) => write!(f, "bind error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Timeout { limit_ms } => {
                write!(
                    f,
                    "query timeout: execution exceeded {limit_ms}ms (SET timeout_ms = 0 disables)"
                )
            }
            Error::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Error {
        Error::Storage(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Error {
        Error::Graph(e)
    }
}

/// Build a bind error with `format!` semantics.
macro_rules! bind_err {
    ($($arg:tt)*) => {
        $crate::error::Error::Bind(format!($($arg)*))
    };
}
pub(crate) use bind_err;

/// Build an execution error with `format!` semantics.
macro_rules! exec_err {
    ($($arg:tt)*) => {
        $crate::error::Error::Exec(format!($($arg)*))
    };
}
pub(crate) use exec_err;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e = Error::from(ParseError::new("boom", 1, 2));
        assert!(e.to_string().contains("boom"));
        let e = Error::Bind("no column x".into());
        assert_eq!(e.to_string(), "bind error: no column x");
        let e = bind_err!("no column {}", "y");
        assert_eq!(e.to_string(), "bind error: no column y");
    }
}
