//! The logical plan.
//!
//! Mirrors the paper's §3.1 design: the standard relational operators plus
//! the two graph additions — **graph select** `σ̂(T, E)` and **graph join**
//! `⋈̂(T1, T2, E)`. The binder always produces a graph *select* when it sees
//! a reachability predicate; the optimizer's rewriter recognizes the
//! cross-product-plus-graph-select shape and folds it into a graph *join*,
//! exactly as described in the paper ("Graph joins are only unfolded in the
//! query rewriter when it recognizes the sequence of a cross product plus a
//! graph select").

use crate::plan::expr::{AggCall, BoundExpr};
use gsql_storage::{ColumnDef, DataType, Schema};
use std::fmt;

/// One output column of a plan node: name, type, and — for nested-table
/// path columns — the schema of the rows inside the nested table.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanColumn {
    /// Table qualifier usable to reference the column (`p1` in `p1.id`).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
    /// For `DataType::Path` columns: the schema of the nested rows, i.e.
    /// the schema of the edge table that produced the path (paper §3.3).
    pub nested: Option<Schema>,
}

impl PlanColumn {
    /// A plain column without qualifier or nesting.
    pub fn new(name: impl Into<String>, ty: DataType) -> PlanColumn {
        PlanColumn { qualifier: None, name: name.into(), ty, nullable: true, nested: None }
    }

    /// Same column with a (new) qualifier.
    pub fn with_qualifier(mut self, q: impl Into<String>) -> PlanColumn {
        self.qualifier = Some(q.into());
        self
    }
}

/// An ordered list of [`PlanColumn`]s — the compile-time shape of a plan
/// node's output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSchema {
    columns: Vec<PlanColumn>,
}

impl PlanSchema {
    /// Build from columns.
    pub fn new(columns: Vec<PlanColumn>) -> PlanSchema {
        PlanSchema { columns }
    }

    /// The columns.
    pub fn columns(&self) -> &[PlanColumn] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at ordinal `i`.
    pub fn column(&self, i: usize) -> &PlanColumn {
        &self.columns[i]
    }

    /// Append a column, returning its ordinal.
    pub fn push(&mut self, col: PlanColumn) -> usize {
        self.columns.push(col);
        self.columns.len() - 1
    }

    /// Concatenate two schemas (join output shape).
    pub fn concat(&self, other: &PlanSchema) -> PlanSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        PlanSchema { columns }
    }

    /// Convert to a storage [`Schema`] for materializing results.
    pub fn to_storage_schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| ColumnDef { name: c.name.clone(), ty: c.ty, nullable: c.nullable })
                .collect(),
        )
    }
}

/// One `CHEAPEST SUM` evaluation attached to a graph select / graph join.
#[derive(Debug, Clone, PartialEq)]
pub struct CheapestSpec {
    /// Weight expression bound over the **edge table** schema. A constant
    /// `1` selects the BFS fast path (unweighted shortest path).
    pub weight: BoundExpr,
    /// Static type of the weight (Int → radix-queue Dijkstra,
    /// Double → binary-heap Dijkstra).
    pub weight_ty: DataType,
    /// Whether the path column was requested (`AS (cost, path)`).
    pub want_path: bool,
    /// Output name of the cost column.
    pub cost_name: String,
    /// Output name of the path column (meaningful when `want_path`).
    pub path_name: String,
}

/// Sort direction plus key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression over the input schema.
    pub expr: BoundExpr,
    /// Ascending?
    pub asc: bool,
}

/// Join kinds at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    LeftOuter,
    /// Cross product (no condition).
    Cross,
}

/// A logical query plan node. Every node knows its output [`PlanSchema`].
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Produces exactly one row with no columns (`SELECT` without `FROM`).
    SingleRow,
    /// Scan a named base table.
    Scan {
        /// Catalog table name.
        table: String,
        /// Output schema (columns qualified by table name or alias).
        schema: PlanSchema,
    },
    /// An edge table served from a registered graph index (paper §6).
    ///
    /// Produced by the optimizer: when a graph operator's edge child is a
    /// plain `Scan` whose `(table, src, dst)` configuration matches a
    /// registered index — and the session's `graph_index` setting is on —
    /// the scan is replaced by this node. The executor fetches the cached
    /// [`crate::exec::MaterializedGraph`] instead of rebuilding it; if the
    /// index has been dropped since planning it falls back to scanning
    /// `table`.
    IndexedGraph {
        /// The index name.
        index: String,
        /// The indexed base table (used as fallback).
        table: String,
        /// Output schema (identical to the underlying scan's).
        schema: PlanSchema,
    },
    /// An edge table served from a registered **path index**: the enclosing
    /// graph operator is point-to-point eligible, so the executor routes
    /// single-pair requests through the index's accelerated search —
    /// goal-directed bidirectional A* for an ALT index, bidirectional
    /// upward Dijkstra with stall-on-demand for a contraction hierarchy —
    /// falling back to Dijkstra when the index is gone or the request is
    /// not a single pair. Produced by the optimizer when the session's
    /// `path_index` setting is on; when several kinds cover a query the
    /// contraction hierarchy wins (stronger pruning), visible in the
    /// `EXPLAIN` label's kind suffix.
    PathIndexedGraph {
        /// The path-index name.
        index: String,
        /// The indexed base table (used as fallback).
        table: String,
        /// The index kind the optimizer chose (shown in `EXPLAIN`).
        kind: crate::path_index::PathIndexKind,
        /// Output schema (identical to the underlying scan's).
        schema: PlanSchema,
    },
    /// Literal rows.
    Values {
        /// Row-major expressions (no column references).
        rows: Vec<Vec<BoundExpr>>,
        /// Output schema.
        schema: PlanSchema,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema (kept when true).
        predicate: BoundExpr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<BoundExpr>,
        /// Output schema (same arity as `exprs`).
        schema: PlanSchema,
    },
    /// Join (inner / left outer / cross).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Kind.
        kind: JoinKind,
        /// Condition over `left.schema ++ right.schema`; `None` for cross.
        on: Option<BoundExpr>,
        /// Output schema (`left ++ right`).
        schema: PlanSchema,
    },
    /// The paper's graph select `σ̂P̄(T, E)`: filters input rows by
    /// reachability of `source -> dest` over the graph derived from `edge`,
    /// appending one cost column (and optionally one path column) per
    /// [`CheapestSpec`].
    GraphSelect {
        /// The filtered table expression `T`.
        input: Box<LogicalPlan>,
        /// The edge table expression `E`.
        edge: Box<LogicalPlan>,
        /// Ordinal of the source key column `S` in the edge schema.
        src_key: usize,
        /// Ordinal of the destination key column `D` in the edge schema.
        dst_key: usize,
        /// `X`: expression over the input schema producing source vertices.
        source: BoundExpr,
        /// `Y`: expression over the input schema producing dest vertices.
        dest: BoundExpr,
        /// Attached `CHEAPEST SUM` evaluations.
        specs: Vec<CheapestSpec>,
        /// Output schema: input columns ++ cost/path columns.
        schema: PlanSchema,
    },
    /// The paper's graph join `⋈̂P̄(T1, T2, E) = σ̂P̄(T1 × T2, E)`, produced
    /// by the rewriter; never materializes the cross product.
    GraphJoin {
        /// Left input `T1` (provides source vertices).
        left: Box<LogicalPlan>,
        /// Right input `T2` (provides destination vertices).
        right: Box<LogicalPlan>,
        /// The edge table expression `E`.
        edge: Box<LogicalPlan>,
        /// Ordinal of `S` in the edge schema.
        src_key: usize,
        /// Ordinal of `D` in the edge schema.
        dst_key: usize,
        /// `X` over the **left** schema.
        source: BoundExpr,
        /// `Y` over the **right** schema.
        dest: BoundExpr,
        /// Attached `CHEAPEST SUM` evaluations.
        specs: Vec<CheapestSpec>,
        /// Output schema: left ++ right ++ cost/path columns.
        schema: PlanSchema,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by key expressions over the input.
        group: Vec<BoundExpr>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Output schema: group keys ++ aggregate results.
        schema: PlanSchema,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Row-count limit/offset.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit (`None` = unlimited).
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Bag union; types already unified by the binder.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Keep duplicates?
        all: bool,
    },
    /// Flatten a nested-table path column: one output row per edge of the
    /// path (paper §2's `UNNEST`), optionally with a 1-based ordinality
    /// column, optionally preserving rows with empty paths (left outer
    /// lateral join semantics).
    Unnest {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Ordinal of the `DataType::Path` column to flatten.
        path_col: usize,
        /// Append `WITH ORDINALITY` column?
        with_ordinality: bool,
        /// Emit one all-NULL expansion row when the path is empty/NULL
        /// (left outer join semantics) instead of dropping the row.
        preserve_empty: bool,
        /// Output schema: input ++ nested columns (++ ordinality).
        schema: PlanSchema,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &PlanSchema {
        use LogicalPlan::*;
        match self {
            SingleRow => {
                static EMPTY: std::sync::OnceLock<PlanSchema> = std::sync::OnceLock::new();
                EMPTY.get_or_init(PlanSchema::default)
            }
            Scan { schema, .. }
            | IndexedGraph { schema, .. }
            | PathIndexedGraph { schema, .. }
            | Values { schema, .. }
            | Project { schema, .. }
            | Join { schema, .. }
            | GraphSelect { schema, .. }
            | GraphJoin { schema, .. }
            | Aggregate { schema, .. }
            | Unnest { schema, .. } => schema,
            Filter { input, .. }
            | Sort { input, .. }
            | Limit { input, .. }
            | Distinct { input } => input.schema(),
            Union { left, .. } => left.schema(),
        }
    }

    /// Render the plan as an indented tree (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), self.node_label());
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }

    /// The node's direct children, in `EXPLAIN` (and execution) order.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        use LogicalPlan::*;
        match self {
            SingleRow
            | Scan { .. }
            | IndexedGraph { .. }
            | PathIndexedGraph { .. }
            | Values { .. } => Vec::new(),
            Filter { input, .. }
            | Project { input, .. }
            | Aggregate { input, .. }
            | Sort { input, .. }
            | Limit { input, .. }
            | Distinct { input }
            | Unnest { input, .. } => vec![input],
            Join { left, right, .. } | Union { left, right, .. } => vec![left, right],
            GraphSelect { input, edge, .. } => vec![input, edge],
            GraphJoin { left, right, edge, .. } => vec![left, right, edge],
        }
    }

    /// The node's one-line header, shared by `EXPLAIN` and the per-operator
    /// statistics of `EXPLAIN ANALYZE`.
    pub fn node_label(&self) -> String {
        match self {
            LogicalPlan::SingleRow => "SingleRow".to_string(),
            LogicalPlan::Scan { table, schema } => {
                let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
                format!("Scan {table} [{}]", names.join(", "))
            }
            LogicalPlan::IndexedGraph { index, table, .. } => {
                format!("GraphIndex {index} ON {table}")
            }
            LogicalPlan::PathIndexedGraph { index, table, kind, .. } => {
                format!("PathIndex {index} ON {table} ({})", kind.label())
            }
            LogicalPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
            LogicalPlan::Filter { input, predicate } => {
                format!("Filter {}", predicate.display(input.schema()))
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(schema.columns())
                    .map(|(e, c)| format!("{} AS {}", e.display(input.schema()), c.name))
                    .collect();
                format!("Project {}", items.join(", "))
            }
            LogicalPlan::Join { kind, on, schema, .. } => {
                let k = match kind {
                    JoinKind::Inner => "InnerJoin",
                    JoinKind::LeftOuter => "LeftOuterJoin",
                    JoinKind::Cross => "CrossProduct",
                };
                match on {
                    Some(on) => format!("{k} on {}", on.display(schema)),
                    None => k.to_string(),
                }
            }
            LogicalPlan::GraphSelect {
                input, edge, src_key, dst_key, source, dest, specs, ..
            } => {
                format!(
                    "GraphSelect {} REACHES {} EDGE ({}, {}){}",
                    source.display(input.schema()),
                    dest.display(input.schema()),
                    edge.schema().column(*src_key).name,
                    edge.schema().column(*dst_key).name,
                    explain_specs(specs, edge.schema()),
                )
            }
            LogicalPlan::GraphJoin {
                left,
                right,
                edge,
                src_key,
                dst_key,
                source,
                dest,
                specs,
                ..
            } => {
                format!(
                    "GraphJoin {} REACHES {} EDGE ({}, {}){}",
                    source.display(left.schema()),
                    dest.display(right.schema()),
                    edge.schema().column(*src_key).name,
                    edge.schema().column(*dst_key).name,
                    explain_specs(specs, edge.schema()),
                )
            }
            LogicalPlan::Aggregate { input, group, aggs, .. } => {
                let g: Vec<String> =
                    group.iter().map(|e| e.display(input.schema()).to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|c| match &c.arg {
                        Some(arg) => {
                            format!("{:?}({})", c.func, arg.display(input.schema()))
                        }
                        None => format!("{:?}", c.func),
                    })
                    .collect();
                format!("Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "))
            }
            LogicalPlan::Sort { input, keys } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{}{}",
                            k.expr.display(input.schema()),
                            if k.asc { "" } else { " DESC" }
                        )
                    })
                    .collect();
                format!("Sort {}", k.join(", "))
            }
            LogicalPlan::Limit { limit, offset, .. } => {
                format!("Limit limit={limit:?} offset={offset}")
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Union { all, .. } => {
                format!("Union{}", if *all { " ALL" } else { "" })
            }
            LogicalPlan::Unnest { input, path_col, with_ordinality, preserve_empty, .. } => {
                format!(
                    "Unnest path_col={} ordinality={} preserve_empty={}",
                    input.schema().column(*path_col).name,
                    with_ordinality,
                    preserve_empty
                )
            }
        }
    }
}

fn explain_specs(specs: &[CheapestSpec], edge_schema: &PlanSchema) -> String {
    if specs.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = specs
        .iter()
        .map(|s| {
            format!(
                "CHEAPEST SUM({}){}",
                s.weight.display(edge_schema),
                if s.want_path { " +path" } else { "" }
            )
        })
        .collect();
    format!(" [{}]", parts.join(", "))
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: PlanSchema::new(vec![
                PlanColumn::new("a", DataType::Int).with_qualifier("t"),
                PlanColumn::new("b", DataType::Varchar).with_qualifier("t"),
            ]),
        }
    }

    #[test]
    fn schema_propagates_through_filter_sort_limit() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: BoundExpr::Literal(gsql_storage::Value::Bool(true)),
            }),
            limit: Some(1),
            offset: 0,
        };
        assert_eq!(plan.schema().len(), 2);
        assert_eq!(plan.schema().column(0).name, "a");
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Binary {
                left: Box::new(BoundExpr::Column { index: 0, ty: DataType::Int }),
                op: crate::plan::expr::BinaryOp::Gt,
                right: Box::new(BoundExpr::Literal(gsql_storage::Value::Int(1))),
            },
        };
        let text = plan.explain();
        assert!(text.contains("Filter (a > 1)"));
        assert!(text.contains("Scan t [a, b]"));
    }

    #[test]
    fn plan_schema_concat() {
        let a = PlanSchema::new(vec![PlanColumn::new("x", DataType::Int)]);
        let b = PlanSchema::new(vec![PlanColumn::new("y", DataType::Double)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.column(1).name, "y");
    }

    #[test]
    fn storage_schema_conversion() {
        let s = PlanSchema::new(vec![PlanColumn::new("x", DataType::Int)]);
        let storage = s.to_storage_schema();
        assert_eq!(storage.len(), 1);
        assert_eq!(storage.column(0).ty, DataType::Int);
    }
}
