//! Bound (resolved) expressions.
//!
//! A [`BoundExpr`] is the output of the binder: every column reference has
//! been resolved to an ordinal into its input's schema, every function name
//! to a concrete scalar function, and literals to storage [`Value`]s. The
//! executor never performs name lookups.

use crate::plan::logical::PlanSchema;
use gsql_storage::{DataType, Value};
use std::fmt;

/// Unary operators (mirrors the AST but resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT (three-valued).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND` (three-valued)
    And,
    /// `OR` (three-valued)
    Or,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `UPPER(varchar)`
    Upper,
    /// `LOWER(varchar)`
    Lower,
    /// `LENGTH(varchar)`
    Length,
    /// `ABS(numeric)`
    Abs,
    /// `ROUND(numeric)`
    Round,
    /// `FLOOR(numeric)`
    Floor,
    /// `CEIL(numeric)`
    Ceil,
    /// `SQRT(numeric)`
    Sqrt,
    /// `COALESCE(a, b, …)`
    Coalesce,
    /// `NULLIF(a, b)`
    Nullif,
}

impl ScalarFunc {
    /// Resolve a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "upper" => ScalarFunc::Upper,
            "lower" => ScalarFunc::Lower,
            "length" => ScalarFunc::Length,
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "sqrt" => ScalarFunc::Sqrt,
            "coalesce" => ScalarFunc::Coalesce,
            "nullif" => ScalarFunc::Nullif,
            _ => return None,
        })
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` — non-NULL count.
    Count,
    /// `SUM(expr)`
    Sum,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
}

impl AggFunc {
    /// Resolve an aggregate name (case-insensitive). `COUNT` resolves to
    /// [`AggFunc::Count`]; the binder turns the zero-argument form into
    /// [`AggFunc::CountStar`].
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// One aggregate call inside an `Aggregate` plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression over the aggregate input (absent for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// True for `agg(DISTINCT x)`.
    pub distinct: bool,
    /// Result type.
    pub out_ty: DataType,
}

/// A fully resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A constant value.
    Literal(Value),
    /// Reference to input column `index` of type `ty`.
    Column {
        /// Ordinal into the input schema.
        index: usize,
        /// The column's type.
        ty: DataType,
    },
    /// `?` host parameter (value substituted at execution).
    Param(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] IN (list)`
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] BETWEEN`
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Inclusive lower bound.
        low: Box<BoundExpr>,
        /// Inclusive upper bound.
        high: Box<BoundExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `[NOT] LIKE`
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern.
        pattern: Box<BoundExpr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `CASE`
    Case {
        /// Optional comparand.
        operand: Option<Box<BoundExpr>>,
        /// `(when, then)` pairs.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// `ELSE`.
        else_expr: Option<Box<BoundExpr>>,
    },
    /// `CAST(expr AS ty)`
    Cast {
        /// Source.
        expr: Box<BoundExpr>,
        /// Target type.
        ty: DataType,
    },
    /// Scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
}

impl BoundExpr {
    /// Static result type, when derivable. `None` means "unknown until
    /// runtime" (NULL literals and parameters).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            BoundExpr::Literal(v) => v.data_type(),
            BoundExpr::Column { ty, .. } => Some(*ty),
            BoundExpr::Param(_) => None,
            BoundExpr::Unary { op: UnaryOp::Neg, expr } => expr.data_type(),
            BoundExpr::Unary { op: UnaryOp::Not, .. } => Some(DataType::Bool),
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Mod => {
                    match (left.data_type(), right.data_type()) {
                        (Some(l), Some(r)) => DataType::numeric_supertype(l, r),
                        _ => None,
                    }
                }
                // Division always yields double (SQL-ish; avoids surprising
                // integer truncation in weight expressions).
                BinaryOp::Div => Some(DataType::Double),
                BinaryOp::Concat => Some(DataType::Varchar),
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::And
                | BinaryOp::Or => Some(DataType::Bool),
            },
            BoundExpr::IsNull { .. } => Some(DataType::Bool),
            BoundExpr::InList { .. } => Some(DataType::Bool),
            BoundExpr::Between { .. } => Some(DataType::Bool),
            BoundExpr::Like { .. } => Some(DataType::Bool),
            BoundExpr::Case { branches, else_expr, .. } => {
                for (_, then) in branches {
                    if let Some(t) = then.data_type() {
                        return Some(t);
                    }
                }
                else_expr.as_ref().and_then(|e| e.data_type())
            }
            BoundExpr::Cast { ty, .. } => Some(*ty),
            BoundExpr::Func { func, args } => match func {
                ScalarFunc::Upper | ScalarFunc::Lower => Some(DataType::Varchar),
                ScalarFunc::Length => Some(DataType::Int),
                ScalarFunc::Abs | ScalarFunc::Round | ScalarFunc::Floor | ScalarFunc::Ceil => {
                    args.first().and_then(|a| a.data_type())
                }
                ScalarFunc::Sqrt => Some(DataType::Double),
                ScalarFunc::Coalesce | ScalarFunc::Nullif => {
                    args.iter().find_map(|a| a.data_type())
                }
            },
        }
    }

    /// True when the expression references no columns (constant modulo
    /// parameters).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(e, BoundExpr::Column { .. }) {
                constant = false;
            }
        });
        constant
    }

    /// Collect the set of column ordinals referenced.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let BoundExpr::Column { index, .. } = e {
                cols.push(*index);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Literal(_) | BoundExpr::Column { .. } | BoundExpr::Param(_) => {}
            BoundExpr::Unary { expr, .. } => expr.visit(f),
            BoundExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BoundExpr::IsNull { expr, .. } => expr.visit(f),
            BoundExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BoundExpr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            BoundExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            BoundExpr::Cast { expr, .. } => expr.visit(f),
            BoundExpr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Rewrite every column ordinal through `map` (used when an expression
    /// is transplanted onto a different input schema).
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> BoundExpr {
        let remap_box = |e: &BoundExpr| -> Box<BoundExpr> { Box::new(e.remap_columns(map)) };
        match self {
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::Column { index, ty } => BoundExpr::Column { index: map(*index), ty: *ty },
            BoundExpr::Param(i) => BoundExpr::Param(*i),
            BoundExpr::Unary { op, expr } => BoundExpr::Unary { op: *op, expr: remap_box(expr) },
            BoundExpr::Binary { left, op, right } => {
                BoundExpr::Binary { left: remap_box(left), op: *op, right: remap_box(right) }
            }
            BoundExpr::IsNull { expr, negated } => {
                BoundExpr::IsNull { expr: remap_box(expr), negated: *negated }
            }
            BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
                expr: remap_box(expr),
                list: list.iter().map(|e| e.remap_columns(map)).collect(),
                negated: *negated,
            },
            BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
                expr: remap_box(expr),
                low: remap_box(low),
                high: remap_box(high),
                negated: *negated,
            },
            BoundExpr::Like { expr, pattern, negated } => BoundExpr::Like {
                expr: remap_box(expr),
                pattern: remap_box(pattern),
                negated: *negated,
            },
            BoundExpr::Case { operand, branches, else_expr } => BoundExpr::Case {
                operand: operand.as_ref().map(|o| remap_box(o)),
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.remap_columns(map), t.remap_columns(map)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| remap_box(e)),
            },
            BoundExpr::Cast { expr, ty } => BoundExpr::Cast { expr: remap_box(expr), ty: *ty },
            BoundExpr::Func { func, args } => BoundExpr::Func {
                func: *func,
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
            },
        }
    }

    /// Render with column names from `schema` (used by EXPLAIN).
    pub fn display<'a>(&'a self, schema: &'a PlanSchema) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, schema }
    }
}

/// Helper rendering a [`BoundExpr`] against a schema.
pub struct DisplayExpr<'a> {
    expr: &'a BoundExpr,
    schema: &'a PlanSchema,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = |e: &'_ BoundExpr| DisplayExpr { expr: e, schema: self.schema }.to_string();
        match self.expr {
            BoundExpr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            BoundExpr::Column { index, .. } => match self.schema.columns().get(*index) {
                Some(c) => write!(f, "{}", c.name),
                None => write!(f, "#{index}"),
            },
            BoundExpr::Param(i) => write!(f, "?{i}"),
            BoundExpr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(-{})", d(expr)),
            BoundExpr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {})", d(expr)),
            BoundExpr::Binary { left, op, right } => {
                let sym = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Mod => "%",
                    BinaryOp::Concat => "||",
                    BinaryOp::Eq => "=",
                    BinaryOp::NotEq => "<>",
                    BinaryOp::Lt => "<",
                    BinaryOp::LtEq => "<=",
                    BinaryOp::Gt => ">",
                    BinaryOp::GtEq => ">=",
                    BinaryOp::And => "AND",
                    BinaryOp::Or => "OR",
                };
                write!(f, "({} {} {})", d(left), sym, d(right))
            }
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "({} IS {}NULL)", d(expr), if *negated { "NOT " } else { "" })
            }
            BoundExpr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(d).collect();
                write!(
                    f,
                    "({} {}IN ({}))",
                    d(expr),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            BoundExpr::Between { expr, low, high, negated } => write!(
                f,
                "({} {}BETWEEN {} AND {})",
                d(expr),
                if *negated { "NOT " } else { "" },
                d(low),
                d(high)
            ),
            BoundExpr::Like { expr, pattern, negated } => {
                write!(f, "({} {}LIKE {})", d(expr), if *negated { "NOT " } else { "" }, d(pattern))
            }
            BoundExpr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {}", d(o))?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {} THEN {}", d(w), d(t))?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {}", d(e))?;
                }
                write!(f, " END")
            }
            BoundExpr::Cast { expr, ty } => write!(f, "CAST({} AS {ty})", d(expr)),
            BoundExpr::Func { func, args } => {
                let items: Vec<String> = args.iter().map(d).collect();
                write!(f, "{func:?}({})", items.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column { index: i, ty }
    }

    #[test]
    fn type_inference_numeric() {
        let add = BoundExpr::Binary {
            left: Box::new(col(0, DataType::Int)),
            op: BinaryOp::Add,
            right: Box::new(BoundExpr::Literal(Value::Double(1.0))),
        };
        assert_eq!(add.data_type(), Some(DataType::Double));
        let div = BoundExpr::Binary {
            left: Box::new(col(0, DataType::Int)),
            op: BinaryOp::Div,
            right: Box::new(BoundExpr::Literal(Value::Int(2))),
        };
        assert_eq!(div.data_type(), Some(DataType::Double));
    }

    #[test]
    fn params_have_unknown_type() {
        assert_eq!(BoundExpr::Param(0).data_type(), None);
        let cast = BoundExpr::Cast { expr: Box::new(BoundExpr::Param(0)), ty: DataType::Int };
        assert_eq!(cast.data_type(), Some(DataType::Int));
    }

    #[test]
    fn constant_detection() {
        assert!(BoundExpr::Literal(Value::Int(1)).is_constant());
        assert!(BoundExpr::Param(0).is_constant());
        assert!(!col(0, DataType::Int).is_constant());
    }

    #[test]
    fn referenced_columns_dedup_sorted() {
        let e = BoundExpr::Binary {
            left: Box::new(col(3, DataType::Int)),
            op: BinaryOp::Add,
            right: Box::new(BoundExpr::Binary {
                left: Box::new(col(1, DataType::Int)),
                op: BinaryOp::Mul,
                right: Box::new(col(3, DataType::Int)),
            }),
        };
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn remap_columns_applies_mapping() {
        let e = col(2, DataType::Int);
        let remapped = e.remap_columns(&|i| i + 10);
        assert!(matches!(remapped, BoundExpr::Column { index: 12, .. }));
    }

    #[test]
    fn function_name_resolution() {
        assert_eq!(ScalarFunc::from_name("UPPER"), Some(ScalarFunc::Upper));
        assert_eq!(ScalarFunc::from_name("ceiling"), Some(ScalarFunc::Ceil));
        assert_eq!(ScalarFunc::from_name("nope"), None);
        assert_eq!(AggFunc::from_name("Count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
