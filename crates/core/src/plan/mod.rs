//! Logical plan and bound expressions.

pub mod expr;
pub mod logical;

pub use expr::{AggCall, AggFunc, BinaryOp, BoundExpr, ScalarFunc, UnaryOp};
pub use logical::{CheapestSpec, JoinKind, LogicalPlan, PlanColumn, PlanSchema, SortKey};
