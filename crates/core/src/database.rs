//! The shared database and its convenience API.
//!
//! A [`Database`] owns the catalog and the graph-index registry and is
//! safe to share across threads. All statement execution happens through
//! [`Session`]s (see [`crate::session`]); the `execute`/`query` methods
//! here are thin wrappers that open a temporary session, so simple callers
//! keep working without managing one.

use crate::bind::binder::Binder;
use crate::bind::expr::{type_name_to_datatype, ExprBinder};
use crate::bind::scope::Scope;
use crate::context::ExecContext;
use crate::error::{bind_err, Error};
use crate::exec::executor::Executor;
use crate::exec::expression::{cast_value, eval};
use crate::graph_index::GraphIndexRegistry;
use crate::optimize::optimize_with;
use crate::path_index::PathIndexRegistry;
use crate::plan::{LogicalPlan, PlanColumn, PlanSchema};
use crate::session::{PreparedStatement, Session, SharedPlanCache};
use gsql_obs::{EngineMetrics, SlowLog};
use gsql_parser::ast;
use gsql_storage::{Catalog, ColumnDef, DataType, DurableStore, Schema, Table, Value};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

type Result<T> = std::result::Result<T, Error>;

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A result set (SELECT / EXPLAIN / DESCRIBE / SHOW).
    Table(Arc<Table>),
    /// Rows affected by DML.
    Affected(usize),
    /// DDL or SET succeeded.
    Ok,
}

impl QueryResult {
    /// Unwrap the result set; errors for DDL/DML results.
    pub fn into_table(self) -> Result<Arc<Table>> {
        match self {
            QueryResult::Table(t) => Ok(t),
            other => Err(bind_err!("statement did not produce a result set: {other:?}")),
        }
    }
}

/// An in-memory SQL database with the paper's graph extensions.
///
/// Thread-safe and shared; open a [`Session`] per connection for prepared
/// statements with plan caching, `SET`/`SHOW` settings and
/// `EXPLAIN ANALYZE`. The methods here cover one-shot use:
///
/// ```
/// use gsql_core::Database;
/// use gsql_storage::Value;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE friends (src INTEGER, dst INTEGER)").unwrap();
/// db.execute("INSERT INTO friends VALUES (1, 2), (2, 3)").unwrap();
/// let result = db
///     .query_with_params(
///         "SELECT CHEAPEST SUM(1) AS d WHERE ? REACHES ? OVER friends EDGE (src, dst)",
///         &[Value::Int(1), Value::Int(3)],
///     )
///     .unwrap();
/// assert_eq!(result.row(0)[0], Value::Int(2));
/// ```
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    indexes: GraphIndexRegistry,
    path_indexes: PathIndexRegistry,
    shared_plan_cache: Arc<SharedPlanCache>,
    metrics: Arc<EngineMetrics>,
    slow_log: Arc<SlowLog>,
    /// The durability layer, present only for databases opened with
    /// [`Database::open`] (or `GSQL_DATA_DIR`). `None` = pure in-memory:
    /// no WAL, no checkpoints, zero overhead on any existing path.
    storage: Option<Arc<DurableStore>>,
}

impl Database {
    /// An empty database. In-memory, unless the `GSQL_DATA_DIR`
    /// environment variable names a directory — then every database this
    /// process creates is durable under a unique subdirectory of it (the
    /// CI durable matrix leg runs the whole suite this way).
    ///
    /// # Panics
    ///
    /// Panics when `GSQL_DATA_DIR` is set but the durable open fails —
    /// a silently in-memory "durable" run would defeat the point.
    pub fn new() -> Database {
        match std::env::var_os("GSQL_DATA_DIR") {
            Some(dir) if !dir.is_empty() => {
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let sub = std::path::PathBuf::from(dir).join(format!(
                    "db-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                Database::open(&sub)
                    .unwrap_or_else(|e| panic!("GSQL_DATA_DIR open failed at {sub:?}: {e}"))
            }
            _ => Database::default(),
        }
    }

    /// Open (or create) a **durable** database rooted at `dir`.
    ///
    /// Recovery runs here: the latest valid snapshot is loaded (tables,
    /// version counters, graph-index definitions, and built path-index
    /// acceleration structures for warm-start), the WAL suffix is replayed
    /// statement by statement, and a torn tail — a partial record from a
    /// crash mid-append — is truncated. The resulting engine state,
    /// including [`Database::schema_version`] and every plan-cache
    /// invariant, is identical to a process that never restarted.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        let (store, recovery) = DurableStore::open(dir.as_ref()).map_err(Error::Storage)?;
        let mut db = Database::default();
        if let Some(snapshot) = recovery.snapshot {
            crate::persist::restore_snapshot(&db, snapshot)?;
        }
        let replayed = recovery.wal_records.len() as u64;
        {
            // Replay through a plain session: `db.storage` is still `None`,
            // so nothing is re-logged and no commit lock is taken.
            let session = db.session();
            for record in &recovery.wal_records {
                crate::persist::replay_record(&session, record)?;
            }
        }
        db.metrics.recovery_replayed.set(replayed as i64);
        db.storage = Some(Arc::new(store));
        Ok(db)
    }

    /// Whether this database persists to disk.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// The data directory of a durable database.
    pub fn data_dir(&self) -> Option<&Path> {
        self.storage.as_deref().map(DurableStore::dir)
    }

    /// Force a snapshot checkpoint (the `CHECKPOINT` statement): the whole
    /// engine state is serialized atomically to a new snapshot epoch and
    /// the WAL is rotated. Returns the new epoch, or `None` for an
    /// in-memory database (a no-op, not an error, so scripts and tests run
    /// unchanged in both modes).
    pub fn checkpoint(&self) -> Result<Option<u64>> {
        let Some(store) = &self.storage else {
            return Ok(None);
        };
        let t0 = Instant::now();
        let epoch =
            store.checkpoint(|| crate::persist::capture_snapshot(self)).map_err(Error::Storage)?;
        self.metrics.checkpoint_duration.observe(t0.elapsed().as_micros() as u64);
        Ok(Some(epoch))
    }

    /// The shared commit lock of a durable database. Mutating statements
    /// hold it (shared) across apply + WAL append so a checkpoint — which
    /// takes it exclusively — can never capture a mutation whose WAL record
    /// lands in the post-rotation log (double replay) or miss one that
    /// landed pre-rotation.
    pub(crate) fn commit_guard(&self) -> Option<std::sync::RwLockReadGuard<'_, ()>> {
        self.storage.as_deref().map(DurableStore::commit_shared)
    }

    /// Append a successfully executed mutating statement to the WAL.
    /// No-op for in-memory databases.
    pub(crate) fn log_statement(&self, sql: &str, params: &[Value]) -> Result<()> {
        let Some(store) = &self.storage else {
            return Ok(());
        };
        let payload = crate::persist::encode_statement_record(sql, params)?;
        let framed = store.append(&payload).map_err(Error::Storage)?;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(framed);
        Ok(())
    }

    /// Append an `import_csv` bulk row load to the WAL. No-op in memory.
    fn log_rows(&self, table: &str, rows: &Table) -> Result<()> {
        let Some(store) = &self.storage else {
            return Ok(());
        };
        let payload = crate::persist::encode_rows_record(table, rows)?;
        let framed = store.append(&payload).map_err(Error::Storage)?;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(framed);
        Ok(())
    }

    /// Open a session (connection state: settings + plan cache).
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Open a session that uses the database-wide [`SharedPlanCache`]
    /// instead of a private one: any participating session's bound plans
    /// serve all of them. This is what server worker threads use.
    pub fn shared_session(&self) -> Session<'_> {
        Session::with_shared_cache(self, Arc::clone(&self.shared_plan_cache))
    }

    /// The database-wide plan cache used by [`Database::shared_session`]
    /// sessions (global hit/miss counters, manual clearing).
    pub fn shared_plan_cache(&self) -> &Arc<SharedPlanCache> {
        &self.shared_plan_cache
    }

    /// The engine-wide metrics registry: every session and server layer
    /// records into this one set of instruments, and `/metrics` renders it.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// The bounded slow-query ring (`SET slow_query_ms` arms it per
    /// session; `/slowlog` reads it).
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.slow_log
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The graph-index registry.
    pub fn graph_indexes(&self) -> &GraphIndexRegistry {
        &self.indexes
    }

    /// The path-index (ALT) registry.
    pub fn path_indexes(&self) -> &PathIndexRegistry {
        &self.path_indexes
    }

    /// The structural version of the database: changes whenever a table,
    /// graph index or path index is created or dropped — through SQL
    /// statements or the [`Catalog`] / [`GraphIndexRegistry`] /
    /// [`PathIndexRegistry`] APIs directly (e.g. bulk loaders). Cached
    /// plans bind to one version and are invalidated when it moves.
    pub fn schema_version(&self) -> u64 {
        self.catalog.ddl_version() + self.indexes.version() + self.path_indexes.version()
    }

    /// Execute a single statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.session().execute(sql)
    }

    /// Execute a single statement with `?` parameter values.
    pub fn execute_with_params(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.session().execute_with_params(sql, params)
    }

    /// Execute a semicolon-separated script, returning one result per
    /// statement. Stops at the first error.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        self.session().execute_script(sql)
    }

    /// Run a query and return its result set.
    pub fn query(&self, sql: &str) -> Result<Arc<Table>> {
        self.execute(sql)?.into_table()
    }

    /// Run a query with parameters and return its result set.
    pub fn query_with_params(&self, sql: &str, params: &[Value]) -> Result<Arc<Table>> {
        self.execute_with_params(sql, params)?.into_table()
    }

    /// Parse a statement for repeated execution through a [`Session`].
    ///
    /// Unlike [`Session::prepare`], no plan is built yet: the first
    /// execution in a given session binds and caches it there.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        PreparedStatement::parse(sql)
    }

    /// Bulk-load CSV (with a header row matching the table's columns) into
    /// an existing table. Returns the number of rows inserted.
    pub fn import_csv<R: std::io::BufRead>(&self, table: &str, input: R) -> Result<usize> {
        let schema = self.catalog.get(table).map_err(Error::Storage)?.schema().clone();
        let loaded = gsql_storage::csv::read_csv(schema, input).map_err(Error::Storage)?;
        let n = loaded.row_count();
        // Durable databases bracket the apply + WAL append in the shared
        // commit lock, like any mutating statement; the rows are logged as
        // one bulk record rather than re-rendered SQL.
        let guard = self.commit_guard();
        self.catalog
            .update(table, |t| {
                for row in loaded.rows() {
                    t.append_row(row)?;
                }
                Ok(())
            })
            .map_err(Error::Storage)?;
        self.log_rows(table, &loaded)?;
        drop(guard);
        Ok(n)
    }

    /// Export a query result as CSV text (header row included).
    pub fn export_csv(&self, sql: &str) -> Result<String> {
        let table = self.query(sql)?;
        gsql_storage::csv::to_csv_string(&table).map_err(Error::Storage)
    }

    /// Parse, bind and optimize a query under default session settings,
    /// returning its logical plan (what `EXPLAIN` renders).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        self.session().plan(sql)
    }

    // ------------------------------------------------------ DDL internals

    pub(crate) fn create_table_from_ast(
        &self,
        name: &str,
        columns: &[ast::ColumnDefAst],
    ) -> Result<QueryResult> {
        if columns.is_empty() {
            return Err(bind_err!("CREATE TABLE requires at least one column"));
        }
        let mut defs = Vec::with_capacity(columns.len());
        for c in columns {
            defs.push(ColumnDef {
                name: c.name.clone(),
                ty: type_name_to_datatype(c.ty),
                nullable: !c.not_null,
            });
        }
        self.catalog.create_table(name, Schema::new(defs)).map_err(Error::Storage)?;
        Ok(QueryResult::Ok)
    }

    pub(crate) fn drop_table_stmt(&self, name: &str) -> Result<QueryResult> {
        self.catalog.drop_table(name).map_err(Error::Storage)?;
        self.indexes.drop_indexes_for_table(name);
        self.path_indexes.drop_indexes_for_table(name);
        Ok(QueryResult::Ok)
    }

    pub(crate) fn create_graph_index_stmt(
        &self,
        name: &str,
        table: &str,
        src_col: &str,
        dst_col: &str,
        threads: usize,
    ) -> Result<QueryResult> {
        self.indexes.create_index(&self.catalog, name, table, src_col, dst_col, threads)?;
        Ok(QueryResult::Ok)
    }

    pub(crate) fn drop_graph_index_stmt(&self, name: &str) -> Result<QueryResult> {
        self.indexes.drop_index(name)?;
        Ok(QueryResult::Ok)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create_path_index_stmt(
        &self,
        name: &str,
        table: &str,
        src_col: &str,
        dst_col: &str,
        weight_col: Option<&str>,
        kind: crate::path_index::PathIndexKind,
        if_not_exists: bool,
        threads: usize,
    ) -> Result<QueryResult> {
        self.path_indexes.create_index(
            &self.catalog,
            name,
            table,
            src_col,
            dst_col,
            weight_col,
            kind,
            if_not_exists,
            threads,
        )?;
        Ok(QueryResult::Ok)
    }

    pub(crate) fn drop_path_index_stmt(&self, name: &str, if_exists: bool) -> Result<QueryResult> {
        self.path_indexes.drop_index(name, if_exists)?;
        Ok(QueryResult::Ok)
    }

    // ------------------------------------------------------ DML internals

    pub(crate) fn run_insert(
        &self,
        ctx: &ExecContext<'_>,
        table: &str,
        columns: Option<&[String]>,
        source: &ast::Query,
    ) -> Result<QueryResult> {
        let target = self.catalog.get(table).map_err(Error::Storage)?;
        let target_schema = target.schema().clone();
        drop(target);

        // Map source positions to target column ordinals.
        let positions: Vec<usize> = match columns {
            None => (0..target_schema.len()).collect(),
            Some(cols) => {
                let mut seen = std::collections::HashSet::new();
                cols.iter()
                    .map(|c| {
                        let i = target_schema.index_of_ok(c).map_err(Error::Storage)?;
                        if !seen.insert(i) {
                            return Err(bind_err!("duplicate column '{c}' in INSERT"));
                        }
                        Ok(i)
                    })
                    .collect::<Result<_>>()?
            }
        };

        let plan = Binder::new(ctx).bind_query(source)?;
        if plan.schema().len() != positions.len() {
            return Err(bind_err!(
                "INSERT has {} target columns but the source produces {}",
                positions.len(),
                plan.schema().len()
            ));
        }
        let plan = optimize_with(plan, ctx);
        let rows = Executor::new(ctx).execute(&plan)?;

        let inserted = rows.row_count();
        self.catalog
            .update(table, |t| {
                for r in 0..rows.row_count() {
                    let mut row = vec![Value::Null; target_schema.len()];
                    for (src_pos, &tgt_pos) in positions.iter().enumerate() {
                        let v = rows.column(src_pos).get(r);
                        let def = target_schema.column(tgt_pos);
                        row[tgt_pos] = coerce_for_storage(v, def.ty)?;
                    }
                    t.append_row(row)?;
                }
                Ok(())
            })
            .map_err(Error::Storage)?;
        Ok(QueryResult::Affected(inserted))
    }

    pub(crate) fn run_delete(
        &self,
        ctx: &ExecContext<'_>,
        table: &str,
        filter: Option<&ast::Expr>,
    ) -> Result<QueryResult> {
        let params = ctx.params();
        let snapshot = self.catalog.get(table).map_err(Error::Storage)?;
        let keep: Vec<bool> = match filter {
            None => vec![false; snapshot.row_count()],
            Some(f) => {
                let scope = table_scope(table, snapshot.schema());
                let bound = ExprBinder::new(&scope).bind(f)?;
                let mut keep = Vec::with_capacity(snapshot.row_count());
                for row in 0..snapshot.row_count() {
                    let matched = eval(&bound, &snapshot, row, params)? == Value::Bool(true);
                    keep.push(!matched);
                }
                keep
            }
        };
        let deleted = keep.iter().filter(|&&k| !k).count();
        if deleted > 0 {
            self.catalog
                .update(table, |t| {
                    t.retain_rows(|i| keep[i]);
                    Ok(())
                })
                .map_err(Error::Storage)?;
        }
        Ok(QueryResult::Affected(deleted))
    }

    pub(crate) fn run_update(
        &self,
        ctx: &ExecContext<'_>,
        table: &str,
        assignments: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
    ) -> Result<QueryResult> {
        let params = ctx.params();
        let snapshot = self.catalog.get(table).map_err(Error::Storage)?;
        let schema = snapshot.schema().clone();
        let scope = table_scope(table, &schema);
        let binder = ExprBinder::new(&scope);

        let mut bound_assignments = Vec::with_capacity(assignments.len());
        for (col, e) in assignments {
            let idx = schema.index_of_ok(col).map_err(Error::Storage)?;
            bound_assignments.push((idx, binder.bind(e)?));
        }
        let bound_filter = filter.map(|f| binder.bind(f)).transpose()?;

        // Compute the new rows against the snapshot, then move the rebuilt
        // table into the catalog wholesale (no copy-on-write round trip).
        let mut updated = 0usize;
        let mut new_table = Table::empty(schema.clone());
        for row in 0..snapshot.row_count() {
            let matched = match &bound_filter {
                None => true,
                Some(f) => eval(f, &snapshot, row, params)? == Value::Bool(true),
            };
            let mut values = snapshot.row(row);
            if matched {
                updated += 1;
                for (idx, e) in &bound_assignments {
                    let v = eval(e, &snapshot, row, params)?;
                    values[*idx] = coerce_for_storage(v, schema.column(*idx).ty)?;
                }
            }
            new_table.append_row(values).map_err(Error::Storage)?;
        }
        if updated > 0 {
            self.catalog.replace(table, new_table).map_err(Error::Storage)?;
        }
        Ok(QueryResult::Affected(updated))
    }
}

/// Coerce a value for storage into a column of type `ty` (string→date and
/// int→double conversions that SQL permits implicitly on INSERT/UPDATE).
fn coerce_for_storage(
    v: Value,
    ty: DataType,
) -> std::result::Result<Value, gsql_storage::StorageError> {
    match (&v, ty) {
        (Value::Null, _) => Ok(v),
        (Value::Str(_), DataType::Date) | (Value::Int(_), DataType::Double) => {
            cast_value(v, ty).map_err(|e| gsql_storage::StorageError::Internal(e.to_string()))
        }
        _ => Ok(v),
    }
}

/// The scope of a single base table (used by DML binding).
fn table_scope(name: &str, schema: &Schema) -> Scope {
    let mut plan_schema = PlanSchema::default();
    for def in schema.columns() {
        plan_schema.push(PlanColumn {
            qualifier: Some(name.to_string()),
            name: def.name.clone(),
            ty: def.ty,
            nullable: def.nullable,
            nested: None,
        });
    }
    Scope::new(plan_schema)
}
