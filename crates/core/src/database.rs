//! The public database API.

use crate::bind::binder::Binder;
use crate::bind::expr::{type_name_to_datatype, ExprBinder};
use crate::bind::scope::Scope;
use crate::error::{bind_err, Error};
use crate::exec::executor::Executor;
use crate::exec::expression::{cast_value, eval};
use crate::graph_index::GraphIndexRegistry;
use crate::optimize::optimize;
use crate::plan::{LogicalPlan, PlanColumn, PlanSchema};
use gsql_parser::{ast, parse_sql, parse_statement};
use gsql_storage::{Catalog, ColumnDef, DataType, Schema, Table, Value};
use std::sync::Arc;

type Result<T> = std::result::Result<T, Error>;

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// A result set (SELECT / EXPLAIN / DESCRIBE).
    Table(Arc<Table>),
    /// Rows affected by DML.
    Affected(usize),
    /// DDL succeeded.
    Ok,
}

impl QueryResult {
    /// Unwrap the result set; errors for DDL/DML results.
    pub fn into_table(self) -> Result<Arc<Table>> {
        match self {
            QueryResult::Table(t) => Ok(t),
            other => Err(bind_err!("statement did not produce a result set: {other:?}")),
        }
    }
}

/// A parsed statement ready for repeated execution with different `?`
/// parameter values. Binding happens per execution (it is cheap relative
/// to execution and keeps parameter typing flexible).
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    statement: ast::Statement,
}

impl PreparedStatement {
    /// Execute against `db` with parameter values for each `?`, in textual
    /// order.
    pub fn execute(&self, db: &Database, params: &[Value]) -> Result<QueryResult> {
        db.run_statement(&self.statement, params)
    }
}

/// An in-memory SQL database with the paper's graph extensions.
///
/// ```
/// use gsql_core::Database;
/// use gsql_storage::Value;
///
/// let db = Database::new();
/// db.execute("CREATE TABLE friends (src INTEGER, dst INTEGER)").unwrap();
/// db.execute("INSERT INTO friends VALUES (1, 2), (2, 3)").unwrap();
/// let result = db
///     .query_with_params(
///         "SELECT CHEAPEST SUM(1) AS d WHERE ? REACHES ? OVER friends EDGE (src, dst)",
///         &[Value::Int(1), Value::Int(3)],
///     )
///     .unwrap();
/// assert_eq!(result.row(0)[0], Value::Int(2));
/// ```
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    indexes: GraphIndexRegistry,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The graph-index registry.
    pub fn graph_indexes(&self) -> &GraphIndexRegistry {
        &self.indexes
    }

    /// Execute a single statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &[])
    }

    /// Execute a single statement with `?` parameter values.
    pub fn execute_with_params(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.run_statement(&statement, params)
    }

    /// Execute a semicolon-separated script, returning one result per
    /// statement. Stops at the first error.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        let statements = parse_sql(sql)?;
        let mut results = Vec::with_capacity(statements.len());
        for s in &statements {
            results.push(self.run_statement(s, &[])?);
        }
        Ok(results)
    }

    /// Run a query and return its result set.
    pub fn query(&self, sql: &str) -> Result<Arc<Table>> {
        self.execute(sql)?.into_table()
    }

    /// Run a query with parameters and return its result set.
    pub fn query_with_params(&self, sql: &str, params: &[Value]) -> Result<Arc<Table>> {
        self.execute_with_params(sql, params)?.into_table()
    }

    /// Parse a statement for repeated execution.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        Ok(PreparedStatement { statement: parse_statement(sql)? })
    }

    /// Bulk-load CSV (with a header row matching the table's columns) into
    /// an existing table. Returns the number of rows inserted.
    pub fn import_csv<R: std::io::BufRead>(&self, table: &str, input: R) -> Result<usize> {
        let schema = self.catalog.get(table).map_err(Error::Storage)?.schema().clone();
        let loaded = gsql_storage::csv::read_csv(schema, input).map_err(Error::Storage)?;
        let n = loaded.row_count();
        self.catalog
            .update(table, |t| {
                for row in loaded.rows() {
                    t.append_row(row)?;
                }
                Ok(())
            })
            .map_err(Error::Storage)?;
        Ok(n)
    }

    /// Export a query result as CSV text (header row included).
    pub fn export_csv(&self, sql: &str) -> Result<String> {
        let table = self.query(sql)?;
        gsql_storage::csv::to_csv_string(&table).map_err(Error::Storage)
    }

    /// Parse, bind and optimize a query, returning its logical plan
    /// (what `EXPLAIN` renders).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        match parse_statement(sql)? {
            ast::Statement::Query(q) | ast::Statement::Explain(q) => {
                let plan = Binder::new(&self.catalog).bind_query(&q)?;
                Ok(optimize(plan))
            }
            _ => Err(bind_err!("plan() expects a query")),
        }
    }

    fn run_statement(&self, statement: &ast::Statement, params: &[Value]) -> Result<QueryResult> {
        match statement {
            ast::Statement::Query(q) => {
                let plan = Binder::new(&self.catalog).bind_query(q)?;
                let plan = optimize(plan);
                let table =
                    Executor::new(&self.catalog, params, Some(&self.indexes)).execute(&plan)?;
                Ok(QueryResult::Table(table))
            }
            ast::Statement::Explain(q) => {
                let plan = Binder::new(&self.catalog).bind_query(q)?;
                let plan = optimize(plan);
                let mut t = Table::empty(Schema::new(vec![ColumnDef::not_null(
                    "plan",
                    DataType::Varchar,
                )]));
                for line in plan.explain().lines() {
                    t.append_row(vec![Value::from(line)]).map_err(Error::Storage)?;
                }
                Ok(QueryResult::Table(Arc::new(t)))
            }
            ast::Statement::Describe { name } => {
                let table = self.catalog.get(name).map_err(Error::Storage)?;
                let mut t = Table::empty(Schema::new(vec![
                    ColumnDef::not_null("column", DataType::Varchar),
                    ColumnDef::not_null("type", DataType::Varchar),
                    ColumnDef::not_null("nullable", DataType::Bool),
                ]));
                for def in table.schema().columns() {
                    t.append_row(vec![
                        Value::from(def.name.clone()),
                        Value::from(def.ty.sql_name()),
                        Value::Bool(def.nullable),
                    ])
                    .map_err(Error::Storage)?;
                }
                Ok(QueryResult::Table(Arc::new(t)))
            }
            ast::Statement::CreateTable { name, columns } => {
                if columns.is_empty() {
                    return Err(bind_err!("CREATE TABLE requires at least one column"));
                }
                let mut defs = Vec::with_capacity(columns.len());
                for c in columns {
                    defs.push(ColumnDef {
                        name: c.name.clone(),
                        ty: type_name_to_datatype(c.ty),
                        nullable: !c.not_null,
                    });
                }
                self.catalog.create_table(name, Schema::new(defs)).map_err(Error::Storage)?;
                Ok(QueryResult::Ok)
            }
            ast::Statement::DropTable { name } => {
                self.catalog.drop_table(name).map_err(Error::Storage)?;
                self.indexes.drop_indexes_for_table(name);
                Ok(QueryResult::Ok)
            }
            ast::Statement::Insert { table, columns, source } => {
                self.run_insert(table, columns.as_deref(), source, params)
            }
            ast::Statement::Delete { table, filter } => {
                self.run_delete(table, filter.as_ref(), params)
            }
            ast::Statement::Update { table, assignments, filter } => {
                self.run_update(table, assignments, filter.as_ref(), params)
            }
            ast::Statement::CreateGraphIndex { name, table, src_col, dst_col } => {
                self.indexes.create_index(&self.catalog, name, table, src_col, dst_col)?;
                Ok(QueryResult::Ok)
            }
            ast::Statement::DropGraphIndex { name } => {
                self.indexes.drop_index(name)?;
                Ok(QueryResult::Ok)
            }
        }
    }

    fn run_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &ast::Query,
        params: &[Value],
    ) -> Result<QueryResult> {
        let target = self.catalog.get(table).map_err(Error::Storage)?;
        let target_schema = target.schema().clone();
        drop(target);

        // Map source positions to target column ordinals.
        let positions: Vec<usize> = match columns {
            None => (0..target_schema.len()).collect(),
            Some(cols) => {
                let mut seen = std::collections::HashSet::new();
                cols.iter()
                    .map(|c| {
                        let i = target_schema.index_of_ok(c).map_err(Error::Storage)?;
                        if !seen.insert(i) {
                            return Err(bind_err!("duplicate column '{c}' in INSERT"));
                        }
                        Ok(i)
                    })
                    .collect::<Result<_>>()?
            }
        };

        let plan = Binder::new(&self.catalog).bind_query(source)?;
        if plan.schema().len() != positions.len() {
            return Err(bind_err!(
                "INSERT has {} target columns but the source produces {}",
                positions.len(),
                plan.schema().len()
            ));
        }
        let plan = optimize(plan);
        let rows =
            Executor::new(&self.catalog, params, Some(&self.indexes)).execute(&plan)?;

        let inserted = rows.row_count();
        self.catalog
            .update(table, |t| {
                for r in 0..rows.row_count() {
                    let mut row = vec![Value::Null; target_schema.len()];
                    for (src_pos, &tgt_pos) in positions.iter().enumerate() {
                        let v = rows.column(src_pos).get(r);
                        let def = target_schema.column(tgt_pos);
                        row[tgt_pos] = coerce_for_storage(v, def.ty)?;
                    }
                    t.append_row(row)?;
                }
                Ok(())
            })
            .map_err(Error::Storage)?;
        Ok(QueryResult::Affected(inserted))
    }

    fn run_delete(
        &self,
        table: &str,
        filter: Option<&ast::Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let snapshot = self.catalog.get(table).map_err(Error::Storage)?;
        let keep: Vec<bool> = match filter {
            None => vec![false; snapshot.row_count()],
            Some(f) => {
                let scope = table_scope(table, snapshot.schema());
                let bound = ExprBinder::new(&scope).bind(f)?;
                let mut keep = Vec::with_capacity(snapshot.row_count());
                for row in 0..snapshot.row_count() {
                    let matched = eval(&bound, &snapshot, row, params)? == Value::Bool(true);
                    keep.push(!matched);
                }
                keep
            }
        };
        let deleted = keep.iter().filter(|&&k| !k).count();
        if deleted > 0 {
            self.catalog
                .update(table, |t| {
                    t.retain_rows(|i| keep[i]);
                    Ok(())
                })
                .map_err(Error::Storage)?;
        }
        Ok(QueryResult::Affected(deleted))
    }

    fn run_update(
        &self,
        table: &str,
        assignments: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
        params: &[Value],
    ) -> Result<QueryResult> {
        let snapshot = self.catalog.get(table).map_err(Error::Storage)?;
        let schema = snapshot.schema().clone();
        let scope = table_scope(table, &schema);
        let binder = ExprBinder::new(&scope);

        let mut bound_assignments = Vec::with_capacity(assignments.len());
        for (col, e) in assignments {
            let idx = schema.index_of_ok(col).map_err(Error::Storage)?;
            bound_assignments.push((idx, binder.bind(e)?));
        }
        let bound_filter = filter.map(|f| binder.bind(f)).transpose()?;

        // Compute the new rows against the snapshot, then swap wholesale.
        let mut updated = 0usize;
        let mut new_table = Table::empty(schema.clone());
        for row in 0..snapshot.row_count() {
            let matched = match &bound_filter {
                None => true,
                Some(f) => eval(f, &snapshot, row, params)? == Value::Bool(true),
            };
            let mut values = snapshot.row(row);
            if matched {
                updated += 1;
                for (idx, e) in &bound_assignments {
                    let v = eval(e, &snapshot, row, params)?;
                    values[*idx] = coerce_for_storage(v, schema.column(*idx).ty)?;
                }
            }
            new_table.append_row(values).map_err(Error::Storage)?;
        }
        if updated > 0 {
            self.catalog
                .update(table, |t| {
                    *t = new_table.clone();
                    Ok(())
                })
                .map_err(Error::Storage)?;
        }
        Ok(QueryResult::Affected(updated))
    }
}

/// Coerce a value for storage into a column of type `ty` (string→date and
/// int→double conversions that SQL permits implicitly on INSERT/UPDATE).
fn coerce_for_storage(v: Value, ty: DataType) -> std::result::Result<Value, gsql_storage::StorageError> {
    match (&v, ty) {
        (Value::Null, _) => Ok(v),
        (Value::Str(_), DataType::Date) | (Value::Int(_), DataType::Double) => {
            cast_value(v, ty).map_err(|e| gsql_storage::StorageError::Internal(e.to_string()))
        }
        _ => Ok(v),
    }
}

/// The scope of a single base table (used by DML binding).
fn table_scope(name: &str, schema: &Schema) -> Scope {
    let mut plan_schema = PlanSchema::default();
    for def in schema.columns() {
        plan_schema.push(PlanColumn {
            qualifier: Some(name.to_string()),
            name: def.name.clone(),
            ty: def.ty,
            nullable: def.nullable,
            nested: None,
        });
    }
    Scope::new(plan_schema)
}
