//! Sessions: the unit of connection state on top of a shared [`Database`].
//!
//! The paper's workload is *repeated* parameterized shortest-path queries
//! over a mostly-static graph. A [`Session`] makes that workload cheap:
//!
//! * a **plan cache** (LRU, keyed by SQL text) holds fully bound and
//!   optimized plans, so a [`PreparedStatement`] executed many times
//!   parses, binds and optimizes exactly once;
//! * cached plans carry the database's **schema version** (catalog DDL +
//!   graph-index registry); any `CREATE`/`DROP` of tables or graph indexes
//!   invalidates them lazily;
//! * **session settings** (`SET` / `SHOW`) control planning and execution:
//!   `graph_index` toggles index usage (visible in `EXPLAIN`), `row_limit`
//!   guards against runaway intermediate results, `plan_cache_size` sizes
//!   the cache, `threads` sets the degree of parallelism for traversals
//!   and row-parallel operators (`1` = exact sequential execution);
//! * `EXPLAIN ANALYZE` executes a query with per-operator statistics
//!   collection and renders the plan annotated with row counts and wall
//!   time.
//!
//! Sessions are cheap; open one per connection/thread. The shared
//! [`Database`] itself is thread-safe.
//!
//! ```
//! use gsql_core::Database;
//! use gsql_storage::Value;
//!
//! let db = Database::new();
//! let session = db.session();
//! session.execute("CREATE TABLE friends (src INTEGER, dst INTEGER)").unwrap();
//! session.execute("INSERT INTO friends VALUES (1, 2), (2, 3)").unwrap();
//! let stmt = session
//!     .prepare("SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)")
//!     .unwrap();
//! for dst in [2i64, 3] {
//!     let t = stmt.query(&session, &[Value::Int(1), Value::Int(dst)]).unwrap();
//!     assert_eq!(t.row_count(), 1);
//! }
//! // One bind (the prepare), two cache hits.
//! assert_eq!(session.cache_stats().misses, 1);
//! assert_eq!(session.cache_stats().hits, 2);
//! ```

use crate::bind::binder::Binder;
use crate::context::{Deadline, ExecContext, SessionSettings};
use crate::database::{Database, QueryResult};
use crate::error::{bind_err, Error};
use crate::exec::executor::Executor;
use crate::optimize::optimize_with;
use crate::plan::LogicalPlan;
use gsql_obs::{
    EngineMetrics, QueryOutcome, QueryVerb, SlowQueryRecord, SpanId, TraceCollector, TraceValue,
    NO_SPAN,
};
use gsql_parser::{ast, parse_sql, parse_statement};
use gsql_storage::{ColumnDef, DataType, Schema, Table, Value};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type Result<T> = std::result::Result<T, Error>;

/// Counters of a session's plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Executions served from a cached plan (no parse/bind/optimize).
    pub hits: u64,
    /// Plans built from scratch (and cached, capacity permitting).
    pub misses: u64,
    /// Cached plans discarded because the schema version moved on.
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// One cached, fully optimized plan.
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<LogicalPlan>,
    /// [`Database::schema_version`] at bind time.
    schema_version: u64,
    /// LRU tick of the last use.
    last_used: u64,
}

/// A small LRU of bound+optimized plans, keyed by SQL text.
#[derive(Debug, Default)]
struct PlanCache {
    map: HashMap<String, CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    /// Counter values already pushed to the engine metrics registry (see
    /// [`PlanCache::drain_unsynced`]).
    synced: (u64, u64, u64),
}

impl PlanCache {
    /// A fresh (version-matching) cached plan for `sql`, if any. A stale
    /// entry is discarded and counted as an invalidation.
    fn get(&mut self, sql: &str, schema_version: u64) -> Option<Arc<LogicalPlan>> {
        match self.map.get_mut(sql) {
            Some(entry) if entry.schema_version == schema_version => {
                self.tick += 1;
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                self.map.remove(sql);
                self.invalidations += 1;
                None
            }
            None => None,
        }
    }

    /// Record a freshly built plan (a miss), evicting the least recently
    /// used entry when over capacity. `capacity == 0` disables storage but
    /// still counts the miss.
    fn insert(
        &mut self,
        sql: String,
        plan: Arc<LogicalPlan>,
        schema_version: u64,
        capacity: usize,
    ) {
        self.misses += 1;
        if capacity == 0 {
            return;
        }
        while self.map.len() >= capacity && !self.map.contains_key(&sql) {
            let Some(victim) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
        }
        self.tick += 1;
        self.map.insert(sql, CacheEntry { plan, schema_version, last_used: self.tick });
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    /// Evict least-recently-used entries until at most `capacity` remain
    /// (used when `plan_cache_size` is lowered mid-session).
    fn shrink_to(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            let Some(victim) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
        }
    }

    fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.map.len(),
        }
    }

    /// Counter movement since the last drain, plus the current entry
    /// count. Sessions push these deltas into the engine metrics registry
    /// after each plan lookup; draining under the cache's own lock (shared
    /// caches) makes the sync exact even with concurrent sessions.
    fn drain_unsynced(&mut self) -> (u64, u64, u64, usize) {
        let (h, m, i) = self.synced;
        let delta = (
            self.hits.saturating_sub(h),
            self.misses.saturating_sub(m),
            self.invalidations.saturating_sub(i),
            self.map.len(),
        );
        self.synced = (self.hits, self.misses, self.invalidations);
        delta
    }
}

/// A thread-safe plan cache shared by any number of sessions over one
/// [`Database`] — the serving tier's cache: N server worker sessions bind
/// and optimize a given query text once, and every later request (from any
/// session) executes the cached plan.
///
/// Unlike the session-local cache, entries are keyed by the SQL text
/// **plus the plan-shaping settings** (`graph_index`, `path_index`), so
/// sessions running with different planning flags never share a plan that
/// was optimized under the other configuration. Invalidation is the same
/// schema-version check as the local cache.
///
/// Obtain the database-wide instance with [`Database::shared_plan_cache`];
/// open sessions that use it with [`Database::shared_session`].
#[derive(Debug, Default)]
pub struct SharedPlanCache {
    inner: Mutex<PlanCache>,
}

impl SharedPlanCache {
    /// An empty shared cache.
    pub fn new() -> SharedPlanCache {
        SharedPlanCache::default()
    }

    /// Global counters across every session using this cache.
    pub fn stats(&self) -> PlanCacheStats {
        self.lock().stats()
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Compose the cache key: plan-shaping flags + SQL text.
    fn key(sql: &str, settings: &SessionSettings) -> String {
        format!("g{}p{}|{sql}", settings.graph_index as u8, settings.path_index as u8)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCache> {
        self.inner.lock().expect("shared plan cache poisoned")
    }

    fn get(&self, sql: &str, settings: &SessionSettings, version: u64) -> Option<Arc<LogicalPlan>> {
        self.lock().get(&Self::key(sql, settings), version)
    }

    fn insert(
        &self,
        sql: &str,
        settings: &SessionSettings,
        plan: Arc<LogicalPlan>,
        version: u64,
        capacity: usize,
    ) {
        self.lock().insert(Self::key(sql, settings), plan, version, capacity);
    }
}

/// The plan cache a session consults: its own, or the database-wide shared
/// one (server worker sessions).
#[derive(Debug)]
enum CacheSlot {
    Local(RefCell<PlanCache>),
    Shared(Arc<SharedPlanCache>),
}

impl CacheSlot {
    fn get(&self, sql: &str, settings: &SessionSettings, version: u64) -> Option<Arc<LogicalPlan>> {
        match self {
            CacheSlot::Local(c) => c.borrow_mut().get(sql, version),
            CacheSlot::Shared(c) => c.get(sql, settings, version),
        }
    }

    fn insert(
        &self,
        sql: &str,
        settings: &SessionSettings,
        plan: Arc<LogicalPlan>,
        version: u64,
        capacity: usize,
    ) {
        match self {
            CacheSlot::Local(c) => c.borrow_mut().insert(sql.to_string(), plan, version, capacity),
            CacheSlot::Shared(c) => c.insert(sql, settings, plan, version, capacity),
        }
    }

    /// Count a plan that was built but not keyed (no SQL text).
    fn count_miss(&self) {
        match self {
            CacheSlot::Local(c) => c.borrow_mut().misses += 1,
            CacheSlot::Shared(c) => c.lock().misses += 1,
        }
    }

    /// A plan-shaping setting changed. The local cache is keyed by SQL text
    /// alone, so its plans are stale — drop them. Shared-cache keys carry
    /// the plan-shaping flags, so other sessions' entries stay valid and
    /// nothing needs clearing.
    fn planning_setting_changed(&self) {
        if let CacheSlot::Local(c) = self {
            c.borrow_mut().clear();
        }
    }

    fn shrink_to(&self, capacity: usize) {
        match self {
            CacheSlot::Local(c) => c.borrow_mut().shrink_to(capacity),
            CacheSlot::Shared(c) => c.lock().shrink_to(capacity),
        }
    }

    fn stats(&self) -> PlanCacheStats {
        match self {
            CacheSlot::Local(c) => c.borrow().stats(),
            CacheSlot::Shared(c) => c.stats(),
        }
    }

    /// Push counter movement since the last sync into the engine metrics.
    /// The entries gauge tracks the shared (database-wide) cache only —
    /// per-session local caches are additive on the counters but have no
    /// single meaningful entry count.
    fn sync_metrics(&self, metrics: &EngineMetrics) {
        let (hits, misses, invalidations, entries) = match self {
            CacheSlot::Local(c) => c.borrow_mut().drain_unsynced(),
            CacheSlot::Shared(c) => c.lock().drain_unsynced(),
        };
        metrics.plan_cache_hits.add(hits);
        metrics.plan_cache_misses.add(misses);
        metrics.plan_cache_invalidations.add(invalidations);
        if matches!(self, CacheSlot::Shared(_)) {
            metrics.plan_cache_entries.set(entries as i64);
        }
    }
}

/// A parsed statement bound to no particular session, executable many times
/// with different `?` parameter values.
///
/// Produced by [`Session::prepare`] (which also pre-plans queries into the
/// session's cache) or [`Database::prepare`] (parse only). Executing a
/// prepared *query* through a session consults that session's plan cache:
/// repeated executions skip the whole frontend.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: String,
    statement: Arc<ast::Statement>,
}

impl PreparedStatement {
    pub(crate) fn parse(sql: &str) -> Result<PreparedStatement> {
        Ok(PreparedStatement { sql: sql.to_string(), statement: Arc::new(parse_statement(sql)?) })
    }

    /// The original SQL text (the plan-cache key).
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Execute in `session` with parameter values for each `?`, in textual
    /// order.
    pub fn execute(&self, session: &Session<'_>, params: &[Value]) -> Result<QueryResult> {
        session.run_statement(Some(&self.sql), &self.statement, params)
    }

    /// Execute and unwrap the result set.
    pub fn query(&self, session: &Session<'_>, params: &[Value]) -> Result<Arc<Table>> {
        self.execute(session, params)?.into_table()
    }
}

/// A session over a shared [`Database`]: settings, plan cache, statement
/// execution. See the [module docs](self) for the full picture.
/// How many finished trace JSON documents a session retains.
const TRACE_RING: usize = 16;

#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    settings: RefCell<SessionSettings>,
    cache: CacheSlot,
    /// Finished trace documents (JSON), newest last, bounded at
    /// [`TRACE_RING`]. Populated only while `SET trace` is on.
    traces: RefCell<VecDeque<String>>,
    /// Parse wall time of the statement about to run (set by the entry
    /// points that parse), surfaced as the `parse_us` trace attribute.
    pending_parse_us: Cell<Option<u64>>,
    /// Plan fingerprint of the statement in flight, captured for the
    /// slow-query log (only computed while `slow_query_ms` is armed).
    pending_fingerprint: Cell<Option<u64>>,
}

impl<'db> Session<'db> {
    /// Open a session with its own plan cache. Equivalent to
    /// [`Database::session`].
    pub fn new(db: &'db Database) -> Session<'db> {
        Session {
            db,
            settings: RefCell::new(SessionSettings::default()),
            cache: CacheSlot::Local(RefCell::new(PlanCache::default())),
            traces: RefCell::new(VecDeque::new()),
            pending_parse_us: Cell::new(None),
            pending_fingerprint: Cell::new(None),
        }
    }

    /// Open a session that consults `cache` instead of a private one, so
    /// plans bound by any participating session serve all of them.
    /// Equivalent to [`Database::shared_session`] for the database-wide
    /// cache.
    pub fn with_shared_cache(db: &'db Database, cache: Arc<SharedPlanCache>) -> Session<'db> {
        Session {
            db,
            settings: RefCell::new(SessionSettings::default()),
            cache: CacheSlot::Shared(cache),
            traces: RefCell::new(VecDeque::new()),
            pending_parse_us: Cell::new(None),
            pending_fingerprint: Cell::new(None),
        }
    }

    /// The underlying shared database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// A snapshot of the current session settings.
    pub fn settings(&self) -> SessionSettings {
        self.settings.borrow().clone()
    }

    /// Change a setting programmatically (same as `SET name = value`).
    pub fn set(&self, name: &str, value: &str) -> Result<()> {
        self.settings.borrow_mut().set(name, value)?;
        // Only graph_index and path_index influence plan *shape*; dropping
        // the cache for execution-time knobs (e.g. row_limit) would throw
        // away good plans. Lowering plan_cache_size evicts down right away
        // so the memory the caller asked to reclaim is actually released.
        if name.eq_ignore_ascii_case("graph_index") || name.eq_ignore_ascii_case("path_index") {
            self.cache.planning_setting_changed();
        } else if name.eq_ignore_ascii_case("plan_cache_size") {
            let capacity = self.settings.borrow().plan_cache_size;
            self.cache.shrink_to(capacity);
        }
        Ok(())
    }

    /// Read a setting's current value (same as `SHOW name`).
    pub fn setting(&self, name: &str) -> Result<String> {
        self.settings.borrow().get(name)
    }

    /// Plan-cache counters — of this session's private cache, or the
    /// global counters when the session uses a shared cache.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// The trace JSON of the most recently traced statement, when `SET
    /// trace = on|verbose` was in effect for it. The session retains the
    /// last [`TRACE_RING`] documents.
    pub fn last_trace_json(&self) -> Option<String> {
        self.traces.borrow().back().cloned()
    }

    /// Every retained trace document, oldest first.
    pub fn trace_history(&self) -> Vec<String> {
        self.traces.borrow().iter().cloned().collect()
    }

    /// Execute a single statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &[])
    }

    /// Execute a single statement with `?` parameter values. The SQL text
    /// doubles as the plan-cache key, so repeating the same query text
    /// skips parse/bind/optimize.
    pub fn execute_with_params(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let t0 = Instant::now();
        let statement = parse_statement(sql)?;
        self.pending_parse_us.set(Some(t0.elapsed().as_micros() as u64));
        self.run_statement(Some(sql), &statement, params)
    }

    /// Execute a single statement under an explicit wall-clock budget,
    /// overriding the `timeout_ms` setting when the explicit budget is
    /// tighter. The deadline is enforced inside execution — checked before
    /// every operator and between traversal groups — so a long statement
    /// is interrupted with [`Error::Timeout`] rather than merely reported
    /// late after it finishes.
    pub fn execute_with_timeout(
        &self,
        sql: &str,
        params: &[Value],
        timeout: Duration,
    ) -> Result<QueryResult> {
        let t0 = Instant::now();
        let statement = parse_statement(sql)?;
        self.pending_parse_us.set(Some(t0.elapsed().as_micros() as u64));
        let limit_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
        let explicit = Deadline::starting_now(limit_ms);
        let deadline = match self.settings.borrow().timeout_ms.map(Deadline::starting_now) {
            Some(configured) if configured.at < explicit.at => configured,
            _ => explicit,
        };
        self.run_statement_at(Some(sql), &statement, params, Some(deadline))
    }

    /// Execute a semicolon-separated script, returning one result per
    /// statement. Stops at the first error.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        let statements = parse_sql(sql)?;
        let mut results = Vec::with_capacity(statements.len());
        for s in &statements {
            // Key queries by their canonical rendering so re-running a
            // script (e.g. from an interactive shell) hits the plan cache.
            let key = matches!(s, ast::Statement::Query(_)).then(|| s.to_string());
            results.push(self.run_statement(key.as_deref(), s, &[])?);
        }
        Ok(results)
    }

    /// Run a query and return its result set.
    pub fn query(&self, sql: &str) -> Result<Arc<Table>> {
        self.execute(sql)?.into_table()
    }

    /// Run a query with parameters and return its result set.
    pub fn query_with_params(&self, sql: &str, params: &[Value]) -> Result<Arc<Table>> {
        self.execute_with_params(sql, params)?.into_table()
    }

    /// Prepare a statement: parse it, and — for queries — bind, optimize
    /// and cache the plan now, so later executions only execute.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        let prepared = PreparedStatement::parse(sql)?;
        if let ast::Statement::Query(q) = prepared.statement.as_ref() {
            self.cached_plan(Some(sql), q, &[], None)?;
        }
        Ok(prepared)
    }

    /// Parse, bind and optimize a query under the session's settings,
    /// returning its logical plan (what `EXPLAIN` renders).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        match parse_statement(sql)? {
            ast::Statement::Query(q)
            | ast::Statement::Explain(q)
            | ast::Statement::ExplainAnalyze(q) => {
                let ctx = self.ctx(&[], None);
                let plan = Binder::new(&ctx).bind_query(&q)?;
                Ok(optimize_with(plan, &ctx))
            }
            _ => Err(bind_err!("plan() expects a query")),
        }
    }

    /// Build the per-statement execution context.
    fn ctx<'a>(&self, params: &'a [Value], deadline: Option<Deadline>) -> ExecContext<'a>
    where
        'db: 'a,
    {
        ExecContext::new(self.db.catalog(), params, Some(self.db.graph_indexes()))
            .with_path_indexes(self.db.path_indexes())
            .with_settings(self.settings.borrow().clone())
            .with_deadline(deadline)
            .with_metrics(Some(Arc::clone(self.db.metrics())))
    }

    /// The bound+optimized plan for a query — from the session cache when
    /// `sql_key` is given and the entry is fresh, otherwise built (and
    /// cached) now. `trace` is the collector plus the statement span to
    /// attach bind/optimize spans under, when tracing.
    fn cached_plan(
        &self,
        sql_key: Option<&str>,
        q: &ast::Query,
        params: &[Value],
        trace: Option<(&TraceCollector, SpanId)>,
    ) -> Result<Arc<LogicalPlan>> {
        let settings = self.settings.borrow().clone();
        let capacity = settings.plan_cache_size;
        let schema_version = self.db.schema_version();
        if let (Some(sql), true) = (sql_key, capacity > 0) {
            if let Some(plan) = self.cache.get(sql, &settings, schema_version) {
                self.cache.sync_metrics(self.db.metrics());
                if let Some((t, root)) = trace {
                    t.attr(root, "plan_cache", TraceValue::from("hit"));
                }
                return Ok(plan);
            }
        }
        let ctx = self.ctx(params, None);
        let span = trace.map(|(t, root)| (t, t.begin(root, "bind")));
        let plan = Binder::new(&ctx).bind_query(q)?;
        if let Some((t, id)) = span {
            t.end(id);
        }
        let span = trace.map(|(t, root)| (t, t.begin(root, "optimize")));
        let plan = Arc::new(optimize_with(plan, &ctx));
        if let Some((t, id)) = span {
            t.end(id);
        }
        match sql_key {
            Some(sql) => {
                self.cache.insert(sql, &settings, Arc::clone(&plan), schema_version, capacity)
            }
            None => self.cache.count_miss(),
        }
        self.cache.sync_metrics(self.db.metrics());
        Ok(plan)
    }

    /// Execute one statement, deriving the deadline (if any) from the
    /// session's `timeout_ms` setting.
    pub(crate) fn run_statement(
        &self,
        sql_key: Option<&str>,
        statement: &ast::Statement,
        params: &[Value],
    ) -> Result<QueryResult> {
        let deadline = self.settings.borrow().timeout_ms.map(Deadline::starting_now);
        self.run_statement_at(sql_key, statement, params, deadline)
    }

    /// Execute one statement under an already-started deadline: the
    /// observability wrapper around the dispatcher. Times the statement,
    /// opens the statement trace span when tracing is on, records the
    /// verb/outcome/latency metrics, and arms the slow-query log.
    fn run_statement_at(
        &self,
        sql_key: Option<&str>,
        statement: &ast::Statement,
        params: &[Value],
        deadline: Option<Deadline>,
    ) -> Result<QueryResult> {
        let t0 = Instant::now();
        let parse_us = self.pending_parse_us.take();
        self.pending_fingerprint.set(None);
        let verb = statement_verb(statement);
        let level = self.settings.borrow().trace;
        let collector = level.enabled().then(|| Arc::new(TraceCollector::new(level)));
        let root = match &collector {
            Some(t) => {
                let id = t.begin(NO_SPAN, "statement");
                t.attr(id, "verb", TraceValue::from(verb.as_str()));
                if let Some(us) = parse_us {
                    t.attr(id, "parse_us", TraceValue::Int(us as i64));
                }
                id
            }
            None => NO_SPAN,
        };
        let result =
            self.dispatch_statement(sql_key, statement, params, deadline, collector.as_ref(), root);
        let elapsed = t0.elapsed();
        let outcome = match &result {
            Ok(_) => QueryOutcome::Ok,
            Err(Error::Timeout { .. }) => QueryOutcome::Timeout,
            Err(_) => QueryOutcome::Error,
        };
        self.db.metrics().record_query(verb, outcome, elapsed.as_micros() as u64);
        if let Some(t) = &collector {
            t.end_with(root, vec![("outcome".to_string(), TraceValue::from(outcome.as_str()))]);
            let mut ring = self.traces.borrow_mut();
            if ring.len() >= TRACE_RING {
                ring.pop_front();
            }
            ring.push_back(t.to_json());
        }
        let armed = self.settings.borrow().slow_query_ms;
        if let Some(threshold_ms) = armed {
            if elapsed >= Duration::from_millis(threshold_ms) {
                self.db.slow_log().push(SlowQueryRecord {
                    unix_us: std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_micros() as u64)
                        .unwrap_or(0),
                    sql_hash: hex_hash(sql_key.unwrap_or("")),
                    plan_fingerprint: self
                        .pending_fingerprint
                        .take()
                        .map(|h| format!("{h:016x}"))
                        .unwrap_or_default(),
                    verb: verb.as_str().to_string(),
                    outcome: outcome.as_str().to_string(),
                    elapsed_us: elapsed.as_micros() as u64,
                    settings: self
                        .settings
                        .borrow()
                        .entries()
                        .into_iter()
                        .map(|(n, v)| (n.to_string(), v))
                        .collect(),
                    spans: collector.as_ref().map(|t| t.root_summary()).unwrap_or_default(),
                });
            }
        }
        result
    }

    /// Dispatch one statement, bracketing mutating statements on a durable
    /// database in the shared commit lock: apply, then append the WAL
    /// record — so a statement is logged only after it succeeded, and a
    /// concurrent `CHECKPOINT` (which takes the lock exclusively) can never
    /// split a mutation across the snapshot/WAL rotation boundary.
    fn dispatch_statement(
        &self,
        sql_key: Option<&str>,
        statement: &ast::Statement,
        params: &[Value],
        deadline: Option<Deadline>,
        collector: Option<&Arc<TraceCollector>>,
        root: SpanId,
    ) -> Result<QueryResult> {
        if statement_is_mutating(statement) {
            if let Some(guard) = self.db.commit_guard() {
                // Reject parameters the WAL cannot encode *before* the
                // statement applies, so the log never diverges from state.
                if !crate::persist::params_are_loggable(params) {
                    return Err(bind_err!(
                        "path-valued parameters cannot be passed to a mutating statement \
                         on a durable database"
                    ));
                }
                let result =
                    self.dispatch_inner(sql_key, statement, params, deadline, collector, root)?;
                self.db.log_statement(&statement.to_string(), params)?;
                drop(guard);
                return Ok(result);
            }
        }
        self.dispatch_inner(sql_key, statement, params, deadline, collector, root)
    }

    /// The statement dispatcher proper. `collector`/`root` carry the trace
    /// context when `SET trace` is on (`root` is the statement span).
    fn dispatch_inner(
        &self,
        sql_key: Option<&str>,
        statement: &ast::Statement,
        params: &[Value],
        deadline: Option<Deadline>,
        collector: Option<&Arc<TraceCollector>>,
        root: SpanId,
    ) -> Result<QueryResult> {
        let trace = collector.map(|t| (t.as_ref(), root));
        match statement {
            ast::Statement::Query(q) => {
                let plan = self.cached_plan(sql_key, q, params, trace)?;
                if self.settings.borrow().slow_query_ms.is_some() {
                    self.pending_fingerprint.set(Some(plan_fingerprint(&plan)));
                }
                let exec_span = collector.map(|t| (t, t.begin(root, "execute")));
                let mut ctx = self.ctx(params, deadline);
                if let Some((t, id)) = &exec_span {
                    ctx = ctx.with_trace(Some(Arc::clone(t)), *id);
                }
                let table = Executor::new(&ctx).execute(&plan);
                if let Some((t, id)) = exec_span {
                    t.end(id);
                }
                Ok(QueryResult::Table(table?))
            }
            ast::Statement::Explain(q) => {
                let ctx = self.ctx(params, deadline);
                let plan = Binder::new(&ctx).bind_query(q)?;
                let plan = optimize_with(plan, &ctx);
                let text =
                    crate::exec::pipeline::explain_with_pipelines(&plan, ctx.pipeline_enabled());
                text_table("plan", text.lines())
            }
            ast::Statement::ExplainAnalyze(q) => {
                let ctx = self.ctx(params, deadline).with_stats();
                let plan = Binder::new(&ctx).bind_query(q)?;
                let plan = optimize_with(plan, &ctx);
                let t0 = std::time::Instant::now();
                let result = Executor::new(&ctx).execute(&plan)?;
                let total = t0.elapsed();
                let stats = ctx.take_stats();
                let mut lines: Vec<String> = stats.render().lines().map(str::to_string).collect();
                lines.push(format!("Result: {} row(s) in {:?}", result.row_count(), total));
                text_table("plan", lines.iter().map(String::as_str))
            }
            ast::Statement::Set { name, value } => {
                self.set(name, &set_value_text(value))?;
                Ok(QueryResult::Ok)
            }
            ast::Statement::Show { name } => {
                let settings = self.settings.borrow();
                let entries: Vec<(String, String)> = match name {
                    Some(n) => vec![(n.to_ascii_lowercase(), settings.get(n)?)],
                    None => {
                        settings.entries().into_iter().map(|(n, v)| (n.to_string(), v)).collect()
                    }
                };
                drop(settings);
                let mut t = Table::empty(Schema::new(vec![
                    ColumnDef::not_null("setting", DataType::Varchar),
                    ColumnDef::not_null("value", DataType::Varchar),
                ]));
                for (n, v) in entries {
                    t.append_row(vec![Value::from(n), Value::from(v)]).map_err(Error::Storage)?;
                }
                Ok(QueryResult::Table(Arc::new(t)))
            }
            ast::Statement::Describe { name } => {
                let table = self.db.catalog().get(name).map_err(Error::Storage)?;
                let mut t = Table::empty(Schema::new(vec![
                    ColumnDef::not_null("column", DataType::Varchar),
                    ColumnDef::not_null("type", DataType::Varchar),
                    ColumnDef::not_null("nullable", DataType::Bool),
                ]));
                for def in table.schema().columns() {
                    t.append_row(vec![
                        Value::from(def.name.clone()),
                        Value::from(def.ty.sql_name()),
                        Value::Bool(def.nullable),
                    ])
                    .map_err(Error::Storage)?;
                }
                Ok(QueryResult::Table(Arc::new(t)))
            }
            ast::Statement::CreateTable { name, columns } => {
                self.db.create_table_from_ast(name, columns)
            }
            ast::Statement::DropTable { name } => self.db.drop_table_stmt(name),
            ast::Statement::Insert { table, columns, source } => {
                let ctx = self.ctx(params, deadline);
                self.db.run_insert(&ctx, table, columns.as_deref(), source)
            }
            ast::Statement::Delete { table, filter } => {
                let ctx = self.ctx(params, deadline);
                self.db.run_delete(&ctx, table, filter.as_ref())
            }
            ast::Statement::Update { table, assignments, filter } => {
                let ctx = self.ctx(params, deadline);
                self.db.run_update(&ctx, table, assignments, filter.as_ref())
            }
            ast::Statement::CreateGraphIndex { name, table, src_col, dst_col } => {
                let threads = self.settings.borrow().threads;
                self.db.create_graph_index_stmt(name, table, src_col, dst_col, threads)
            }
            ast::Statement::DropGraphIndex { name } => self.db.drop_graph_index_stmt(name),
            ast::Statement::CreatePathIndex {
                name,
                table,
                src_col,
                dst_col,
                weight_col,
                method,
                if_not_exists,
            } => {
                let threads = self.settings.borrow().threads;
                let kind = match method {
                    ast::PathIndexMethod::Landmarks(k) => {
                        crate::path_index::PathIndexKind::Landmarks(*k)
                    }
                    ast::PathIndexMethod::Contraction => {
                        crate::path_index::PathIndexKind::Contraction
                    }
                };
                self.db.create_path_index_stmt(
                    name,
                    table,
                    src_col,
                    dst_col,
                    weight_col.as_deref(),
                    kind,
                    *if_not_exists,
                    threads,
                )
            }
            ast::Statement::DropPathIndex { name, if_exists } => {
                self.db.drop_path_index_stmt(name, *if_exists)
            }
            ast::Statement::Checkpoint => {
                // Not dispatched under the shared commit lock (see
                // `dispatch_statement`): `Database::checkpoint` takes the
                // commit lock exclusively, and holding the shared side here
                // would self-deadlock.
                let line = match self.db.checkpoint()? {
                    Some(epoch) => format!("checkpoint written (epoch {epoch})"),
                    None => "checkpoint skipped (in-memory database)".to_string(),
                };
                text_table("checkpoint", std::iter::once(line.as_str()))
            }
            ast::Statement::ShowPathIndexes => {
                let mut t = Table::empty(Schema::new(vec![
                    ColumnDef::not_null("name", DataType::Varchar),
                    ColumnDef::not_null("table", DataType::Varchar),
                    ColumnDef::not_null("kind", DataType::Varchar),
                    ColumnDef::not_null("status", DataType::Varchar),
                ]));
                for row in self.db.path_indexes().list(self.db.catalog()) {
                    t.append_row(vec![
                        Value::from(row.name),
                        Value::from(row.table),
                        Value::from(row.kind),
                        Value::from(row.status),
                    ])
                    .map_err(Error::Storage)?;
                }
                Ok(QueryResult::Table(Arc::new(t)))
            }
        }
    }
}

/// The metrics verb a statement is recorded under.
fn statement_verb(statement: &ast::Statement) -> QueryVerb {
    match statement {
        ast::Statement::Query(_) => QueryVerb::Select,
        ast::Statement::Insert { .. } => QueryVerb::Insert,
        ast::Statement::Update { .. } => QueryVerb::Update,
        ast::Statement::Delete { .. } => QueryVerb::Delete,
        ast::Statement::CreateTable { .. }
        | ast::Statement::DropTable { .. }
        | ast::Statement::CreateGraphIndex { .. }
        | ast::Statement::DropGraphIndex { .. }
        | ast::Statement::CreatePathIndex { .. }
        | ast::Statement::DropPathIndex { .. } => QueryVerb::Ddl,
        ast::Statement::Explain(_)
        | ast::Statement::ExplainAnalyze(_)
        | ast::Statement::Set { .. }
        | ast::Statement::Show { .. }
        | ast::Statement::Describe { .. }
        | ast::Statement::ShowPathIndexes
        | ast::Statement::Checkpoint => QueryVerb::Utility,
    }
}

/// Statements whose success must reach the WAL on a durable database.
fn statement_is_mutating(statement: &ast::Statement) -> bool {
    matches!(
        statement,
        ast::Statement::Insert { .. }
            | ast::Statement::Update { .. }
            | ast::Statement::Delete { .. }
            | ast::Statement::CreateTable { .. }
            | ast::Statement::DropTable { .. }
            | ast::Statement::CreateGraphIndex { .. }
            | ast::Statement::DropGraphIndex { .. }
            | ast::Statement::CreatePathIndex { .. }
            | ast::Statement::DropPathIndex { .. }
    )
}

/// Hex hash of arbitrary text (the slow-log `sql_hash`: correlates repeat
/// offenders without logging raw query text).
fn hex_hash(text: &str) -> String {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut h);
    format!("{:016x}", h.finish())
}

/// Structural fingerprint of a bound plan (hash of its debug rendering) —
/// two slow-log records with equal fingerprints executed the same plan
/// shape. Only computed when the slow-query log is armed.
fn plan_fingerprint(plan: &LogicalPlan) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{plan:?}").hash(&mut h);
    h.finish()
}

/// Render a `SET` value as the settings-layer text.
fn set_value_text(value: &ast::SetValue) -> String {
    match value {
        ast::SetValue::Ident(s) => s.clone(),
        ast::SetValue::Literal(ast::Literal::Int(v)) => v.to_string(),
        ast::SetValue::Literal(ast::Literal::Float(v)) => v.to_string(),
        ast::SetValue::Literal(ast::Literal::Bool(v)) => v.to_string(),
        ast::SetValue::Literal(ast::Literal::String(s)) => s.clone(),
        ast::SetValue::Literal(ast::Literal::Date(s)) => s.clone(),
        ast::SetValue::Literal(ast::Literal::Null) => "null".to_string(),
    }
}

/// One-column VARCHAR result table from text lines.
fn text_table<'l>(column: &str, lines: impl Iterator<Item = &'l str>) -> Result<QueryResult> {
    let mut t = Table::empty(Schema::new(vec![ColumnDef::not_null(column, DataType::Varchar)]));
    for line in lines {
        t.append_row(vec![Value::from(line)]).map_err(Error::Storage)?;
    }
    Ok(QueryResult::Table(Arc::new(t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_edges() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE e (s INTEGER NOT NULL, d INTEGER NOT NULL); \
             INSERT INTO e VALUES (1, 2), (2, 3), (3, 4);",
        )
        .unwrap();
        db
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = PlanCache::default();
        let plan = Arc::new(LogicalPlan::SingleRow);
        cache.insert("a".into(), Arc::clone(&plan), 0, 2);
        cache.insert("b".into(), Arc::clone(&plan), 0, 2);
        assert!(cache.get("a", 0).is_some()); // refresh a
        cache.insert("c".into(), Arc::clone(&plan), 0, 2); // evicts b
        assert!(cache.get("b", 0).is_none());
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn stale_entries_are_invalidated() {
        let mut cache = PlanCache::default();
        let plan = Arc::new(LogicalPlan::SingleRow);
        cache.insert("q".into(), plan, 7, 4);
        assert!(cache.get("q", 8).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn session_set_show_roundtrip() {
        let db = Database::new();
        let session = db.session();
        session.execute("SET row_limit = 9").unwrap();
        let t = session.query("SHOW row_limit").unwrap();
        assert_eq!(t.row(0)[1], Value::from("9"));
        let all = session.query("SHOW ALL").unwrap();
        assert_eq!(all.row_count(), SessionSettings::NAMES.len());
        assert!(session.execute("SET bogus = 1").is_err());
    }

    #[test]
    fn repeated_text_hits_cache_even_without_prepare() {
        let db = db_with_edges();
        let session = db.session();
        let sql = "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER e EDGE (s, d)";
        for i in 0..3 {
            let t = session.query_with_params(sql, &[Value::Int(1), Value::Int(3)]).unwrap();
            assert_eq!(t.row(0)[0], Value::Int(2), "iteration {i}");
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn plan_cache_size_zero_disables_caching() {
        let db = db_with_edges();
        let session = db.session();
        session.set("plan_cache_size", "0").unwrap();
        let sql = "SELECT 1 WHERE 1 REACHES 2 OVER e EDGE (s, d)";
        session.query(sql).unwrap();
        session.query(sql).unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn row_limit_aborts_oversized_operators() {
        let db = db_with_edges();
        let session = db.session();
        session.execute("SET row_limit = 2").unwrap();
        let err = session.query("SELECT * FROM e").unwrap_err();
        assert!(err.to_string().contains("row limit exceeded"), "{err}");
        session.execute("SET row_limit = 0").unwrap();
        assert_eq!(session.query("SELECT * FROM e").unwrap().row_count(), 3);
    }
}
