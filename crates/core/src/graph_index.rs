//! Graph indices — the paper's §6 future work, implemented.
//!
//! > "We are investigating how to expand our system with the option of
//! > creating special 'graph' indices. These indices will store the full
//! > graph, ready to be used when a query matches the edge table that
//! > generated the graph. Nevertheless, they also need to be amenable to
//! > the updates on the underlying tables."
//!
//! A graph index is created with
//! `CREATE GRAPH INDEX name ON table EDGE (src, dst)` and caches the
//! [`MaterializedGraph`] (snapshot + dictionary + CSR) for that base table.
//! The cache is keyed on the catalog's per-table **version counter**: any
//! INSERT/DELETE/UPDATE bumps the version, and the next query that needs
//! the graph rebuilds it (lazy invalidation).

use crate::error::{bind_err, Error};
use crate::exec::graph_op::{build_graph_with_threads, MaterializedGraph};
use gsql_storage::Catalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

type Result<T> = std::result::Result<T, Error>;

/// The persisted definition of one graph index (no cached graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GraphIndexSnapshot {
    /// Lowercased registry key.
    pub name: String,
    /// Lowercased indexed table.
    pub table: String,
    /// Source key column, as declared.
    pub src_col: String,
    /// Destination key column, as declared.
    pub dst_col: String,
}

/// One registered graph index.
#[derive(Debug)]
struct IndexEntry {
    table: String,
    src_col: String,
    dst_col: String,
    /// `(table version when built, the graph)`.
    cached: Option<(u64, Arc<MaterializedGraph>)>,
}

/// Registry of graph indices, keyed by index name.
///
/// The registry carries a monotonically increasing **version counter**,
/// bumped whenever the set of indices changes (create/drop). Session plan
/// caches use it — combined with the catalog's DDL version — to invalidate
/// cached plans whose index decisions went stale.
#[derive(Debug, Default)]
pub struct GraphIndexRegistry {
    inner: RwLock<HashMap<String, IndexEntry>>,
    version: AtomicU64,
}

impl GraphIndexRegistry {
    /// Empty registry.
    pub fn new() -> GraphIndexRegistry {
        GraphIndexRegistry::default()
    }

    /// The registry's structural version: bumped on every index create or
    /// drop. Used for plan-cache invalidation.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// The name of the index covering `(table, src_col, dst_col)`, if one
    /// is registered (planning-time lookup; names are case-insensitive).
    pub fn find_index(&self, table: &str, src_col: &str, dst_col: &str) -> Option<String> {
        let table_key = table.to_ascii_lowercase();
        let inner = self.inner.read().expect("registry lock poisoned");
        inner
            .iter()
            .find(|(_, e)| {
                e.table == table_key
                    && e.src_col.eq_ignore_ascii_case(src_col)
                    && e.dst_col.eq_ignore_ascii_case(dst_col)
            })
            .map(|(name, _)| name.clone())
    }

    /// Fetch the (fresh) graph of the index named `name`, rebuilding a
    /// stale cache entry with `threads` workers (a session's `threads`
    /// setting — `1` keeps the rebuild sequential; parallel builds are
    /// bit-identical). Returns `None` when the index no longer exists —
    /// callers fall back to building the graph from the base table.
    pub fn graph_by_name(
        &self,
        catalog: &Catalog,
        name: &str,
        threads: usize,
    ) -> Result<Option<Arc<MaterializedGraph>>> {
        let key = name.to_ascii_lowercase();
        let (table, src_col, dst_col) = {
            let inner = self.inner.read().expect("registry lock poisoned");
            let Some(entry) = inner.get(&key) else {
                return Ok(None);
            };
            let current = catalog.entry(&entry.table).map_err(Error::Storage)?;
            if let Some((version, graph)) = &entry.cached {
                if *version == current.version {
                    return Ok(Some(Arc::clone(graph)));
                }
            }
            (entry.table.clone(), entry.src_col.clone(), entry.dst_col.clone())
        };
        // Stale: rebuild outside the read lock.
        let entry = catalog.entry(&table).map_err(Error::Storage)?;
        let schema = entry.table.schema();
        let src_key = schema
            .index_of(&src_col)
            .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
        let dst_key = schema
            .index_of(&dst_col)
            .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
        let graph = Arc::new(build_graph_with_threads(
            Arc::clone(&entry.table),
            src_key,
            dst_key,
            threads,
        )?);
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(e) = inner.get_mut(&key) {
            // The index may have been dropped and recreated with a different
            // definition while we rebuilt; only stamp the cache if the entry
            // still describes the configuration this graph was built from.
            if e.table == table
                && e.src_col.eq_ignore_ascii_case(&src_col)
                && e.dst_col.eq_ignore_ascii_case(&dst_col)
            {
                e.cached = Some((entry.version, Arc::clone(&graph)));
            }
        }
        Ok(Some(graph))
    }

    /// Create an index and build its graph eagerly with `threads` workers.
    pub fn create_index(
        &self,
        catalog: &Catalog,
        name: &str,
        table: &str,
        src_col: &str,
        dst_col: &str,
        threads: usize,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let entry = catalog.entry(table).map_err(Error::Storage)?;
        let schema = entry.table.schema();
        let src_key = schema
            .index_of(src_col)
            .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
        let dst_key = schema
            .index_of(dst_col)
            .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
        let s_ty = schema.column(src_key).ty;
        let d_ty = schema.column(dst_key).ty;
        if s_ty != d_ty {
            return Err(bind_err!(
                "EDGE columns must have matching types, found {s_ty} and {d_ty}"
            ));
        }
        if !s_ty.is_vertex_key() {
            return Err(bind_err!("type {s_ty} cannot be used as a graph vertex key"));
        }
        let graph = Arc::new(build_graph_with_threads(
            Arc::clone(&entry.table),
            src_key,
            dst_key,
            threads,
        )?);

        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.contains_key(&key) {
            return Err(bind_err!("graph index '{name}' already exists"));
        }
        inner.insert(
            key,
            IndexEntry {
                table: table.to_ascii_lowercase(),
                src_col: src_col.to_string(),
                dst_col: dst_col.to_string(),
                cached: Some((entry.version, graph)),
            },
        );
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Drop an index.
    pub fn drop_index(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let removed = inner.remove(&key);
        drop(inner);
        if removed.is_some() {
            self.bump_version();
            Ok(())
        } else {
            Err(bind_err!("graph index '{name}' does not exist"))
        }
    }

    /// Remove every index defined over `table` (used by `DROP TABLE`).
    pub fn drop_indexes_for_table(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let before = inner.len();
        inner.retain(|_, e| e.table != key);
        let removed = before != inner.len();
        drop(inner);
        if removed {
            self.bump_version();
        }
    }

    /// Every registered index definition, sorted by name — what a snapshot
    /// checkpoint persists. Cached graphs are deliberately excluded: they
    /// are cheap to rebuild lazily relative to acceleration indexes.
    pub(crate) fn snapshot_entries(&self) -> Vec<GraphIndexSnapshot> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut entries: Vec<GraphIndexSnapshot> = inner
            .iter()
            .map(|(name, e)| GraphIndexSnapshot {
                name: name.clone(),
                table: e.table.clone(),
                src_col: e.src_col.clone(),
                dst_col: e.dst_col.clone(),
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Re-register an index definition from a snapshot without building its
    /// graph or bumping the structural version (the version counter is
    /// restored wholesale by [`GraphIndexRegistry::set_version`]). The first
    /// query rebuilds the graph lazily.
    pub(crate) fn restore_entry(&self, snap: GraphIndexSnapshot) {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner.insert(
            snap.name,
            IndexEntry {
                table: snap.table,
                src_col: snap.src_col,
                dst_col: snap.dst_col,
                cached: None,
            },
        );
    }

    /// Restore the structural version counter recorded in a snapshot, so a
    /// reopened database reports the same `schema_version` it had when the
    /// snapshot was taken.
    pub(crate) fn set_version(&self, version: u64) {
        self.version.store(version, Ordering::Release);
    }

    /// Names of all indices, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }

    /// Find a fresh graph for `(table, src, dst)`, rebuilding a stale cache
    /// entry (with `threads` workers) if there is a matching index. Returns
    /// `None` when no index covers this edge configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn lookup(
        &self,
        catalog: &Catalog,
        table: &str,
        src_col: &str,
        dst_col: &str,
        src_key: usize,
        dst_key: usize,
        threads: usize,
    ) -> Result<Option<Arc<MaterializedGraph>>> {
        let table_key = table.to_ascii_lowercase();
        let name = {
            let inner = self.inner.read().expect("registry lock poisoned");
            let found = inner.iter().find(|(_, e)| {
                e.table == table_key
                    && e.src_col.eq_ignore_ascii_case(src_col)
                    && e.dst_col.eq_ignore_ascii_case(dst_col)
            });
            match found {
                None => return Ok(None),
                Some((name, entry)) => {
                    let current = catalog.entry(table).map_err(Error::Storage)?;
                    if let Some((version, graph)) = &entry.cached {
                        if *version == current.version {
                            return Ok(Some(Arc::clone(graph)));
                        }
                    }
                    name.clone()
                }
            }
        };
        // Stale: rebuild outside the read lock.
        let entry = catalog.entry(table).map_err(Error::Storage)?;
        let graph = Arc::new(build_graph_with_threads(
            Arc::clone(&entry.table),
            src_key,
            dst_key,
            threads,
        )?);
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(e) = inner.get_mut(&name) {
            // Skip the write-back if the index was concurrently dropped and
            // recreated over a different edge configuration.
            if e.table == table_key
                && e.src_col.eq_ignore_ascii_case(src_col)
                && e.dst_col.eq_ignore_ascii_case(dst_col)
            {
                e.cached = Some((entry.version, Arc::clone(&graph)));
            }
        }
        Ok(Some(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> (Catalog, GraphIndexRegistry) {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "friends",
                Schema::new(vec![
                    ColumnDef::not_null("src", DataType::Int),
                    ColumnDef::not_null("dst", DataType::Int),
                ]),
            )
            .unwrap();
        catalog
            .update("friends", |t| {
                t.append_row(vec![Value::Int(1), Value::Int(2)])?;
                t.append_row(vec![Value::Int(2), Value::Int(3)])
            })
            .unwrap();
        (catalog, GraphIndexRegistry::new())
    }

    #[test]
    fn create_and_lookup() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        let g = reg.lookup(&catalog, "friends", "src", "dst", 0, 1, 2).unwrap().unwrap();
        assert_eq!(g.num_edges(), 2);
        // Same Arc is returned while the table is unchanged.
        let g2 = reg.lookup(&catalog, "friends", "src", "dst", 0, 1, 2).unwrap().unwrap();
        assert!(Arc::ptr_eq(&g, &g2));
    }

    #[test]
    fn lookup_misses_for_other_columns() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        // Reversed direction is a different graph: no index hit.
        assert!(reg.lookup(&catalog, "friends", "dst", "src", 1, 0, 2).unwrap().is_none());
        assert!(reg.lookup(&catalog, "other", "src", "dst", 0, 1, 2).unwrap().is_none());
    }

    #[test]
    fn table_mutation_invalidates() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        let g1 = reg.lookup(&catalog, "friends", "src", "dst", 0, 1, 2).unwrap().unwrap();
        catalog.update("friends", |t| t.append_row(vec![Value::Int(3), Value::Int(4)])).unwrap();
        let g2 = reg.lookup(&catalog, "friends", "src", "dst", 0, 1, 2).unwrap().unwrap();
        assert!(!Arc::ptr_eq(&g1, &g2));
        assert_eq!(g2.num_edges(), 3);
        // And the rebuilt graph is cached again.
        let g3 = reg.lookup(&catalog, "friends", "src", "dst", 0, 1, 2).unwrap().unwrap();
        assert!(Arc::ptr_eq(&g2, &g3));
    }

    #[test]
    fn version_bumps_on_create_and_drop() {
        let (catalog, reg) = setup();
        assert_eq!(reg.version(), 0);
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        assert_eq!(reg.version(), 1);
        reg.drop_index("gi").unwrap();
        assert_eq!(reg.version(), 2);
        // Dropping a missing index does not bump.
        assert!(reg.drop_index("gi").is_err());
        assert_eq!(reg.version(), 2);
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        reg.drop_indexes_for_table("friends");
        assert_eq!(reg.version(), 4);
        reg.drop_indexes_for_table("friends"); // nothing left: no bump
        assert_eq!(reg.version(), 4);
    }

    #[test]
    fn find_index_and_graph_by_name() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "GI", "friends", "src", "dst", 2).unwrap();
        assert_eq!(reg.find_index("FRIENDS", "SRC", "DST"), Some("gi".to_string()));
        assert_eq!(reg.find_index("friends", "dst", "src"), None);
        let g = reg.graph_by_name(&catalog, "gi", 2).unwrap().unwrap();
        assert_eq!(g.num_edges(), 2);
        // Mutation invalidates; graph_by_name rebuilds.
        catalog.update("friends", |t| t.append_row(vec![Value::Int(3), Value::Int(4)])).unwrap();
        let g2 = reg.graph_by_name(&catalog, "gi", 2).unwrap().unwrap();
        assert_eq!(g2.num_edges(), 3);
        // A dropped index yields None (executor falls back to scanning).
        reg.drop_index("gi").unwrap();
        assert!(reg.graph_by_name(&catalog, "gi", 2).unwrap().is_none());
    }

    #[test]
    fn validation_errors() {
        let (catalog, reg) = setup();
        assert!(reg.create_index(&catalog, "gi", "nope", "src", "dst", 2).is_err());
        assert!(reg.create_index(&catalog, "gi", "friends", "zzz", "dst", 2).is_err());
        reg.create_index(&catalog, "gi", "friends", "src", "dst", 2).unwrap();
        assert!(reg.create_index(&catalog, "GI", "friends", "src", "dst", 2).is_err());
        assert!(reg.drop_index("missing").is_err());
        reg.drop_index("gi").unwrap();
        assert!(reg.index_names().is_empty());
    }
}
