//! The query rewriter.
//!
//! Two rewrite rules reproduce the paper's optimizer behaviour (§3.1):
//!
//! 1. **Filter pushdown through cross products** — conjuncts that reference
//!    only one side of a cross product move to that side. This both prunes
//!    the product and exposes the shape the next rule needs.
//! 2. **Graph-join unfolding** — "graph joins are only unfolded in the
//!    query rewriter when it recognizes the sequence of a cross product
//!    plus a graph select": a `GraphSelect` whose input is a cross product,
//!    whose source expression only references the left side and whose
//!    destination only references the right side, becomes a `GraphJoin`
//!    that never materializes the product.

use crate::context::ExecContext;
use crate::plan::{BinaryOp, BoundExpr, JoinKind, LogicalPlan};

/// Optimize a plan (applies all rules bottom-up until a fixpoint).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    // Two passes reach the fixpoint for the rule set; a third is cheap
    // insurance for nested shapes.
    for _ in 0..3 {
        plan = rewrite(plan);
    }
    plan
}

/// Context-aware optimization: the structural rules of [`optimize`], plus
/// index selection — when the session's `path_index` setting is on, an
/// eligible graph select or graph join whose edge scan is covered by a
/// registered path index routes through
/// [`LogicalPlan::PathIndexedGraph`]; when `graph_index` is on, remaining
/// graph-operator edge scans covered by a graph index become
/// [`LogicalPlan::IndexedGraph`]. Both decisions are visible in `EXPLAIN`,
/// so `SET path_index = off` / `SET graph_index = off` change the rendered
/// plan.
pub fn optimize_with(plan: LogicalPlan, ctx: &ExecContext<'_>) -> LogicalPlan {
    let mut plan = optimize(plan);
    // Path indexes first: they subsume the graph index (same cached graph)
    // and add the goal-directed search, so an eligible plan prefers them.
    if let Some(registry) = ctx.path_indexes() {
        plan = annotate_path_indexed_edges(plan, registry);
    }
    match ctx.indexes() {
        Some(registry) => annotate_indexed_edges(plan, registry),
        None => plan,
    }
}

/// True when a `CHEAPEST SUM` spec can be answered by an acceleration
/// index with `weight_key`: no path requested (an accelerated search may
/// legitimately pick a different equal-cost path than Dijkstra, and
/// results must stay byte-identical), and the weight is either constant
/// (hop scaling — only valid over a hop index) or exactly the index's
/// integer weight column.
pub(crate) fn spec_accel_eligible(
    spec: &crate::plan::CheapestSpec,
    weight_key: Option<usize>,
) -> bool {
    if spec.want_path {
        return false;
    }
    if spec.weight.is_constant() {
        return weight_key.is_none();
    }
    matches!(
        spec.weight,
        BoundExpr::Column { index, ty: gsql_storage::DataType::Int } if Some(index) == weight_key
    )
}

/// Replace the edge scan of eligible graph operators with
/// [`LogicalPlan::PathIndexedGraph`]. Both shapes qualify: point-to-point
/// `GraphSelect` routes through the single-pair accelerated search, and
/// the batched many-to-many `GraphJoin` (and multi-pair selects) through
/// the bucket-based CH / multi-target ALT batch tier.
fn annotate_path_indexed_edges(
    plan: LogicalPlan,
    registry: &crate::path_index::PathIndexRegistry,
) -> LogicalPlan {
    use crate::path_index::PathIndexKind;
    let plan = map_children(plan, |p| annotate_path_indexed_edges(p, registry));
    let edge_to_index = |edge: Box<LogicalPlan>, src_key: usize, dst_key: usize, specs: &[_]| {
        if let LogicalPlan::Scan { table, schema: edge_schema } = edge.as_ref() {
            let src_name = &edge_schema.column(src_key).name;
            let dst_name = &edge_schema.column(dst_key).name;
            // Several indexes may cover this edge configuration
            // (hop-distance vs weighted, ALT vs CH). Of the ones whose
            // weight configuration serves every spec, a contraction
            // hierarchy beats a landmark index (near-constant search cones
            // vs goal-directed pruning); within a kind, name order keeps
            // the choice deterministic.
            let eligible: Vec<_> = registry
                .find_indexes(table, src_name, dst_name)
                .into_iter()
                .filter(|meta| specs.iter().all(|s| spec_accel_eligible(s, meta.weight_key)))
                .collect();
            let chosen = eligible
                .iter()
                .find(|meta| meta.kind == PathIndexKind::Contraction)
                .or_else(|| eligible.first());
            if let Some(meta) = chosen {
                return Box::new(LogicalPlan::PathIndexedGraph {
                    index: meta.name.clone(),
                    table: table.clone(),
                    kind: meta.kind,
                    schema: edge_schema.clone(),
                });
            }
        }
        edge
    };
    match plan {
        LogicalPlan::GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema } => {
            let edge = edge_to_index(edge, src_key, dst_key, &specs);
            LogicalPlan::GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema }
        }
        LogicalPlan::GraphJoin {
            left,
            right,
            edge,
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        } => {
            let edge = edge_to_index(edge, src_key, dst_key, &specs);
            LogicalPlan::GraphJoin {
                left,
                right,
                edge,
                src_key,
                dst_key,
                source,
                dest,
                specs,
                schema,
            }
        }
        other => other,
    }
}

/// Recursively replace indexed edge scans under graph operators.
fn annotate_indexed_edges(
    plan: LogicalPlan,
    registry: &crate::graph_index::GraphIndexRegistry,
) -> LogicalPlan {
    let plan = map_children(plan, |p| annotate_indexed_edges(p, registry));
    let edge_to_index = |edge: Box<LogicalPlan>, src_key: usize, dst_key: usize| {
        if let LogicalPlan::Scan { table, schema } = edge.as_ref() {
            let src_name = &schema.column(src_key).name;
            let dst_name = &schema.column(dst_key).name;
            if let Some(index) = registry.find_index(table, src_name, dst_name) {
                return Box::new(LogicalPlan::IndexedGraph {
                    index,
                    table: table.clone(),
                    schema: schema.clone(),
                });
            }
        }
        edge
    };
    match plan {
        LogicalPlan::GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema } => {
            LogicalPlan::GraphSelect {
                input,
                edge: edge_to_index(edge, src_key, dst_key),
                src_key,
                dst_key,
                source,
                dest,
                specs,
                schema,
            }
        }
        LogicalPlan::GraphJoin {
            left,
            right,
            edge,
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        } => LogicalPlan::GraphJoin {
            left,
            right,
            edge: edge_to_index(edge, src_key, dst_key),
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        },
        other => other,
    }
}

fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    // Recurse into children first (bottom-up).
    let plan = map_children(plan, rewrite);
    let plan = push_filter_into_cross(plan);
    graph_join_unfold(plan)
}

/// Apply `f` to every direct child plan.
fn map_children(plan: LogicalPlan, f: impl Fn(LogicalPlan) -> LogicalPlan + Copy) -> LogicalPlan {
    use LogicalPlan::*;
    match plan {
        SingleRow | Scan { .. } | IndexedGraph { .. } | PathIndexedGraph { .. } | Values { .. } => {
            plan
        }
        Filter { input, predicate } => Filter { input: Box::new(f(*input)), predicate },
        Project { input, exprs, schema } => Project { input: Box::new(f(*input)), exprs, schema },
        Join { left, right, kind, on, schema } => {
            Join { left: Box::new(f(*left)), right: Box::new(f(*right)), kind, on, schema }
        }
        GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema } => GraphSelect {
            input: Box::new(f(*input)),
            edge: Box::new(f(*edge)),
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        },
        GraphJoin { left, right, edge, src_key, dst_key, source, dest, specs, schema } => {
            GraphJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                edge: Box::new(f(*edge)),
                src_key,
                dst_key,
                source,
                dest,
                specs,
                schema,
            }
        }
        Aggregate { input, group, aggs, schema } => {
            Aggregate { input: Box::new(f(*input)), group, aggs, schema }
        }
        Sort { input, keys } => Sort { input: Box::new(f(*input)), keys },
        Limit { input, limit, offset } => Limit { input: Box::new(f(*input)), limit, offset },
        Distinct { input } => Distinct { input: Box::new(f(*input)) },
        Union { left, right, all } => {
            Union { left: Box::new(f(*left)), right: Box::new(f(*right)), all }
        }
        Unnest { input, path_col, with_ordinality, preserve_empty, schema } => {
            Unnest { input: Box::new(f(*input)), path_col, with_ordinality, preserve_empty, schema }
        }
    }
}

fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary { left, op: BinaryOp::And, right } = e {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

fn conjoin(mut conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    let mut acc = conjuncts.pop()?;
    while let Some(c) = conjuncts.pop() {
        acc = BoundExpr::Binary { left: Box::new(c), op: BinaryOp::And, right: Box::new(acc) };
    }
    Some(acc)
}

/// `Filter(CrossJoin(L, R), p)`: conjuncts of `p` that reference only `L`
/// (or only `R`) move below the product.
fn push_filter_into_cross(plan: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = plan else {
        return plan;
    };
    let LogicalPlan::Join { left, right, kind: JoinKind::Cross, on: None, schema } = *input else {
        return LogicalPlan::Filter { input, predicate };
    };
    let n_left = left.schema().len();
    let mut conjuncts = Vec::new();
    flatten_and(&predicate, &mut conjuncts);
    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        let cols = c.referenced_columns();
        let all_left = cols.iter().all(|&i| i < n_left);
        let all_right = cols.iter().all(|&i| i >= n_left);
        if all_left && !cols.is_empty() {
            left_preds.push(c);
        } else if all_right {
            right_preds.push(c.remap_columns(&|i| i - n_left));
        } else {
            residual.push(c);
        }
    }
    let mut new_left = *left;
    if let Some(p) = conjoin(left_preds) {
        new_left = LogicalPlan::Filter { input: Box::new(new_left), predicate: p };
    }
    let mut new_right = *right;
    if let Some(p) = conjoin(right_preds) {
        new_right = LogicalPlan::Filter { input: Box::new(new_right), predicate: p };
    }
    let join = LogicalPlan::Join {
        left: Box::new(new_left),
        right: Box::new(new_right),
        kind: JoinKind::Cross,
        on: None,
        schema,
    };
    match conjoin(residual) {
        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
        None => join,
    }
}

/// `GraphSelect(CrossJoin(L, R))` with `X ⊆ L` and `Y ⊆ R` becomes
/// `GraphJoin(L, R)`.
fn graph_join_unfold(plan: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::GraphSelect { input, edge, src_key, dst_key, source, dest, specs, schema } =
        plan
    else {
        return plan;
    };
    let LogicalPlan::Join { left, right, kind: JoinKind::Cross, on: None, .. } = *input else {
        return LogicalPlan::GraphSelect {
            input,
            edge,
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        };
    };
    let n_left = left.schema().len();
    let source_cols = source.referenced_columns();
    let dest_cols = dest.referenced_columns();
    let source_is_left = source_cols.iter().all(|&i| i < n_left);
    let dest_is_right = dest_cols.iter().all(|&i| i >= n_left);
    if !source_is_left || !dest_is_right {
        // Rebuild the original shape.
        let input = LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Cross,
            on: None,
            schema: schema_prefix(&schema, n_left, &edge, &specs),
        };
        return LogicalPlan::GraphSelect {
            input: Box::new(input),
            edge,
            src_key,
            dst_key,
            source,
            dest,
            specs,
            schema,
        };
    }
    let dest = dest.remap_columns(&|i| i - n_left);
    LogicalPlan::GraphJoin { left, right, edge, src_key, dst_key, source, dest, specs, schema }
}

/// Recompute the cross product's schema from the graph select's output
/// schema (input columns precede the appended cost/path columns).
fn schema_prefix(
    out_schema: &crate::plan::PlanSchema,
    _n_left: usize,
    _edge: &LogicalPlan,
    specs: &[crate::plan::CheapestSpec],
) -> crate::plan::PlanSchema {
    let appended: usize = specs.iter().map(|s| 1 + usize::from(s.want_path)).sum();
    let n_input = out_schema.len() - appended;
    crate::plan::PlanSchema::new(out_schema.columns()[..n_input].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanColumn, PlanSchema};
    use gsql_storage::{DataType, Value};

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.to_string(),
            schema: PlanSchema::new(
                cols.iter()
                    .map(|c| PlanColumn::new(*c, DataType::Int).with_qualifier(name))
                    .collect(),
            ),
        }
    }

    fn cross(left: LogicalPlan, right: LogicalPlan) -> LogicalPlan {
        let schema = left.schema().concat(right.schema());
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Cross,
            on: None,
            schema,
        }
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column { index: i, ty: DataType::Int }
    }

    fn eq_param(i: usize, p: usize) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(col(i)),
            op: BinaryOp::Eq,
            right: Box::new(BoundExpr::Param(p)),
        }
    }

    #[test]
    fn filter_pushdown_splits_sides() {
        let plan = LogicalPlan::Filter {
            input: Box::new(cross(scan("a", &["x"]), scan("b", &["y"]))),
            predicate: BoundExpr::Binary {
                left: Box::new(eq_param(0, 0)),
                op: BinaryOp::And,
                right: Box::new(eq_param(1, 1)),
            },
        };
        let optimized = optimize(plan);
        // Both conjuncts must be inside the product now.
        match optimized {
            LogicalPlan::Join { left, right, kind: JoinKind::Cross, .. } => {
                assert!(matches!(*left, LogicalPlan::Filter { .. }));
                match *right {
                    LogicalPlan::Filter { predicate, .. } => {
                        // Rebased to the right side's local ordinal 0.
                        assert_eq!(predicate.referenced_columns(), vec![0]);
                    }
                    other => panic!("expected filter on right side, got {other:?}"),
                }
            }
            other => panic!("expected bare cross join, got {other:?}"),
        }
    }

    #[test]
    fn graph_select_over_cross_becomes_graph_join() {
        let left = scan("p1", &["id"]);
        let right = scan("p2", &["id"]);
        let edge = scan("friends", &["src", "dst"]);
        let mut schema = left.schema().concat(right.schema());
        schema.push(PlanColumn::new("cost", DataType::Int));
        let plan = LogicalPlan::GraphSelect {
            input: Box::new(cross(left, right)),
            edge: Box::new(edge),
            src_key: 0,
            dst_key: 1,
            source: col(0),
            dest: col(1),
            specs: vec![crate::plan::CheapestSpec {
                weight: BoundExpr::Literal(Value::Int(1)),
                weight_ty: DataType::Int,
                want_path: false,
                cost_name: "cost".into(),
                path_name: String::new(),
            }],
            schema,
        };
        let optimized = optimize(plan);
        match optimized {
            LogicalPlan::GraphJoin { source, dest, .. } => {
                assert_eq!(source.referenced_columns(), vec![0]);
                // dest was rebased onto the right schema.
                assert_eq!(dest.referenced_columns(), vec![0]);
            }
            other => panic!("expected GraphJoin, got {other:?}"),
        }
    }

    #[test]
    fn graph_select_with_both_sides_in_source_stays() {
        let left = scan("p1", &["id"]);
        let right = scan("p2", &["id"]);
        let edge = scan("friends", &["src", "dst"]);
        let schema = left.schema().concat(right.schema());
        // source references column 1 (the right side): no unfolding.
        let plan = LogicalPlan::GraphSelect {
            input: Box::new(cross(left, right)),
            edge: Box::new(edge),
            src_key: 0,
            dst_key: 1,
            source: col(1),
            dest: col(1),
            specs: vec![],
            schema,
        };
        assert!(matches!(optimize(plan), LogicalPlan::GraphSelect { .. }));
    }

    #[test]
    fn pushdown_then_unfold_compose() {
        // Filter(Cross) under a GraphSelect: after pushdown the unfold must
        // still fire — the A.2-style plan shape.
        let left = scan("p1", &["id"]);
        let right = scan("p2", &["id"]);
        let edge = scan("friends", &["src", "dst"]);
        let cross_schema = left.schema().concat(right.schema());
        let filtered = LogicalPlan::Filter {
            input: Box::new(cross(left, right)),
            predicate: BoundExpr::Binary {
                left: Box::new(eq_param(0, 0)),
                op: BinaryOp::And,
                right: Box::new(eq_param(1, 1)),
            },
        };
        let plan = LogicalPlan::GraphSelect {
            input: Box::new(filtered),
            edge: Box::new(edge),
            src_key: 0,
            dst_key: 1,
            source: col(0),
            dest: col(1),
            specs: vec![],
            schema: cross_schema,
        };
        let optimized = optimize(plan);
        match optimized {
            LogicalPlan::GraphJoin { left, right, .. } => {
                assert!(matches!(*left, LogicalPlan::Filter { .. }));
                assert!(matches!(*right, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected GraphJoin over filtered scans, got\n{other}"),
        }
    }
}
