//! Per-query execution context and session settings.
//!
//! [`ExecContext`] bundles everything a single statement execution needs —
//! catalog, `?` parameter values, graph-index registry, session settings,
//! and an optional per-operator statistics collector — and is threaded
//! through binder → optimizer → executor instead of loose arguments. It is
//! the engine-side counterpart of a [`crate::Session`].

use crate::error::{bind_err, Error};
use crate::graph_index::GraphIndexRegistry;
use crate::path_index::PathIndexRegistry;
use gsql_obs::{EngineMetrics, SpanId, TraceCollector, TraceLevel, NO_SPAN};
use gsql_storage::{Catalog, Value};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type Result<T> = std::result::Result<T, Error>;

/// Session-scoped knobs that influence planning and execution.
///
/// Changed with `SET <option> = <value>`, inspected with `SHOW <option>` /
/// `SHOW ALL`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSettings {
    /// Use registered graph indexes during planning (`SET graph_index =
    /// on|off`). Default on.
    pub graph_index: bool,
    /// Use registered ALT path indexes during planning (`SET path_index =
    /// on|off`): eligible point-to-point shortest-path plans route through
    /// goal-directed bidirectional A*. Default: the `GSQL_PATH_INDEX`
    /// environment variable when set (`on`/`off`), otherwise on. Results
    /// are identical either way; only the work per query changes.
    pub path_index: bool,
    /// Guard against runaway intermediate results: error as soon as any
    /// operator produces more than this many rows (`SET row_limit = n`;
    /// `0` disables). Default unlimited.
    pub row_limit: Option<u64>,
    /// Capacity of the session's plan cache (`SET plan_cache_size = n`;
    /// `0` disables caching). Default 64.
    pub plan_cache_size: usize,
    /// Degree of parallelism for execution (`SET threads = n`, n ≥ 1).
    /// Source-parallel graph traversals, the parallel CSR build and the
    /// row-parallel operators (filter, hash join, distinct) all use this
    /// width; `1` takes the exact sequential code path. Default: the
    /// `GSQL_THREADS` environment variable when set, otherwise the number
    /// of available hardware threads.
    pub threads: usize,
    /// Per-statement wall-clock budget in milliseconds (`SET timeout_ms =
    /// n`; `0` disables). The deadline starts when statement execution
    /// begins and is checked before every operator and between per-source
    /// traversal groups, so a timed-out statement is interrupted mid-flight
    /// with [`crate::Error::Timeout`] instead of running to completion.
    /// Default unlimited.
    pub timeout_ms: Option<u64>,
    /// Execute plans through the push-based morsel-driven pipeline engine
    /// (`SET pipeline = on|off`). Off falls back to the barrier-per-operator
    /// model (one fan-out + materialized table per operator). Results are
    /// bit-identical either way; only scheduling changes. Default: the
    /// `GSQL_PIPELINE` environment variable when set (`on`/`off`),
    /// otherwise on.
    pub pipeline: bool,
    /// Rows per morsel for pipelined execution (`SET morsel_rows = n`,
    /// n ≥ 1). Morsel boundaries depend only on this value and the input
    /// size — never the worker count — so per-morsel partials merged in
    /// morsel-index order are bit-identical at every thread count. Default:
    /// the `GSQL_MORSEL_ROWS` environment variable when set, otherwise
    /// 65536.
    pub morsel_rows: usize,
    /// Structured query tracing (`SET trace = off|on|verbose`). `on`
    /// records one span per statement phase (parse → bind → optimize →
    /// execute), per pipeline and per traversal batch; `verbose` adds one
    /// span per operator. Tracing never changes plan shape or results —
    /// only observation. Default: the `GSQL_TRACE` environment variable
    /// when set, otherwise off.
    pub trace: TraceLevel,
    /// Slow-query threshold in milliseconds (`SET slow_query_ms = n`; `0`
    /// disables). A statement whose wall time meets the threshold emits one
    /// structured record into the database's slow-query ring (`/slowlog`).
    /// Default off.
    pub slow_query_ms: Option<u64>,
}

impl Default for SessionSettings {
    fn default() -> SessionSettings {
        SessionSettings {
            graph_index: true,
            path_index: default_path_index(),
            row_limit: None,
            plan_cache_size: 64,
            threads: gsql_parallel::default_threads(),
            timeout_ms: None,
            pipeline: default_pipeline(),
            morsel_rows: gsql_parallel::default_morsel_rows(),
            trace: default_trace(),
            slow_query_ms: None,
        }
    }
}

/// Process-wide default for the `trace` setting: `GSQL_TRACE` when set to a
/// recognizable level, otherwise off. Cached after the first call (mirrors
/// [`default_pipeline`]). CI runs a suite leg under `GSQL_TRACE=verbose` to
/// prove tracing never perturbs results.
fn default_trace() -> TraceLevel {
    static CACHE: std::sync::OnceLock<TraceLevel> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GSQL_TRACE")
            .ok()
            .and_then(|v| TraceLevel::parse(v.trim()))
            .unwrap_or_default()
    })
}

/// Process-wide default for the `pipeline` setting: `GSQL_PIPELINE` when
/// set to a recognizable boolean, otherwise on. Cached after the first call
/// (mirrors [`default_path_index`]). CI can pin the suite to the barrier
/// model so the fallback path cannot rot.
fn default_pipeline() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let value = std::env::var("GSQL_PIPELINE")
            .map(|v| v.trim().to_ascii_lowercase())
            .unwrap_or_default();
        !matches!(value.as_str(), "off" | "false" | "0")
    })
}

/// Process-wide default for the `path_index` setting: `GSQL_PATH_INDEX`
/// when set to a recognizable boolean, otherwise on. Cached after the first
/// call (mirrors `gsql_parallel::default_threads`). CI uses the off value
/// to run the whole suite over the Dijkstra fallback path.
fn default_path_index() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        // Same case-insensitivity as `SET path_index` (parse_bool).
        let value = std::env::var("GSQL_PATH_INDEX")
            .map(|v| v.trim().to_ascii_lowercase())
            .unwrap_or_default();
        !matches!(value.as_str(), "off" | "false" | "0")
    })
}

impl SessionSettings {
    /// All option names, in `SHOW ALL` order — kept **sorted** so the
    /// listing is deterministic. A regression test destructures the struct
    /// exhaustively against this list: adding a setting without listing it
    /// here fails the build.
    pub const NAMES: [&'static str; 10] = [
        "graph_index",
        "morsel_rows",
        "path_index",
        "pipeline",
        "plan_cache_size",
        "row_limit",
        "slow_query_ms",
        "threads",
        "timeout_ms",
        "trace",
    ];

    /// Set an option from its SQL textual value. Errors on unknown options
    /// or unparsable values.
    pub fn set(&mut self, name: &str, value: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        match key.as_str() {
            "graph_index" => self.graph_index = parse_bool(name, value)?,
            "path_index" => self.path_index = parse_bool(name, value)?,
            "row_limit" => {
                let n = parse_u64(name, value)?;
                self.row_limit = if n == 0 { None } else { Some(n) };
            }
            "plan_cache_size" => self.plan_cache_size = parse_u64(name, value)? as usize,
            "threads" => {
                let n = parse_u64(name, value)?;
                if n == 0 {
                    return Err(bind_err!(
                        "setting 'threads' expects a positive integer (got 0); \
                         use 1 for sequential execution"
                    ));
                }
                if n > gsql_parallel::MAX_THREADS as u64 {
                    return Err(bind_err!(
                        "setting 'threads' is capped at {} (got {n})",
                        gsql_parallel::MAX_THREADS
                    ));
                }
                self.threads = n as usize;
            }
            "timeout_ms" => {
                let n = parse_u64(name, value)?;
                self.timeout_ms = if n == 0 { None } else { Some(n) };
            }
            "pipeline" => self.pipeline = parse_bool(name, value)?,
            "trace" => {
                self.trace = TraceLevel::parse(value).ok_or_else(|| {
                    bind_err!("setting 'trace' expects off/on/verbose, got '{value}'")
                })?;
            }
            "slow_query_ms" => {
                let n = parse_u64(name, value)?;
                self.slow_query_ms = if n == 0 { None } else { Some(n) };
            }
            "morsel_rows" => {
                let n = parse_u64(name, value)?;
                if n == 0 {
                    return Err(bind_err!(
                        "setting 'morsel_rows' expects a positive integer (got 0)"
                    ));
                }
                self.morsel_rows = n as usize;
            }
            _ => return Err(bind_err!("unknown setting '{name}'")),
        }
        Ok(())
    }

    /// Read an option's current value as SQL text.
    pub fn get(&self, name: &str) -> Result<String> {
        let key = name.to_ascii_lowercase();
        match key.as_str() {
            "graph_index" => Ok(render_bool(self.graph_index)),
            "path_index" => Ok(render_bool(self.path_index)),
            "row_limit" => Ok(self.row_limit.unwrap_or(0).to_string()),
            "plan_cache_size" => Ok(self.plan_cache_size.to_string()),
            "threads" => Ok(self.threads.to_string()),
            "timeout_ms" => Ok(self.timeout_ms.unwrap_or(0).to_string()),
            "pipeline" => Ok(render_bool(self.pipeline)),
            "trace" => Ok(self.trace.as_str().to_string()),
            "slow_query_ms" => Ok(self.slow_query_ms.unwrap_or(0).to_string()),
            "morsel_rows" => Ok(self.morsel_rows.to_string()),
            _ => Err(bind_err!("unknown setting '{name}'")),
        }
    }

    /// `(name, value)` pairs for every option (`SHOW ALL`).
    pub fn entries(&self) -> Vec<(&'static str, String)> {
        Self::NAMES.iter().map(|&n| (n, self.get(n).expect("known name"))).collect()
    }
}

fn parse_bool(name: &str, value: &str) -> Result<bool> {
    match value.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(bind_err!("setting '{name}' expects on/off, got '{other}'")),
    }
}

fn parse_u64(name: &str, value: &str) -> Result<u64> {
    value
        .parse::<u64>()
        .map_err(|_| bind_err!("setting '{name}' expects a non-negative integer, got '{value}'"))
}

fn render_bool(v: bool) -> String {
    if v { "on" } else { "off" }.to_string()
}

/// The wall-clock budget of one statement execution: the instant after
/// which the executor aborts with [`Error::Timeout`], plus the configured
/// limit for the error message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// The instant execution must not run past.
    pub at: Instant,
    /// The configured budget in milliseconds (for error reporting).
    pub limit_ms: u64,
}

impl Deadline {
    /// A deadline `limit_ms` milliseconds from now.
    pub fn starting_now(limit_ms: u64) -> Deadline {
        Deadline { at: Instant::now() + Duration::from_millis(limit_ms), limit_ms }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Execution statistics of one operator instance, recorded by the executor
/// when statistics collection is enabled (`EXPLAIN ANALYZE`).
#[derive(Debug, Clone)]
pub struct OpStats {
    /// The operator's one-line plan label (same text as `EXPLAIN`).
    pub label: String,
    /// Nesting depth in the executed plan tree.
    pub depth: usize,
    /// Output row count.
    pub rows: usize,
    /// Inclusive wall time (operator plus its inputs).
    pub elapsed: Duration,
    /// Operator-specific extra detail, e.g. the settled-vertex count of an
    /// ALT-accelerated graph operator (`settled=12 (alt)`).
    pub detail: Option<String>,
}

/// Execution statistics of one morsel-driven pipeline, recorded by the
/// pipeline engine when statistics collection is enabled.
#[derive(Debug, Clone)]
pub struct PipelineStat {
    /// The fused chain's human label, e.g. `scan people -> filter -> probe`.
    pub label: String,
    /// Total morsels processed by this pipeline.
    pub morsels: usize,
    /// Fewest morsels any participating worker processed.
    pub min_per_worker: usize,
    /// Most morsels any participating worker processed.
    pub max_per_worker: usize,
    /// Workers that participated (grabbed at least zero morsels — the
    /// broadcast width).
    pub workers: usize,
    /// Wall time from first morsel grab to sink merge completion.
    pub elapsed: Duration,
    /// Summed time morsels sat in the queue before a worker pulled them
    /// (queue creation to grab). Divide by `morsels` for the average.
    pub queue_wait: Duration,
    /// The single longest queue wait of any morsel.
    pub queue_wait_max: Duration,
}

/// Per-operator statistics of one executed statement, in execution
/// (pre-)order. Operators that were skipped at runtime — e.g. an edge-table
/// scan satisfied by a graph index — do not appear.
///
/// The collector lives behind a [`Mutex`] in [`ExecContext`], so operator
/// bodies may run work on a pool of threads while the (single-threaded)
/// plan walk records begin/finish events.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// One entry per executed operator.
    pub ops: Vec<OpStats>,
    /// One entry per executed pipeline (morsel-driven execution only), in
    /// completion order.
    pub pipelines: Vec<PipelineStat>,
}

impl ExecStats {
    /// Reserve the slot for an operator about to run; returns its index.
    pub(crate) fn begin(&mut self, label: String, depth: usize) -> usize {
        self.ops.push(OpStats { label, depth, rows: 0, elapsed: Duration::ZERO, detail: None });
        self.ops.len() - 1
    }

    /// Fill in an operator's results.
    pub(crate) fn finish(
        &mut self,
        idx: usize,
        rows: usize,
        elapsed: Duration,
        detail: Option<String>,
    ) {
        let op = &mut self.ops[idx];
        op.rows = rows;
        op.elapsed = elapsed;
        op.detail = detail;
    }

    /// Record one completed pipeline's morsel statistics.
    pub(crate) fn record_pipeline(&mut self, stat: PipelineStat) {
        self.pipelines.push(stat);
    }

    /// Render the annotated plan tree (`EXPLAIN ANALYZE` output): one line
    /// per executed operator with output rows and inclusive wall time,
    /// followed by one line per executed pipeline with morsel counts and
    /// per-worker distribution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let detail = match &op.detail {
                Some(d) => format!(", {d}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{}{} (rows={}, time={}{detail})",
                "  ".repeat(op.depth),
                op.label,
                op.rows,
                fmt_duration(op.elapsed),
            );
        }
        for (i, p) in self.pipelines.iter().enumerate() {
            let avg_wait =
                if p.morsels > 0 { p.queue_wait / p.morsels as u32 } else { Duration::ZERO };
            let _ = writeln!(
                out,
                "Pipeline {i}: {} (morsels={}, per-worker min={} max={} of {} worker(s), \
                 queue-wait avg={} max={}, time={})",
                p.label,
                p.morsels,
                p.min_per_worker,
                p.max_per_worker,
                p.workers,
                fmt_duration(avg_wait),
                fmt_duration(p.queue_wait_max),
                fmt_duration(p.elapsed),
            );
        }
        out
    }
}

/// Compact human duration (micros below 10ms, millis beyond).
fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 10_000 {
        format!("{us}us")
    } else {
        format!("{:.2}ms", us as f64 / 1000.0)
    }
}

/// Everything one statement execution needs, bundled.
///
/// A [`crate::Session`] builds one `ExecContext` per statement; the
/// context is handed to [`crate::bind::Binder`],
/// [`crate::optimize::optimize_with`] and [`crate::exec::Executor`].
#[derive(Debug)]
pub struct ExecContext<'a> {
    catalog: &'a Catalog,
    params: &'a [Value],
    indexes: Option<&'a GraphIndexRegistry>,
    path_indexes: Option<&'a PathIndexRegistry>,
    settings: SessionSettings,
    deadline: Option<Deadline>,
    stats: Option<Mutex<ExecStats>>,
    /// Detail text set by the operator currently executing (e.g. ALT
    /// settled-vertex counts), claimed by the executor when it records the
    /// operator's statistics. Only populated when stats are collected.
    pending_detail: Mutex<Option<String>>,
    /// The engine-wide metrics registry, when attached by a session. All
    /// hot-path instruments are relaxed atomics, so recording never
    /// perturbs results or thread-equivalence.
    metrics: Option<Arc<EngineMetrics>>,
    /// The per-statement trace collector, when `SET trace` is on.
    trace: Option<Arc<TraceCollector>>,
    /// The span new child spans attach under ([`NO_SPAN`] = root). An
    /// atomic so the single-threaded plan walk can save/swap/restore it
    /// through a `&self` borrow.
    trace_parent: AtomicU32,
}

impl<'a> ExecContext<'a> {
    /// A context with default settings and no statistics collection.
    pub fn new(
        catalog: &'a Catalog,
        params: &'a [Value],
        indexes: Option<&'a GraphIndexRegistry>,
    ) -> ExecContext<'a> {
        ExecContext {
            catalog,
            params,
            indexes,
            path_indexes: None,
            settings: SessionSettings::default(),
            deadline: None,
            stats: None,
            pending_detail: Mutex::new(None),
            metrics: None,
            trace: None,
            trace_parent: AtomicU32::new(NO_SPAN),
        }
    }

    /// Attach the path-index registry (builder style).
    pub fn with_path_indexes(mut self, registry: &'a PathIndexRegistry) -> ExecContext<'a> {
        self.path_indexes = Some(registry);
        self
    }

    /// Replace the settings (builder style).
    pub fn with_settings(mut self, settings: SessionSettings) -> ExecContext<'a> {
        self.settings = settings;
        self
    }

    /// Enable per-operator statistics collection (builder style).
    pub fn with_stats(mut self) -> ExecContext<'a> {
        self.stats = Some(Mutex::new(ExecStats::default()));
        self
    }

    /// Attach a wall-clock deadline (builder style). `None` leaves the
    /// statement unbounded.
    pub fn with_deadline(mut self, deadline: Option<Deadline>) -> ExecContext<'a> {
        self.deadline = deadline;
        self
    }

    /// Attach the engine metrics registry (builder style).
    pub fn with_metrics(mut self, metrics: Option<Arc<EngineMetrics>>) -> ExecContext<'a> {
        self.metrics = metrics;
        self
    }

    /// Attach a per-statement trace collector rooted at `parent` (builder
    /// style).
    pub fn with_trace(
        mut self,
        trace: Option<Arc<TraceCollector>>,
        parent: SpanId,
    ) -> ExecContext<'a> {
        self.trace = trace;
        self.trace_parent = AtomicU32::new(parent);
        self
    }

    /// The catalog to bind and scan against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Host parameter values for `?` placeholders.
    pub fn params(&self) -> &'a [Value] {
        self.params
    }

    /// The graph-index registry, unless disabled by
    /// [`SessionSettings::graph_index`].
    pub fn indexes(&self) -> Option<&'a GraphIndexRegistry> {
        if self.settings.graph_index {
            self.indexes
        } else {
            None
        }
    }

    /// The path-index registry, unless disabled by
    /// [`SessionSettings::path_index`].
    pub fn path_indexes(&self) -> Option<&'a PathIndexRegistry> {
        if self.settings.path_index {
            self.path_indexes
        } else {
            None
        }
    }

    /// Record extra statistics detail for the operator currently executing
    /// (no-op unless `EXPLAIN ANALYZE` is collecting).
    pub(crate) fn record_op_detail(&self, detail: String) {
        if self.stats.is_some() {
            *self.pending_detail.lock().expect("detail lock") = Some(detail);
        }
    }

    /// Claim the pending operator detail (executor side).
    pub(crate) fn take_op_detail(&self) -> Option<String> {
        self.pending_detail.lock().expect("detail lock").take()
    }

    /// The session settings in effect.
    pub fn settings(&self) -> &SessionSettings {
        &self.settings
    }

    /// The statement deadline, when one is set.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The raw deadline instant (what long-running runtimes poll).
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline.map(|d| d.at)
    }

    /// Abort with [`Error::Timeout`] once the statement deadline passed.
    /// The executor calls this before every operator; operator bodies with
    /// long internal loops (graph traversal batches) poll the instant
    /// themselves at finer grain.
    pub fn check_deadline(&self) -> Result<()> {
        match self.deadline {
            Some(d) if d.expired() => Err(self.timeout_error()),
            _ => Ok(()),
        }
    }

    /// The timeout error for this statement's configured budget.
    pub(crate) fn timeout_error(&self) -> Error {
        Error::Timeout { limit_ms: self.deadline.map(|d| d.limit_ms).unwrap_or(0) }
    }

    /// The degree of parallelism for this statement's execution.
    pub fn threads(&self) -> usize {
        self.settings.threads.max(1)
    }

    /// True when plans execute through the morsel-driven pipeline engine.
    pub fn pipeline_enabled(&self) -> bool {
        self.settings.pipeline
    }

    /// Rows per morsel for pipelined execution (at least 1).
    pub fn morsel_rows(&self) -> usize {
        self.settings.morsel_rows.max(1)
    }

    /// Record one completed pipeline's morsel statistics (no-op unless
    /// `EXPLAIN ANALYZE` is collecting).
    pub(crate) fn record_pipeline_stat(&self, stat: PipelineStat) {
        if let Some(cell) = &self.stats {
            cell.lock().expect("stats lock").record_pipeline(stat);
        }
    }

    /// The statistics collector, when enabled.
    pub(crate) fn stats_cell(&self) -> Option<&Mutex<ExecStats>> {
        self.stats.as_ref()
    }

    /// The engine metrics registry, when a session attached one.
    pub(crate) fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// The per-statement trace collector, when tracing is on.
    pub(crate) fn trace(&self) -> Option<&Arc<TraceCollector>> {
        self.trace.as_ref()
    }

    /// True when the statement traces at [`TraceLevel::Verbose`].
    pub(crate) fn trace_verbose(&self) -> bool {
        self.trace.is_some() && self.settings.trace == TraceLevel::Verbose
    }

    /// The span id new child spans attach under ([`NO_SPAN`] = root).
    pub(crate) fn trace_parent(&self) -> SpanId {
        self.trace_parent.load(Ordering::Relaxed)
    }

    /// Re-point the trace parent, returning the previous value so callers
    /// can restore it (the plan walk is single-threaded).
    pub(crate) fn swap_trace_parent(&self, parent: SpanId) -> SpanId {
        self.trace_parent.swap(parent, Ordering::Relaxed)
    }

    /// Open a child span under the current trace parent. Returns `None`
    /// (and does nothing) when tracing is off.
    pub(crate) fn trace_begin(&self, name: &str) -> Option<SpanId> {
        self.trace.as_ref().map(|t| t.begin(self.trace_parent(), name))
    }

    /// Extract the collected statistics (empty if collection was off).
    pub fn take_stats(&self) -> ExecStats {
        self.stats
            .as_ref()
            .map(|s| std::mem::take(&mut *s.lock().expect("stats lock")))
            .unwrap_or_default()
    }

    /// Enforce the session row limit on one operator's output. The label is
    /// built lazily so the happy path never formats a plan node.
    pub(crate) fn check_row_limit(
        &self,
        rows: usize,
        operator: impl FnOnce() -> String,
    ) -> Result<()> {
        if let Some(limit) = self.settings.row_limit {
            if rows as u64 > limit {
                return Err(Error::Exec(format!(
                    "row limit exceeded: operator {} produced {rows} rows \
                     (SET row_limit = {limit}; 0 disables)",
                    operator()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_set_get_roundtrip() {
        let mut s = SessionSettings::default();
        assert!(s.graph_index);
        s.set("graph_index", "off").unwrap();
        assert!(!s.graph_index);
        assert_eq!(s.get("graph_index").unwrap(), "off");
        s.set("GRAPH_INDEX", "on").unwrap();
        assert!(s.graph_index);

        s.set("path_index", "off").unwrap();
        assert!(!s.path_index);
        assert_eq!(s.get("path_index").unwrap(), "off");
        s.set("PATH_INDEX", "on").unwrap();
        assert!(s.path_index);
        assert!(s.set("path_index", "sideways").is_err());

        s.set("row_limit", "100").unwrap();
        assert_eq!(s.row_limit, Some(100));
        s.set("row_limit", "0").unwrap();
        assert_eq!(s.row_limit, None);
        assert_eq!(s.get("row_limit").unwrap(), "0");

        s.set("plan_cache_size", "8").unwrap();
        assert_eq!(s.plan_cache_size, 8);

        assert!(s.threads >= 1, "default threads must be positive");
        s.set("threads", "4").unwrap();
        assert_eq!(s.threads, 4);
        assert_eq!(s.get("threads").unwrap(), "4");
        s.set("THREADS", "1").unwrap();
        assert_eq!(s.threads, 1);
        let err = s.set("threads", "0").unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        let err = s.set("threads", "many").unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
        let err = s.set("threads", "9999999").unwrap_err();
        assert!(err.to_string().contains("capped"), "{err}");
        assert_eq!(s.threads, 1, "failed sets leave the value unchanged");

        s.set("timeout_ms", "250").unwrap();
        assert_eq!(s.timeout_ms, Some(250));
        assert_eq!(s.get("timeout_ms").unwrap(), "250");
        s.set("TIMEOUT_MS", "0").unwrap();
        assert_eq!(s.timeout_ms, None);
        assert_eq!(s.get("timeout_ms").unwrap(), "0");

        // (The default itself comes from GSQL_PIPELINE, so only the
        // round-trips are asserted here.)
        s.set("pipeline", "off").unwrap();
        assert!(!s.pipeline);
        assert_eq!(s.get("pipeline").unwrap(), "off");
        s.set("PIPELINE", "on").unwrap();
        assert!(s.pipeline);
        assert!(s.set("pipeline", "diagonal").is_err());

        assert!(s.morsel_rows >= 1, "default morsel_rows must be positive");
        s.set("morsel_rows", "7").unwrap();
        assert_eq!(s.morsel_rows, 7);
        assert_eq!(s.get("morsel_rows").unwrap(), "7");
        let err = s.set("morsel_rows", "0").unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
        assert_eq!(s.morsel_rows, 7, "failed sets leave the value unchanged");

        // (The default itself comes from GSQL_TRACE, so only the
        // round-trips are asserted here.)
        s.set("trace", "on").unwrap();
        assert_eq!(s.trace, TraceLevel::On);
        assert_eq!(s.get("trace").unwrap(), "on");
        s.set("TRACE", "verbose").unwrap();
        assert_eq!(s.trace, TraceLevel::Verbose);
        s.set("trace", "off").unwrap();
        assert_eq!(s.trace, TraceLevel::Off);
        let err = s.set("trace", "loud").unwrap_err();
        assert!(err.to_string().contains("off/on/verbose"), "{err}");

        s.set("slow_query_ms", "25").unwrap();
        assert_eq!(s.slow_query_ms, Some(25));
        assert_eq!(s.get("slow_query_ms").unwrap(), "25");
        s.set("SLOW_QUERY_MS", "0").unwrap();
        assert_eq!(s.slow_query_ms, None);
        assert_eq!(s.get("slow_query_ms").unwrap(), "0");

        assert!(s.set("nope", "1").is_err());
        assert!(s.get("nope").is_err());
        assert!(s.set("graph_index", "maybe").is_err());
        assert!(s.set("row_limit", "-3").is_err());
        assert_eq!(s.entries().len(), SessionSettings::NAMES.len());
    }

    /// Regression guard for `SHOW ALL`: every settings field must appear in
    /// [`SessionSettings::NAMES`], and the listing must be sorted.
    ///
    /// The destructuring below is **exhaustive on purpose** — adding a new
    /// setting field without updating it (and `FIELDS`, and `NAMES`) is a
    /// compile error, so a setting can never silently go missing from
    /// `SHOW ALL`.
    #[test]
    fn show_all_lists_every_setting_in_sorted_order() {
        let s = SessionSettings::default();
        let SessionSettings {
            graph_index: _,
            path_index: _,
            row_limit: _,
            plan_cache_size: _,
            threads: _,
            timeout_ms: _,
            pipeline: _,
            morsel_rows: _,
            trace: _,
            slow_query_ms: _,
        } = s;
        const FIELDS: usize = 10;
        assert_eq!(
            SessionSettings::NAMES.len(),
            FIELDS,
            "a settings field is missing from SessionSettings::NAMES / SHOW ALL"
        );
        let mut sorted = SessionSettings::NAMES;
        sorted.sort_unstable();
        assert_eq!(sorted, SessionSettings::NAMES, "NAMES must stay sorted for SHOW ALL");
        // Every listed name is both readable and settable back to itself.
        let mut s = SessionSettings::default();
        for name in SessionSettings::NAMES {
            let value = s.get(name).unwrap_or_else(|_| panic!("SHOW {name} must work"));
            s.set(name, &value).unwrap_or_else(|_| panic!("SET {name} = {value} must round-trip"));
        }
    }

    #[test]
    fn deadline_expiry_and_check() {
        let d = Deadline::starting_now(3_600_000);
        assert!(!d.expired());
        let past = Deadline { at: Instant::now() - Duration::from_millis(1), limit_ms: 5 };
        assert!(past.expired());

        let catalog = Catalog::new();
        let ctx = ExecContext::new(&catalog, &[], None).with_deadline(Some(past));
        let err = ctx.check_deadline().unwrap_err();
        assert!(matches!(err, Error::Timeout { limit_ms: 5 }), "{err}");
        assert!(err.to_string().contains("5ms"), "{err}");
        let ctx = ExecContext::new(&catalog, &[], None);
        ctx.check_deadline().unwrap();
    }

    #[test]
    fn row_limit_guard() {
        let catalog = Catalog::new();
        let ctx = ExecContext::new(&catalog, &[], None)
            .with_settings(SessionSettings { row_limit: Some(2), ..SessionSettings::default() });
        assert!(ctx.check_row_limit(2, || "Scan".to_string()).is_ok());
        let err = ctx.check_row_limit(3, || "Scan".to_string()).unwrap_err();
        assert!(err.to_string().contains("row limit exceeded"));
    }

    #[test]
    fn stats_render_indents_by_depth() {
        let mut stats = ExecStats::default();
        let a = stats.begin("Filter x".into(), 0);
        let b = stats.begin("Scan t".into(), 1);
        stats.finish(b, 10, Duration::from_micros(50), None);
        stats.finish(a, 3, Duration::from_micros(120), Some("settled=7 (alt)".into()));
        stats.record_pipeline(PipelineStat {
            label: "scan t -> filter".into(),
            morsels: 9,
            min_per_worker: 1,
            max_per_worker: 5,
            workers: 3,
            elapsed: Duration::from_micros(80),
            queue_wait: Duration::from_micros(45),
            queue_wait_max: Duration::from_micros(20),
        });
        let text = stats.render();
        assert!(text.contains("Filter x (rows=3"));
        assert!(text.contains("settled=7 (alt))"));
        assert!(text.contains("  Scan t (rows=10"));
        assert!(text.contains("Pipeline 0: scan t -> filter (morsels=9"), "{text}");
        assert!(text.contains("per-worker min=1 max=5 of 3 worker(s)"), "{text}");
        assert!(text.contains("queue-wait avg=5us max=20us"), "{text}");
    }
}
