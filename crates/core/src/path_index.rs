//! Path indexes — the ALT path-acceleration subsystem's catalog layer.
//!
//! A path index, created with
//! `CREATE PATH INDEX name ON table EDGE (src, dst) [WEIGHT col] USING
//! LANDMARKS(k)`, precomputes everything a goal-directed point-to-point
//! shortest-path query needs:
//!
//! * the [`MaterializedGraph`] (snapshot + dictionary + CSR) and its
//!   reverse CSR;
//! * the per-slot weight arrays of both directions (when a `WEIGHT` column
//!   is given; validated strictly positive and integral at build time);
//! * the [`Landmarks`] index: `k` landmarks with exact forward/backward
//!   distance vectors, built one traversal per vector over the worker pool.
//!
//! Invalidation mirrors the graph-index registry: entries cache against the
//! catalog's per-table **version counter** (any DML bumps it; the next
//! query rebuilds lazily), and the registry's own **structural version**
//! participates in [`Database::schema_version`](crate::Database::
//! schema_version), so cached plans that decided for or against a path
//! index are invalidated by `CREATE`/`DROP PATH INDEX`.

use crate::error::{bind_err, Error};
use crate::exec::graph_op::{build_graph_with_threads, MaterializedGraph};
use gsql_accel::Landmarks;
use gsql_storage::{Catalog, Column, DataType};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

type Result<T> = std::result::Result<T, Error>;

/// Upper bound on the landmark count: beyond this the `O(k)` per-vertex
/// bound evaluation starts to cost more than the pruning saves, and the
/// index memory (`2·k·|V|·8` bytes) grows without benefit.
pub const MAX_LANDMARKS: u32 = 64;

/// Everything a query needs from one built path index.
#[derive(Debug)]
pub struct PathIndexData {
    /// The materialized graph (snapshot, CSR, dictionary). Its reverse CSR
    /// is forced at build time, so queries never pay for it.
    pub graph: Arc<MaterializedGraph>,
    /// The ALT landmark index.
    pub landmarks: Landmarks,
    /// Ordinal of the weight column in the edge table's schema; `None` for
    /// a hop-distance index.
    pub weight_key: Option<usize>,
    /// Weights in forward-CSR slot order (present iff `weight_key`).
    pub weights_fwd: Option<Vec<i64>>,
    /// Weights in reverse-CSR slot order (present iff `weight_key`).
    pub weights_bwd: Option<Vec<i64>>,
}

impl PathIndexData {
    /// The per-slot weight pair in the form [`gsql_accel::alt_bidirectional`]
    /// consumes (`None` = unit weights).
    pub fn weight_slices(&self) -> Option<(&[i64], &[i64])> {
        match (&self.weights_fwd, &self.weights_bwd) {
            (Some(f), Some(b)) => Some((f.as_slice(), b.as_slice())),
            _ => None,
        }
    }
}

/// Planner-visible description of a registered path index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathIndexMeta {
    /// Index name (lowercased registry key).
    pub name: String,
    /// Ordinal of the weight column in the table schema, `None` for hops.
    pub weight_key: Option<usize>,
    /// Landmark count the index was declared with.
    pub landmarks: u32,
}

/// One registered path index.
#[derive(Debug)]
struct IndexEntry {
    table: String,
    src_col: String,
    dst_col: String,
    weight_col: Option<String>,
    weight_key: Option<usize>,
    landmarks: u32,
    /// `(table version when built, the data)`.
    cached: Option<(u64, Arc<PathIndexData>)>,
}

/// Registry of path indexes, keyed by (lowercased) index name.
///
/// Carries a structural version counter bumped on create/drop, consumed by
/// the session plan cache through `Database::schema_version`.
#[derive(Debug, Default)]
pub struct PathIndexRegistry {
    inner: RwLock<HashMap<String, IndexEntry>>,
    version: AtomicU64,
}

impl PathIndexRegistry {
    /// Empty registry.
    pub fn new() -> PathIndexRegistry {
        PathIndexRegistry::default()
    }

    /// Structural version (bumped on every create/drop).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Every index covering `(table, src_col, dst_col)`, sorted by name so
    /// planning is deterministic (matching is case-insensitive). Several
    /// indexes may cover one edge configuration — e.g. a hop index and a
    /// weighted index — and the optimizer picks the one whose weight
    /// configuration the query's specs can actually use.
    pub fn find_indexes(&self, table: &str, src_col: &str, dst_col: &str) -> Vec<PathIndexMeta> {
        let table_key = table.to_ascii_lowercase();
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut found: Vec<PathIndexMeta> = inner
            .iter()
            .filter(|(_, e)| {
                e.table == table_key
                    && e.src_col.eq_ignore_ascii_case(src_col)
                    && e.dst_col.eq_ignore_ascii_case(dst_col)
            })
            .map(|(name, e)| PathIndexMeta {
                name: name.clone(),
                weight_key: e.weight_key,
                landmarks: e.landmarks,
            })
            .collect();
        found.sort_by(|a, b| a.name.cmp(&b.name));
        found
    }

    /// The first index covering `(table, src_col, dst_col)` in name order,
    /// if any (convenience over [`PathIndexRegistry::find_indexes`]).
    pub fn find_index(&self, table: &str, src_col: &str, dst_col: &str) -> Option<PathIndexMeta> {
        self.find_indexes(table, src_col, dst_col).into_iter().next()
    }

    /// Fetch the (fresh) data of the index named `name`, rebuilding a stale
    /// cache entry with `threads` workers. `None` when the index no longer
    /// exists — callers fall back to the unaccelerated path.
    pub fn data_by_name(
        &self,
        catalog: &Catalog,
        name: &str,
        threads: usize,
    ) -> Result<Option<Arc<PathIndexData>>> {
        let key = name.to_ascii_lowercase();
        let (table, src_col, dst_col, weight_col, landmarks) = {
            let inner = self.inner.read().expect("registry lock poisoned");
            let Some(entry) = inner.get(&key) else {
                return Ok(None);
            };
            let current = catalog.entry(&entry.table).map_err(Error::Storage)?;
            if let Some((version, data)) = &entry.cached {
                if *version == current.version {
                    return Ok(Some(Arc::clone(data)));
                }
            }
            (
                entry.table.clone(),
                entry.src_col.clone(),
                entry.dst_col.clone(),
                entry.weight_col.clone(),
                entry.landmarks,
            )
        };
        // Stale: rebuild outside the read lock.
        let entry = catalog.entry(&table).map_err(Error::Storage)?;
        let data = Arc::new(build_data(
            catalog,
            &table,
            &src_col,
            &dst_col,
            weight_col.as_deref(),
            landmarks,
            threads,
        )?);
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(e) = inner.get_mut(&key) {
            // Skip the write-back if the index was concurrently dropped and
            // recreated over a different configuration (columns, weight or
            // landmark count).
            if e.table == table
                && e.src_col.eq_ignore_ascii_case(&src_col)
                && e.dst_col.eq_ignore_ascii_case(&dst_col)
                && e.weight_col == weight_col
                && e.landmarks == landmarks
            {
                e.cached = Some((entry.version, Arc::clone(&data)));
            }
        }
        Ok(Some(data))
    }

    /// Create an index and build its landmark data eagerly with `threads`
    /// workers.
    #[allow(clippy::too_many_arguments)]
    pub fn create_index(
        &self,
        catalog: &Catalog,
        name: &str,
        table: &str,
        src_col: &str,
        dst_col: &str,
        weight_col: Option<&str>,
        landmarks: u32,
        threads: usize,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if landmarks == 0 || landmarks > MAX_LANDMARKS {
            return Err(bind_err!(
                "LANDMARKS count must be between 1 and {MAX_LANDMARKS}, got {landmarks}"
            ));
        }
        // Reject duplicate names before paying for the build; the write
        // lock below re-checks to close the create/create race.
        if self.inner.read().expect("registry lock poisoned").contains_key(&key) {
            return Err(bind_err!("path index '{name}' already exists"));
        }
        let entry = catalog.entry(table).map_err(Error::Storage)?;
        let schema = entry.table.schema();
        let src_key = schema
            .index_of(src_col)
            .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
        let dst_key = schema
            .index_of(dst_col)
            .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
        let s_ty = schema.column(src_key).ty;
        let d_ty = schema.column(dst_key).ty;
        if s_ty != d_ty {
            return Err(bind_err!(
                "EDGE columns must have matching types, found {s_ty} and {d_ty}"
            ));
        }
        if !s_ty.is_vertex_key() {
            return Err(bind_err!("type {s_ty} cannot be used as a graph vertex key"));
        }
        let weight_key = match weight_col {
            None => None,
            Some(w) => {
                let idx = schema
                    .index_of(w)
                    .ok_or_else(|| bind_err!("no column '{w}' in table '{table}'"))?;
                let ty = schema.column(idx).ty;
                if ty != DataType::Int {
                    return Err(bind_err!(
                        "PATH INDEX WEIGHT column must be INTEGER so landmark bounds stay \
                         exact, found {ty}; CAST the weight into an integer column"
                    ));
                }
                Some(idx)
            }
        };
        let data =
            Arc::new(build_data(catalog, table, src_col, dst_col, weight_col, landmarks, threads)?);

        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.contains_key(&key) {
            return Err(bind_err!("path index '{name}' already exists"));
        }
        inner.insert(
            key,
            IndexEntry {
                table: table.to_ascii_lowercase(),
                src_col: src_col.to_string(),
                dst_col: dst_col.to_string(),
                weight_col: weight_col.map(str::to_string),
                weight_key,
                landmarks,
                cached: Some((entry.version, data)),
            },
        );
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Drop an index.
    pub fn drop_index(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let removed = inner.remove(&key);
        drop(inner);
        if removed.is_some() {
            self.bump_version();
            Ok(())
        } else {
            Err(bind_err!("path index '{name}' does not exist"))
        }
    }

    /// Remove every index defined over `table` (used by `DROP TABLE`).
    pub fn drop_indexes_for_table(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let before = inner.len();
        inner.retain(|_, e| e.table != key);
        let removed = before != inner.len();
        drop(inner);
        if removed {
            self.bump_version();
        }
    }

    /// Names of all indexes, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Build the full per-index data set: graph, reverse CSR, validated slot
/// weights, landmark vectors.
fn build_data(
    catalog: &Catalog,
    table: &str,
    src_col: &str,
    dst_col: &str,
    weight_col: Option<&str>,
    landmarks: u32,
    threads: usize,
) -> Result<PathIndexData> {
    let entry = catalog.entry(table).map_err(Error::Storage)?;
    let schema = entry.table.schema();
    let src_key = schema
        .index_of(src_col)
        .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
    let dst_key = schema
        .index_of(dst_col)
        .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
    let weight_key = weight_col
        .map(|w| schema.index_of(w).ok_or_else(|| bind_err!("no column '{w}' in table '{table}'")))
        .transpose()?;

    let graph =
        Arc::new(build_graph_with_threads(Arc::clone(&entry.table), src_key, dst_key, threads)?);
    let reverse = graph.reverse(); // force + cache the reverse CSR now

    let (weights_fwd, weights_bwd) = match weight_key {
        None => (None, None),
        Some(wk) => {
            // Read row-indexed weights off the NULL-filtered snapshot so
            // they line up with the CSR's edge-row ids.
            let col = graph.edges.column(wk);
            let raw: Vec<i64> = match col {
                Column::Int(vals, validity) => {
                    if let Some(row) = (0..vals.len()).find(|&i| !validity.get(i)) {
                        return Err(Error::Graph(gsql_graph::GraphError::NullWeight {
                            edge_row: row as u32,
                        }));
                    }
                    vals.clone()
                }
                other => {
                    return Err(bind_err!(
                        "PATH INDEX WEIGHT column must be INTEGER, found {}",
                        other.data_type()
                    ))
                }
            };
            let fwd =
                graph.csr.permute_weights_int_with_threads(&raw, threads).map_err(Error::Graph)?;
            let bwd =
                reverse.permute_weights_int_with_threads(&raw, threads).map_err(Error::Graph)?;
            (Some(fwd), Some(bwd))
        }
    };

    let lm = Landmarks::build(
        &graph.csr,
        reverse,
        match (&weights_fwd, &weights_bwd) {
            (Some(f), Some(b)) => Some((f.as_slice(), b.as_slice())),
            _ => None,
        },
        landmarks as usize,
        threads,
    );
    Ok(PathIndexData { graph, landmarks: lm, weight_key, weights_fwd, weights_bwd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, Schema, Value};

    fn setup() -> (Catalog, PathIndexRegistry) {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "roads",
                Schema::new(vec![
                    ColumnDef::not_null("a", DataType::Int),
                    ColumnDef::not_null("b", DataType::Int),
                    ColumnDef::not_null("len", DataType::Int),
                ]),
            )
            .unwrap();
        catalog
            .update("roads", |t| {
                for (a, b, len) in [(1, 2, 5), (2, 3, 5), (1, 3, 20), (3, 4, 1)] {
                    t.append_row(vec![Value::Int(a), Value::Int(b), Value::Int(len)])?;
                }
                Ok(())
            })
            .unwrap();
        (catalog, PathIndexRegistry::new())
    }

    #[test]
    fn create_build_and_query_data() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "pi", "roads", "a", "b", Some("len"), 2, 2).unwrap();
        let meta = reg.find_index("ROADS", "A", "B").unwrap();
        assert_eq!(meta.name, "pi");
        assert_eq!(meta.weight_key, Some(2));
        assert_eq!(meta.landmarks, 2);
        let data = reg.data_by_name(&catalog, "pi", 2).unwrap().unwrap();
        assert_eq!(data.graph.num_edges(), 4);
        assert!(data.weight_slices().is_some());
        // Exact ALT distance through the cheap 1→2→3 route.
        let s = data.graph.lookup(&Value::Int(1)).unwrap();
        let d = data.graph.lookup(&Value::Int(3)).unwrap();
        let r = gsql_accel::alt_bidirectional(
            &data.graph.csr,
            data.graph.reverse(),
            data.weight_slices(),
            &data.landmarks,
            s,
            d,
        );
        assert_eq!(r.dist, Some(10));
        // Unchanged table: same Arc on the next fetch.
        let again = reg.data_by_name(&catalog, "pi", 2).unwrap().unwrap();
        assert!(Arc::ptr_eq(&data, &again));
    }

    #[test]
    fn mutation_invalidates_and_rebuilds() {
        let (catalog, reg) = setup();
        reg.create_index(&catalog, "pi", "roads", "a", "b", None, 3, 1).unwrap();
        let d1 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        catalog
            .update("roads", |t| t.append_row(vec![Value::Int(4), Value::Int(5), Value::Int(2)]))
            .unwrap();
        let d2 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(d2.graph.num_edges(), 5);
        let d3 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        assert!(Arc::ptr_eq(&d2, &d3));
    }

    #[test]
    fn validation_errors() {
        let (catalog, reg) = setup();
        assert!(reg.create_index(&catalog, "pi", "nope", "a", "b", None, 2, 1).is_err());
        assert!(reg.create_index(&catalog, "pi", "roads", "zzz", "b", None, 2, 1).is_err());
        assert!(reg.create_index(&catalog, "pi", "roads", "a", "b", Some("zzz"), 2, 1).is_err());
        assert!(reg.create_index(&catalog, "pi", "roads", "a", "b", None, 0, 1).is_err());
        assert!(reg
            .create_index(&catalog, "pi", "roads", "a", "b", None, MAX_LANDMARKS + 1, 1)
            .is_err());
        reg.create_index(&catalog, "pi", "roads", "a", "b", None, 2, 1).unwrap();
        assert!(reg.create_index(&catalog, "PI", "roads", "a", "b", None, 2, 1).is_err());
        assert!(reg.drop_index("missing").is_err());
        reg.drop_index("pi").unwrap();
        assert!(reg.index_names().is_empty());
    }

    #[test]
    fn weight_column_must_be_integer() {
        let (catalog, reg) = setup();
        catalog
            .create_table(
                "fe",
                Schema::new(vec![
                    ColumnDef::not_null("s", DataType::Int),
                    ColumnDef::not_null("d", DataType::Int),
                    ColumnDef::not_null("w", DataType::Double),
                ]),
            )
            .unwrap();
        let err = reg.create_index(&catalog, "pi", "fe", "s", "d", Some("w"), 2, 1).unwrap_err();
        assert!(err.to_string().contains("INTEGER"), "{err}");
    }

    #[test]
    fn non_positive_weights_rejected_at_build() {
        let (catalog, reg) = setup();
        catalog
            .update("roads", |t| t.append_row(vec![Value::Int(9), Value::Int(10), Value::Int(0)]))
            .unwrap();
        let err =
            reg.create_index(&catalog, "pi", "roads", "a", "b", Some("len"), 2, 1).unwrap_err();
        assert!(err.to_string().contains("strictly greater than 0"), "{err}");
    }

    #[test]
    fn version_bumps_on_create_and_drop() {
        let (catalog, reg) = setup();
        assert_eq!(reg.version(), 0);
        reg.create_index(&catalog, "pi", "roads", "a", "b", None, 2, 1).unwrap();
        assert_eq!(reg.version(), 1);
        reg.drop_index("pi").unwrap();
        assert_eq!(reg.version(), 2);
        reg.create_index(&catalog, "pi", "roads", "a", "b", None, 2, 1).unwrap();
        reg.drop_indexes_for_table("roads");
        assert_eq!(reg.version(), 4);
        reg.drop_indexes_for_table("roads");
        assert_eq!(reg.version(), 4);
    }
}
