//! Path indexes — the catalog layer of the path-acceleration subsystem.
//!
//! A path index, created with `CREATE PATH INDEX name ON table EDGE (s, d)
//! [WEIGHT col] USING {LANDMARKS(k) | CONTRACTION}`, precomputes everything
//! a point-to-point shortest-path query needs:
//!
//! * the [`MaterializedGraph`] (snapshot + dictionary + CSR) and its
//!   reverse CSR;
//! * the per-slot weight arrays of both directions (when a `WEIGHT` column
//!   is given; validated strictly positive and integral at build time);
//! * one **acceleration index** ([`AccelIndex`]) of the declared kind — an
//!   ALT [`Landmarks`] set for goal-directed bidirectional A\*, or a
//!   [`ContractionHierarchy`] for bidirectional upward Dijkstra with
//!   stall-on-demand.
//!
//! Both kinds answer single-pair queries with costs **bit-identical** to
//! plain Dijkstra; they differ only in preprocessing cost and per-query
//! pruning, so the optimizer may pick freely ([`PathIndexKind`] carries the
//! choice through planning, `EXPLAIN` and the executor).
//!
//! Invalidation mirrors the graph-index registry: entries cache against the
//! catalog's per-table **version counter** (any DML bumps it; the next
//! query rebuilds lazily), and the registry's own **structural version**
//! participates in [`Database::schema_version`](crate::Database::
//! schema_version), so cached plans that decided for or against a path
//! index are invalidated by `CREATE`/`DROP PATH INDEX`.

use crate::error::{bind_err, Error};
use crate::exec::graph_op::{build_graph_with_threads, MaterializedGraph};
use gsql_accel::{
    alt_multi_target, ch_many_to_many, ch_query, AltMultiResult, ContractionHierarchy, Landmarks,
};
use gsql_parallel::Pool;
use gsql_storage::{Catalog, Column, DataType};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

type Result<T> = std::result::Result<T, Error>;

/// Upper bound on the landmark count: beyond this the `O(k)` per-vertex
/// bound evaluation starts to cost more than the pruning saves, and the
/// index memory (`2·k·|V|·8` bytes) grows without benefit.
pub const MAX_LANDMARKS: u32 = 64;

/// Landmark count used when `GSQL_PATH_INDEX_KIND=landmarks` overrides a
/// `USING CONTRACTION` declaration (no `k` was declared to reuse).
const FORCED_LANDMARKS: u32 = 8;

/// The preprocessing tier of one path index. Carried from DDL through the
/// registry, the optimizer's choice, `EXPLAIN` labels and the executor's
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathIndexKind {
    /// ALT: `k` landmark distance vectors + goal-directed bidirectional A*.
    Landmarks(u32),
    /// Contraction hierarchy: shortcut overlay + bidirectional upward
    /// Dijkstra with stall-on-demand.
    Contraction,
}

impl PathIndexKind {
    /// Short plan-label form (`EXPLAIN` shows `PathIndex pi ON t (CH)`).
    pub fn label(&self) -> &'static str {
        match self {
            PathIndexKind::Landmarks(_) => "ALT",
            PathIndexKind::Contraction => "CH",
        }
    }
}

impl fmt::Display for PathIndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathIndexKind::Landmarks(k) => write!(f, "landmarks({k})"),
            PathIndexKind::Contraction => write!(f, "contraction"),
        }
    }
}

/// CI / experimentation override: `GSQL_PATH_INDEX_KIND=contraction` (or
/// `ch`) builds every path index as a contraction hierarchy regardless of
/// its `USING` clause; `landmarks` / `alt` forces ALT. Unset or anything
/// else honours the DDL. Cached after the first read (mirrors
/// `GSQL_PATH_INDEX` / `GSQL_THREADS`). Declared-kind *validation* (e.g.
/// the landmark-count range) still applies before the override.
fn forced_kind() -> Option<PathIndexKind> {
    static CACHE: OnceLock<Option<PathIndexKind>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let value = std::env::var("GSQL_PATH_INDEX_KIND")
            .map(|v| v.trim().to_ascii_lowercase())
            .unwrap_or_default();
        match value.as_str() {
            "contraction" | "ch" => Some(PathIndexKind::Contraction),
            "landmarks" | "alt" => Some(PathIndexKind::Landmarks(FORCED_LANDMARKS)),
            _ => None,
        }
    })
}

/// The kind actually built for a declared kind, after the
/// `GSQL_PATH_INDEX_KIND` override. A forced-landmarks override keeps a
/// declared landmark count.
fn effective_kind(declared: PathIndexKind) -> PathIndexKind {
    match (forced_kind(), declared) {
        (Some(PathIndexKind::Landmarks(_)), PathIndexKind::Landmarks(k)) => {
            PathIndexKind::Landmarks(k)
        }
        (Some(forced), _) => forced,
        (None, declared) => declared,
    }
}

/// The built acceleration structure of one path index.
#[derive(Debug)]
pub enum AccelIndex {
    /// An ALT landmark index.
    Alt(Landmarks),
    /// A contraction hierarchy.
    Ch(ContractionHierarchy),
}

/// Everything a query needs from one built path index.
#[derive(Debug)]
pub struct PathIndexData {
    /// The materialized graph (snapshot, CSR, dictionary). Its reverse CSR
    /// is forced at build time, so queries never pay for it.
    pub graph: Arc<MaterializedGraph>,
    /// The acceleration index (ALT landmarks or contraction hierarchy).
    pub accel: AccelIndex,
    /// Ordinal of the weight column in the edge table's schema; `None` for
    /// a hop-distance index.
    pub weight_key: Option<usize>,
    /// Weights in forward-CSR slot order (present iff `weight_key`).
    pub weights_fwd: Option<Vec<i64>>,
    /// Weights in reverse-CSR slot order (present iff `weight_key`).
    pub weights_bwd: Option<Vec<i64>>,
}

impl PathIndexData {
    /// The per-slot weight pair in the form [`gsql_accel::alt_bidirectional`]
    /// consumes (`None` = unit weights).
    pub fn weight_slices(&self) -> Option<(&[i64], &[i64])> {
        match (&self.weights_fwd, &self.weights_bwd) {
            (Some(f), Some(b)) => Some((f.as_slice(), b.as_slice())),
            _ => None,
        }
    }

    /// One accelerated point-to-point search over the index's native
    /// weights (hop distances for an unweighted index): `(exact cost,
    /// settled vertices)`. Dispatches on the built [`AccelIndex`]; either
    /// way the cost is bit-identical to plain Dijkstra.
    pub fn search(&self, source: u32, dest: u32) -> (Option<u64>, usize) {
        match &self.accel {
            AccelIndex::Alt(lm) => {
                let r = gsql_accel::alt_bidirectional(
                    &self.graph.csr,
                    self.graph.reverse(),
                    self.weight_slices(),
                    lm,
                    source,
                    dest,
                );
                (r.dist, r.settled)
            }
            AccelIndex::Ch(ch) => {
                let r = ch_query(ch, source, dest);
                (r.dist, r.settled)
            }
        }
    }

    /// One accelerated **batch** search: every `(source, dest)` pair
    /// answered over the index's native weights, bit-identical to per-pair
    /// Dijkstra at every thread count. Returns `None` when `deadline`
    /// expires between per-vertex search phases (the caller maps that to
    /// the statement timeout).
    ///
    /// A CH index answers the whole batch with the bucket-based
    /// many-to-many algorithm — one backward upward search per distinct
    /// target filling per-vertex buckets, one forward upward search per
    /// distinct source scanning them — so an `S × T` matrix costs `S + T`
    /// upward searches. An ALT index runs one multi-target goal-directed
    /// search per distinct source (the landmark bound aggregated over that
    /// source's target set). Both fan out over a pool of `threads`
    /// workers.
    pub fn search_batch(
        &self,
        pairs: &[(u32, u32)],
        threads: usize,
        deadline: Option<Instant>,
    ) -> Option<BatchSearch> {
        match &self.accel {
            AccelIndex::Ch(ch) => {
                let mut sources: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
                sources.sort_unstable();
                sources.dedup();
                let mut targets: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
                targets.sort_unstable();
                targets.dedup();
                let m = ch_many_to_many(ch, &sources, &targets, threads, deadline)?;
                let dist = pairs
                    .iter()
                    .map(|&(s, d)| {
                        let si = sources.binary_search(&s).expect("source in distinct set");
                        let ti = targets.binary_search(&d).expect("target in distinct set");
                        let v = m.dist(si, ti, targets.len());
                        (v != gsql_accel::INF).then_some(v)
                    })
                    .collect();
                Some(BatchSearch {
                    dist,
                    settled: m.settled,
                    kind: "ch-m2m",
                    detail: format!("settled={} (ch-m2m, buckets={})", m.settled, m.bucket_entries),
                })
            }
            AccelIndex::Alt(lm) => {
                // Group pairs by source (input indices, like BatchComputer)
                // so each distinct source runs one multi-target search over
                // exactly its own target set.
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_unstable_by_key(|&i| pairs[i].0);
                let mut groups: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
                let mut g = 0;
                while g < order.len() {
                    let source = pairs[order[g]].0;
                    let mut end = g;
                    while end < order.len() && pairs[order[end]].0 == source {
                        end += 1;
                    }
                    groups.push((source, g..end));
                    g = end;
                }
                let pool = Pool::new(threads);
                let expired = AtomicBool::new(false);
                let weights = self.weights_fwd.as_deref();
                let per_group: Vec<AltMultiResult> = pool.map(groups.len(), |gi| {
                    if let Some(deadline) = deadline {
                        if expired.load(Ordering::Relaxed) || Instant::now() >= deadline {
                            expired.store(true, Ordering::Relaxed);
                            return AltMultiResult { dist: Vec::new(), settled: 0 };
                        }
                    }
                    let (source, ref range) = groups[gi];
                    let targets: Vec<u32> =
                        order[range.clone()].iter().map(|&i| pairs[i].1).collect();
                    alt_multi_target(&self.graph.csr, weights, lm, source, &targets)
                });
                if expired.load(Ordering::Relaxed) {
                    return None;
                }
                let mut dist = vec![None; pairs.len()];
                let mut settled = 0usize;
                for ((_, range), r) in groups.iter().zip(per_group) {
                    settled += r.settled;
                    for (&i, &d) in order[range.clone()].iter().zip(&r.dist) {
                        dist[i] = (d != gsql_accel::INF).then_some(d);
                    }
                }
                Some(BatchSearch {
                    dist,
                    settled,
                    kind: "alt-multi",
                    detail: format!("settled={settled} (alt-multi, landmarks={})", lm.len()),
                })
            }
        }
    }

    /// The metrics label of the point-to-point tier this index serves
    /// queries with — one of [`gsql_obs::ACCEL_KINDS`].
    pub fn kind_name(&self) -> &'static str {
        match &self.accel {
            AccelIndex::Alt(_) => "alt",
            AccelIndex::Ch(_) => "ch",
        }
    }

    /// The `EXPLAIN ANALYZE` detail line for a query that settled
    /// `settled` vertices through this index.
    pub fn analyze_detail(&self, settled: usize) -> String {
        match &self.accel {
            AccelIndex::Alt(lm) => {
                format!("settled={settled} (alt, landmarks={})", lm.len())
            }
            AccelIndex::Ch(ch) => {
                format!("settled={settled} (ch, shortcuts={})", ch.shortcuts())
            }
        }
    }
}

/// The result of one [`PathIndexData::search_batch`] call.
#[derive(Debug)]
pub struct BatchSearch {
    /// Exact per-pair cost in input order; `None` when unreachable.
    pub dist: Vec<Option<u64>>,
    /// Vertices settled across every search of the batch.
    pub settled: usize,
    /// The metrics label of the many-to-many tier that ran — `"ch-m2m"`
    /// or `"alt-multi"` (one of [`gsql_obs::ACCEL_KINDS`]).
    pub kind: &'static str,
    /// The `EXPLAIN ANALYZE` detail line, tier included —
    /// `settled=N (ch-m2m, buckets=B)` or
    /// `settled=N (alt-multi, landmarks=k)`.
    pub detail: String,
}

/// Planner-visible description of a registered path index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathIndexMeta {
    /// Index name (lowercased registry key).
    pub name: String,
    /// Ordinal of the weight column in the table schema, `None` for hops.
    pub weight_key: Option<usize>,
    /// The (effective) kind the index is built as.
    pub kind: PathIndexKind,
}

/// One row of `SHOW PATH INDEXES`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathIndexListing {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Kind (`landmarks(k)` / `contraction`).
    pub kind: String,
    /// `built` when the cached data matches the table's current version,
    /// `stale` when the next accelerated query will rebuild it.
    pub status: &'static str,
}

/// The persisted form of one path-index registry entry: the definition
/// plus, when the index was built, the data and the table version the
/// build observed.
#[derive(Debug)]
pub(crate) struct PathIndexSnapshotEntry {
    /// Lowercased registry key.
    pub name: String,
    /// Lowercased indexed table.
    pub table: String,
    /// Source key column, as declared.
    pub src_col: String,
    /// Destination key column, as declared.
    pub dst_col: String,
    /// Weight column, as declared (`None` = hop distances).
    pub weight_col: Option<String>,
    /// Ordinal of the weight column in the table schema.
    pub weight_key: Option<usize>,
    /// The effective kind the index is built as.
    pub kind: PathIndexKind,
    /// `(table version when built, the data)` — `None` when stale.
    pub built: Option<(u64, Arc<PathIndexData>)>,
}

/// One registered path index.
#[derive(Debug)]
struct IndexEntry {
    table: String,
    src_col: String,
    dst_col: String,
    weight_col: Option<String>,
    weight_key: Option<usize>,
    /// The effective kind (declared kind after the CI override).
    kind: PathIndexKind,
    /// `(table version when built, the data)`.
    cached: Option<(u64, Arc<PathIndexData>)>,
}

/// Registry of path indexes, keyed by (lowercased) index name.
///
/// Carries a structural version counter bumped on create/drop, consumed by
/// the session plan cache through `Database::schema_version`.
#[derive(Debug, Default)]
pub struct PathIndexRegistry {
    inner: RwLock<HashMap<String, IndexEntry>>,
    version: AtomicU64,
    /// Full index builds performed by this process (eager creates plus lazy
    /// rebuilds). A warm restart from a matching snapshot leaves this at
    /// zero — the restart benchmark and tests assert on it.
    builds: AtomicU64,
}

impl PathIndexRegistry {
    /// Empty registry.
    pub fn new() -> PathIndexRegistry {
        PathIndexRegistry::default()
    }

    /// Structural version (bumped on every create/drop).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// How many full acceleration-index builds this process has run
    /// (creates and lazy rebuilds). Restoring built indexes from a
    /// snapshot does not count: that is the warm-start guarantee.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Every index covering `(table, src_col, dst_col)`, sorted by name so
    /// planning is deterministic (matching is case-insensitive). Several
    /// indexes may cover one edge configuration — e.g. a hop index and a
    /// weighted index, or an ALT and a CH index — and the optimizer picks
    /// among the ones whose weight configuration the query's specs can
    /// actually use.
    pub fn find_indexes(&self, table: &str, src_col: &str, dst_col: &str) -> Vec<PathIndexMeta> {
        let table_key = table.to_ascii_lowercase();
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut found: Vec<PathIndexMeta> = inner
            .iter()
            .filter(|(_, e)| {
                e.table == table_key
                    && e.src_col.eq_ignore_ascii_case(src_col)
                    && e.dst_col.eq_ignore_ascii_case(dst_col)
            })
            .map(|(name, e)| PathIndexMeta {
                name: name.clone(),
                weight_key: e.weight_key,
                kind: e.kind,
            })
            .collect();
        found.sort_by(|a, b| a.name.cmp(&b.name));
        found
    }

    /// Fetch the (fresh) data of the index named `name`, rebuilding a stale
    /// cache entry with `threads` workers. `None` when the index no longer
    /// exists — callers fall back to the unaccelerated path.
    pub fn data_by_name(
        &self,
        catalog: &Catalog,
        name: &str,
        threads: usize,
    ) -> Result<Option<Arc<PathIndexData>>> {
        let key = name.to_ascii_lowercase();
        let (table, src_col, dst_col, weight_col, kind) = {
            let inner = self.inner.read().expect("registry lock poisoned");
            let Some(entry) = inner.get(&key) else {
                return Ok(None);
            };
            let current = catalog.entry(&entry.table).map_err(Error::Storage)?;
            if let Some((version, data)) = &entry.cached {
                if *version == current.version {
                    return Ok(Some(Arc::clone(data)));
                }
            }
            (
                entry.table.clone(),
                entry.src_col.clone(),
                entry.dst_col.clone(),
                entry.weight_col.clone(),
                entry.kind,
            )
        };
        // Stale: rebuild outside the read lock.
        let entry = catalog.entry(&table).map_err(Error::Storage)?;
        let data = Arc::new(build_data(
            catalog,
            &table,
            &src_col,
            &dst_col,
            weight_col.as_deref(),
            kind,
            threads,
        )?);
        self.builds.fetch_add(1, Ordering::AcqRel);
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(e) = inner.get_mut(&key) {
            // Skip the write-back if the index was concurrently dropped and
            // recreated over a different configuration (columns, weight or
            // index kind).
            if e.table == table
                && e.src_col.eq_ignore_ascii_case(&src_col)
                && e.dst_col.eq_ignore_ascii_case(&dst_col)
                && e.weight_col == weight_col
                && e.kind == kind
            {
                e.cached = Some((entry.version, Arc::clone(&data)));
            }
        }
        Ok(Some(data))
    }

    /// Create an index and build its acceleration data eagerly with
    /// `threads` workers. With `if_not_exists`, creating over an existing
    /// name is a no-op (returns `Ok` without building).
    #[allow(clippy::too_many_arguments)]
    pub fn create_index(
        &self,
        catalog: &Catalog,
        name: &str,
        table: &str,
        src_col: &str,
        dst_col: &str,
        weight_col: Option<&str>,
        kind: PathIndexKind,
        if_not_exists: bool,
        threads: usize,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if let PathIndexKind::Landmarks(k) = kind {
            if k == 0 || k > MAX_LANDMARKS {
                return Err(bind_err!(
                    "LANDMARKS count must be between 1 and {MAX_LANDMARKS}, got {k}"
                ));
            }
        }
        // Reject duplicate names before paying for the build; the write
        // lock below re-checks to close the create/create race.
        if self.inner.read().expect("registry lock poisoned").contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(bind_err!("path index '{name}' already exists"));
        }
        let entry = catalog.entry(table).map_err(Error::Storage)?;
        let schema = entry.table.schema();
        let src_key = schema
            .index_of(src_col)
            .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
        let dst_key = schema
            .index_of(dst_col)
            .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
        let s_ty = schema.column(src_key).ty;
        let d_ty = schema.column(dst_key).ty;
        if s_ty != d_ty {
            return Err(bind_err!(
                "EDGE columns must have matching types, found {s_ty} and {d_ty}"
            ));
        }
        if !s_ty.is_vertex_key() {
            return Err(bind_err!("type {s_ty} cannot be used as a graph vertex key"));
        }
        let weight_key = match weight_col {
            None => None,
            Some(w) => {
                let idx = schema
                    .index_of(w)
                    .ok_or_else(|| bind_err!("no column '{w}' in table '{table}'"))?;
                let ty = schema.column(idx).ty;
                if ty != DataType::Int {
                    return Err(bind_err!(
                        "PATH INDEX WEIGHT column must be INTEGER so accelerated costs stay \
                         exact, found {ty}; CAST the weight into an integer column"
                    ));
                }
                Some(idx)
            }
        };
        let kind = effective_kind(kind);
        let data =
            Arc::new(build_data(catalog, table, src_col, dst_col, weight_col, kind, threads)?);
        self.builds.fetch_add(1, Ordering::AcqRel);

        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(bind_err!("path index '{name}' already exists"));
        }
        inner.insert(
            key,
            IndexEntry {
                table: table.to_ascii_lowercase(),
                src_col: src_col.to_string(),
                dst_col: dst_col.to_string(),
                weight_col: weight_col.map(str::to_string),
                weight_key,
                kind,
                cached: Some((entry.version, data)),
            },
        );
        drop(inner);
        self.bump_version();
        Ok(())
    }

    /// Drop an index. With `if_exists`, dropping a missing name is a no-op.
    pub fn drop_index(&self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let removed = inner.remove(&key);
        drop(inner);
        if removed.is_some() {
            self.bump_version();
            Ok(())
        } else if if_exists {
            Ok(())
        } else {
            Err(bind_err!("path index '{name}' does not exist"))
        }
    }

    /// Remove every index defined over `table` (used by `DROP TABLE`).
    pub fn drop_indexes_for_table(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let before = inner.len();
        inner.retain(|_, e| e.table != key);
        let removed = before != inner.len();
        drop(inner);
        if removed {
            self.bump_version();
        }
    }

    /// Every registered index — definition plus, when built, the cached
    /// data and the table version it was built against — sorted by name.
    /// This is what a snapshot checkpoint serializes: unlike graph indexes,
    /// the built acceleration structures are persisted so a warm restart
    /// answers accelerated queries with zero rebuild work.
    pub(crate) fn snapshot_entries(&self) -> Vec<PathIndexSnapshotEntry> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut entries: Vec<PathIndexSnapshotEntry> = inner
            .iter()
            .map(|(name, e)| PathIndexSnapshotEntry {
                name: name.clone(),
                table: e.table.clone(),
                src_col: e.src_col.clone(),
                dst_col: e.dst_col.clone(),
                weight_col: e.weight_col.clone(),
                weight_key: e.weight_key,
                kind: e.kind,
                built: e.cached.as_ref().map(|(v, d)| (*v, Arc::clone(d))),
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Re-register an index from a snapshot without building or bumping the
    /// structural version. `built` carries restored data stamped with the
    /// table version it matches; `None` (or a version that went stale)
    /// leaves the entry for the usual lazy rebuild.
    pub(crate) fn restore_entry(&self, snap: PathIndexSnapshotEntry) {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        inner.insert(
            snap.name,
            IndexEntry {
                table: snap.table,
                src_col: snap.src_col,
                dst_col: snap.dst_col,
                weight_col: snap.weight_col,
                weight_key: snap.weight_key,
                kind: snap.kind,
                cached: snap.built,
            },
        );
    }

    /// Restore the structural version counter recorded in a snapshot.
    pub(crate) fn set_version(&self, version: u64) {
        self.version.store(version, Ordering::Release);
    }

    /// Names of all indexes, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }

    /// All registered indexes with kind and freshness, sorted by name — the
    /// `SHOW PATH INDEXES` result. `stale` means the next accelerated query
    /// will rebuild the data lazily (the table mutated since the build).
    pub fn list(&self, catalog: &Catalog) -> Vec<PathIndexListing> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut rows: Vec<PathIndexListing> = inner
            .iter()
            .map(|(name, e)| {
                let status = match &e.cached {
                    Some((version, _)) => match catalog.entry(&e.table) {
                        Ok(current) if current.version == *version => "built",
                        _ => "stale",
                    },
                    None => "stale",
                };
                PathIndexListing {
                    name: name.clone(),
                    table: e.table.clone(),
                    kind: e.kind.to_string(),
                    status,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }
}

/// Build the full per-index data set: graph, reverse CSR, validated slot
/// weights, and the acceleration structure of the requested kind.
fn build_data(
    catalog: &Catalog,
    table: &str,
    src_col: &str,
    dst_col: &str,
    weight_col: Option<&str>,
    kind: PathIndexKind,
    threads: usize,
) -> Result<PathIndexData> {
    let entry = catalog.entry(table).map_err(Error::Storage)?;
    let schema = entry.table.schema();
    let src_key = schema
        .index_of(src_col)
        .ok_or_else(|| bind_err!("no column '{src_col}' in table '{table}'"))?;
    let dst_key = schema
        .index_of(dst_col)
        .ok_or_else(|| bind_err!("no column '{dst_col}' in table '{table}'"))?;
    let weight_key = weight_col
        .map(|w| schema.index_of(w).ok_or_else(|| bind_err!("no column '{w}' in table '{table}'")))
        .transpose()?;

    let graph =
        Arc::new(build_graph_with_threads(Arc::clone(&entry.table), src_key, dst_key, threads)?);
    let reverse = graph.reverse(); // force + cache the reverse CSR now

    let (weights_fwd, weights_bwd) = match weight_key {
        None => (None, None),
        Some(wk) => {
            // Read row-indexed weights off the NULL-filtered snapshot so
            // they line up with the CSR's edge-row ids.
            let col = graph.edges.column(wk);
            let raw: Vec<i64> = match col {
                Column::Int(vals, validity) => {
                    if let Some(row) = (0..vals.len()).find(|&i| !validity.get(i)) {
                        return Err(Error::Graph(gsql_graph::GraphError::NullWeight {
                            edge_row: row as u32,
                        }));
                    }
                    vals.clone()
                }
                other => {
                    return Err(bind_err!(
                        "PATH INDEX WEIGHT column must be INTEGER, found {}",
                        other.data_type()
                    ))
                }
            };
            let fwd =
                graph.csr.permute_weights_int_with_threads(&raw, threads).map_err(Error::Graph)?;
            let bwd =
                reverse.permute_weights_int_with_threads(&raw, threads).map_err(Error::Graph)?;
            (Some(fwd), Some(bwd))
        }
    };

    let accel = match kind {
        PathIndexKind::Landmarks(k) => AccelIndex::Alt(Landmarks::build(
            &graph.csr,
            reverse,
            match (&weights_fwd, &weights_bwd) {
                (Some(f), Some(b)) => Some((f.as_slice(), b.as_slice())),
                _ => None,
            },
            k as usize,
            threads,
        )),
        PathIndexKind::Contraction => {
            AccelIndex::Ch(ContractionHierarchy::build(&graph.csr, weights_fwd.as_deref(), threads))
        }
    };
    Ok(PathIndexData { graph, accel, weight_key, weights_fwd, weights_bwd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, Schema, Value};

    fn setup() -> (Catalog, PathIndexRegistry) {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "roads",
                Schema::new(vec![
                    ColumnDef::not_null("a", DataType::Int),
                    ColumnDef::not_null("b", DataType::Int),
                    ColumnDef::not_null("len", DataType::Int),
                ]),
            )
            .unwrap();
        catalog
            .update("roads", |t| {
                for (a, b, len) in [(1, 2, 5), (2, 3, 5), (1, 3, 20), (3, 4, 1)] {
                    t.append_row(vec![Value::Int(a), Value::Int(b), Value::Int(len)])?;
                }
                Ok(())
            })
            .unwrap();
        (catalog, PathIndexRegistry::new())
    }

    fn create(
        reg: &PathIndexRegistry,
        catalog: &Catalog,
        name: &str,
        weight: Option<&str>,
        kind: PathIndexKind,
    ) -> Result<()> {
        reg.create_index(catalog, name, "roads", "a", "b", weight, kind, false, 2)
    }

    #[test]
    fn create_build_and_query_data() {
        let (catalog, reg) = setup();
        for (name, kind) in
            [("pa", PathIndexKind::Landmarks(2)), ("pc", PathIndexKind::Contraction)]
        {
            create(&reg, &catalog, name, Some("len"), kind).unwrap();
            let meta =
                reg.find_indexes("ROADS", "A", "B").into_iter().find(|m| m.name == name).unwrap();
            assert_eq!(meta.weight_key, Some(2));
            let data = reg.data_by_name(&catalog, name, 2).unwrap().unwrap();
            assert_eq!(data.graph.num_edges(), 4);
            assert!(data.weight_slices().is_some());
            // Exact accelerated distance through the cheap 1→2→3 route.
            let s = data.graph.lookup(&Value::Int(1)).unwrap();
            let d = data.graph.lookup(&Value::Int(3)).unwrap();
            let (dist, _) = data.search(s, d);
            assert_eq!(dist, Some(10), "{name}");
            // Unchanged table: same Arc on the next fetch.
            let again = reg.data_by_name(&catalog, name, 2).unwrap().unwrap();
            assert!(Arc::ptr_eq(&data, &again));
        }
    }

    #[test]
    fn mutation_invalidates_and_rebuilds() {
        let (catalog, reg) = setup();
        create(&reg, &catalog, "pi", None, PathIndexKind::Landmarks(3)).unwrap();
        let d1 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        catalog
            .update("roads", |t| t.append_row(vec![Value::Int(4), Value::Int(5), Value::Int(2)]))
            .unwrap();
        let d2 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(d2.graph.num_edges(), 5);
        let d3 = reg.data_by_name(&catalog, "pi", 1).unwrap().unwrap();
        assert!(Arc::ptr_eq(&d2, &d3));
    }

    #[test]
    fn validation_errors() {
        let (catalog, reg) = setup();
        let lm = PathIndexKind::Landmarks(2);
        assert!(reg.create_index(&catalog, "pi", "nope", "a", "b", None, lm, false, 1).is_err());
        assert!(reg.create_index(&catalog, "pi", "roads", "zzz", "b", None, lm, false, 1).is_err());
        assert!(reg
            .create_index(&catalog, "pi", "roads", "a", "b", Some("zzz"), lm, false, 1)
            .is_err());
        let zero = PathIndexKind::Landmarks(0);
        assert!(reg.create_index(&catalog, "pi", "roads", "a", "b", None, zero, false, 1).is_err());
        let over = PathIndexKind::Landmarks(MAX_LANDMARKS + 1);
        assert!(reg.create_index(&catalog, "pi", "roads", "a", "b", None, over, false, 1).is_err());
        create(&reg, &catalog, "pi", None, lm).unwrap();
        assert!(create(&reg, &catalog, "PI", None, lm).is_err());
        assert!(reg.drop_index("missing", false).is_err());
        reg.drop_index("pi", false).unwrap();
        assert!(reg.index_names().is_empty());
    }

    #[test]
    fn if_not_exists_and_if_exists_are_noops() {
        let (catalog, reg) = setup();
        create(&reg, &catalog, "pi", None, PathIndexKind::Contraction).unwrap();
        let v = reg.version();
        // Same name again: hard create errors, IF NOT EXISTS is a no-op
        // that leaves the registry version untouched (no plan invalidation).
        assert!(create(&reg, &catalog, "pi", None, PathIndexKind::Contraction).is_err());
        reg.create_index(
            &catalog,
            "PI",
            "roads",
            "a",
            "b",
            None,
            PathIndexKind::Landmarks(2),
            true,
            1,
        )
        .unwrap();
        assert_eq!(reg.version(), v);
        assert_eq!(reg.index_names(), vec!["pi".to_string()]);
        // IF EXISTS drop of a missing index succeeds without a bump.
        reg.drop_index("ghost", true).unwrap();
        assert_eq!(reg.version(), v);
        reg.drop_index("pi", true).unwrap();
        assert_eq!(reg.version(), v + 1);
    }

    #[test]
    fn listing_reports_kind_and_freshness() {
        let (catalog, reg) = setup();
        create(&reg, &catalog, "pa", Some("len"), PathIndexKind::Landmarks(2)).unwrap();
        create(&reg, &catalog, "pc", None, PathIndexKind::Contraction).unwrap();
        let rows = reg.list(&catalog);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "pa");
        assert_eq!(rows[0].table, "roads");
        assert_eq!(rows[0].status, "built");
        assert_eq!(rows[1].name, "pc");
        // Under GSQL_PATH_INDEX_KIND both entries may report the forced
        // kind; without it they report their declared kinds.
        if forced_kind().is_none() {
            assert_eq!(rows[0].kind, "landmarks(2)");
            assert_eq!(rows[1].kind, "contraction");
        }
        // Mutating the table flips both to stale; fetching rebuilds one.
        catalog
            .update("roads", |t| t.append_row(vec![Value::Int(8), Value::Int(9), Value::Int(1)]))
            .unwrap();
        let rows = reg.list(&catalog);
        assert!(rows.iter().all(|r| r.status == "stale"), "{rows:?}");
        reg.data_by_name(&catalog, "pa", 1).unwrap().unwrap();
        let rows = reg.list(&catalog);
        assert_eq!(rows[0].status, "built");
        assert_eq!(rows[1].status, "stale");
    }

    #[test]
    fn weight_column_must_be_integer() {
        let (catalog, reg) = setup();
        catalog
            .create_table(
                "fe",
                Schema::new(vec![
                    ColumnDef::not_null("s", DataType::Int),
                    ColumnDef::not_null("d", DataType::Int),
                    ColumnDef::not_null("w", DataType::Double),
                ]),
            )
            .unwrap();
        let err = reg
            .create_index(
                &catalog,
                "pi",
                "fe",
                "s",
                "d",
                Some("w"),
                PathIndexKind::Landmarks(2),
                false,
                1,
            )
            .unwrap_err();
        assert!(err.to_string().contains("INTEGER"), "{err}");
    }

    #[test]
    fn non_positive_weights_rejected_at_build() {
        let (catalog, reg) = setup();
        catalog
            .update("roads", |t| t.append_row(vec![Value::Int(9), Value::Int(10), Value::Int(0)]))
            .unwrap();
        for kind in [PathIndexKind::Landmarks(2), PathIndexKind::Contraction] {
            let err = create(&reg, &catalog, "pi", Some("len"), kind).unwrap_err();
            assert!(err.to_string().contains("strictly greater than 0"), "{err}");
        }
    }

    #[test]
    fn version_bumps_on_create_and_drop() {
        let (catalog, reg) = setup();
        assert_eq!(reg.version(), 0);
        create(&reg, &catalog, "pi", None, PathIndexKind::Landmarks(2)).unwrap();
        assert_eq!(reg.version(), 1);
        reg.drop_index("pi", false).unwrap();
        assert_eq!(reg.version(), 2);
        create(&reg, &catalog, "pi", None, PathIndexKind::Contraction).unwrap();
        reg.drop_indexes_for_table("roads");
        assert_eq!(reg.version(), 4);
        reg.drop_indexes_for_table("roads");
        assert_eq!(reg.version(), 4);
    }
}
