//! Name-resolution scopes.

use crate::error::{bind_err, Error};
use crate::plan::{PlanColumn, PlanSchema};

/// A name-resolution scope: the visible columns at some point during
/// binding, in plan-output order.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// The columns, with their qualifiers.
    pub schema: PlanSchema,
}

impl Scope {
    /// Empty scope (e.g. `SELECT` without `FROM`).
    pub fn empty() -> Scope {
        Scope::default()
    }

    /// Scope over a plan schema.
    pub fn new(schema: PlanSchema) -> Scope {
        Scope { schema }
    }

    /// Number of visible columns.
    pub fn len(&self) -> usize {
        self.schema.len()
    }

    /// True when no columns are visible.
    pub fn is_empty(&self) -> bool {
        self.schema.is_empty()
    }

    /// Resolve `qualifier.name` (or bare `name`) to a column ordinal.
    ///
    /// Matching is case-insensitive. Bare names that match columns in more
    /// than one table are ambiguous — an error, as in standard SQL.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, Error> {
        let mut matches = self.schema.columns().iter().enumerate().filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match qualifier {
                    Some(q) => c.qualifier.as_deref().is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
                    None => true,
                }
        });
        let first = matches.next();
        let second = matches.next();
        match (first, second) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => match qualifier {
                Some(q) => Err(bind_err!("column reference '{q}.{name}' is ambiguous")),
                None => Err(bind_err!("column reference '{name}' is ambiguous")),
            },
            (None, _) => match qualifier {
                Some(q) => Err(bind_err!("no column '{q}.{name}' in scope")),
                None => Err(bind_err!("no column '{name}' in scope")),
            },
        }
    }

    /// All column ordinals with the given qualifier (for `t.*`).
    pub fn columns_of(&self, qualifier: &str) -> Vec<usize> {
        self.schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.qualifier.as_deref().is_some_and(|q| q.eq_ignore_ascii_case(qualifier))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Concatenate with another scope (join result shape).
    pub fn concat(&self, other: &Scope) -> Scope {
        Scope { schema: self.schema.concat(&other.schema) }
    }

    /// Column at ordinal `i`.
    pub fn column(&self, i: usize) -> &PlanColumn {
        self.schema.column(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::DataType;

    fn scope() -> Scope {
        Scope::new(PlanSchema::new(vec![
            PlanColumn::new("id", DataType::Int).with_qualifier("p1"),
            PlanColumn::new("name", DataType::Varchar).with_qualifier("p1"),
            PlanColumn::new("id", DataType::Int).with_qualifier("p2"),
        ]))
    }

    #[test]
    fn qualified_resolution() {
        let s = scope();
        assert_eq!(s.resolve(Some("p1"), "id").unwrap(), 0);
        assert_eq!(s.resolve(Some("p2"), "id").unwrap(), 2);
        assert_eq!(s.resolve(Some("P1"), "ID").unwrap(), 0); // case-insensitive
    }

    #[test]
    fn bare_name_unique_resolves() {
        let s = scope();
        assert_eq!(s.resolve(None, "name").unwrap(), 1);
    }

    #[test]
    fn bare_name_ambiguous_errors() {
        let s = scope();
        let err = s.resolve(None, "id").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn missing_column_errors() {
        let s = scope();
        assert!(s.resolve(None, "nope").is_err());
        assert!(s.resolve(Some("p3"), "id").is_err());
    }

    #[test]
    fn qualified_wildcard() {
        let s = scope();
        assert_eq!(s.columns_of("p1"), vec![0, 1]);
        assert_eq!(s.columns_of("p2"), vec![2]);
        assert!(s.columns_of("zz").is_empty());
    }
}
