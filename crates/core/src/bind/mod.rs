//! Semantic analysis: scopes, expression binding, statement binding.

pub mod binder;
pub mod expr;
pub mod scope;

pub use binder::Binder;
pub use expr::ExprBinder;
pub use scope::Scope;
