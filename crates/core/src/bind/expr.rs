//! Expression binding: AST expressions → [`BoundExpr`]s over a [`Scope`].

use crate::bind::scope::Scope;
use crate::error::{bind_err, Error};
use crate::plan::expr::{AggFunc, BinaryOp, BoundExpr, ScalarFunc, UnaryOp};
use gsql_parser::ast;
use gsql_storage::{DataType, Date, Value};

/// Result alias local to binding.
type Result<T> = std::result::Result<T, Error>;

/// A hook consulted before default binding of every AST node. Returning
/// `Some` short-circuits (used by the aggregate-aware projection binder to
/// map whole group-by expressions and aggregate calls to output columns).
pub type BindHook<'h> = dyn FnMut(&ast::Expr) -> Option<Result<BoundExpr>> + 'h;

/// Binds AST expressions against a scope.
pub struct ExprBinder<'a> {
    /// Visible columns.
    pub scope: &'a Scope,
}

impl<'a> ExprBinder<'a> {
    /// Create a binder over `scope`.
    pub fn new(scope: &'a Scope) -> ExprBinder<'a> {
        ExprBinder { scope }
    }

    /// Bind an expression. Aggregate function calls are rejected; the
    /// SELECT binder routes them through its own hook.
    pub fn bind(&self, e: &ast::Expr) -> Result<BoundExpr> {
        self.bind_with(e, &mut |_| None)
    }

    /// Bind with a pre-binding hook (see [`BindHook`]).
    pub fn bind_with(&self, e: &ast::Expr, hook: &mut BindHook<'_>) -> Result<BoundExpr> {
        if let Some(result) = hook(e) {
            return result;
        }
        match e {
            ast::Expr::Literal(lit) => Ok(BoundExpr::Literal(bind_literal(lit)?)),
            ast::Expr::Column { table, name } => {
                let idx = self.scope.resolve(table.as_deref(), name)?;
                let col = self.scope.column(idx);
                Ok(BoundExpr::Column { index: idx, ty: col.ty })
            }
            ast::Expr::Param(i) => Ok(BoundExpr::Param(*i)),
            ast::Expr::Unary { op, expr } => {
                let inner = self.bind_with(expr, hook)?;
                match op {
                    ast::UnaryOp::Neg => {
                        if let Some(t) = inner.data_type() {
                            if !t.is_numeric() {
                                return Err(bind_err!("cannot negate a value of type {t}"));
                            }
                        }
                        Ok(BoundExpr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) })
                    }
                    ast::UnaryOp::Not => {
                        check_boolish(&inner, "NOT")?;
                        Ok(BoundExpr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
                    }
                }
            }
            ast::Expr::Binary { left, op, right } => {
                let l = self.bind_with(left, hook)?;
                let r = self.bind_with(right, hook)?;
                self.bind_binary(l, *op, r)
            }
            ast::Expr::IsNull { expr, negated } => {
                let inner = self.bind_with(expr, hook)?;
                Ok(BoundExpr::IsNull { expr: Box::new(inner), negated: *negated })
            }
            ast::Expr::InList { expr, list, negated } => {
                let inner = self.bind_with(expr, hook)?;
                let bound: Vec<BoundExpr> = list
                    .iter()
                    .map(|item| {
                        let b = self.bind_with(item, hook)?;
                        check_comparable(&inner, &b, "IN")?;
                        Ok(b)
                    })
                    .collect::<Result<_>>()?;
                Ok(BoundExpr::InList { expr: Box::new(inner), list: bound, negated: *negated })
            }
            ast::Expr::Between { expr, low, high, negated } => {
                let inner = self.bind_with(expr, hook)?;
                let low = self.coerce_compare(self.bind_with(low, hook)?, &inner)?;
                let high = self.coerce_compare(self.bind_with(high, hook)?, &inner)?;
                check_comparable(&inner, &low, "BETWEEN")?;
                check_comparable(&inner, &high, "BETWEEN")?;
                Ok(BoundExpr::Between {
                    expr: Box::new(inner),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated: *negated,
                })
            }
            ast::Expr::Like { expr, pattern, negated } => {
                let inner = self.bind_with(expr, hook)?;
                let pat = self.bind_with(pattern, hook)?;
                for (side, what) in [(&inner, "operand"), (&pat, "pattern")] {
                    if let Some(t) = side.data_type() {
                        if t != DataType::Varchar {
                            return Err(bind_err!("LIKE {what} must be VARCHAR, found {t}"));
                        }
                    }
                }
                Ok(BoundExpr::Like {
                    expr: Box::new(inner),
                    pattern: Box::new(pat),
                    negated: *negated,
                })
            }
            ast::Expr::Case { operand, branches, else_expr } => {
                let operand =
                    operand.as_ref().map(|o| self.bind_with(o, hook)).transpose()?.map(Box::new);
                let mut bound_branches = Vec::with_capacity(branches.len());
                for (when, then) in branches {
                    let w = self.bind_with(when, hook)?;
                    if operand.is_none() {
                        check_boolish(&w, "CASE WHEN")?;
                    }
                    let t = self.bind_with(then, hook)?;
                    bound_branches.push((w, t));
                }
                let else_expr =
                    else_expr.as_ref().map(|e| self.bind_with(e, hook)).transpose()?.map(Box::new);
                Ok(BoundExpr::Case { operand, branches: bound_branches, else_expr })
            }
            ast::Expr::Cast { expr, ty } => {
                let inner = self.bind_with(expr, hook)?;
                Ok(BoundExpr::Cast { expr: Box::new(inner), ty: type_name_to_datatype(*ty) })
            }
            ast::Expr::Function { name, args, distinct } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(bind_err!(
                        "aggregate function {name} is not allowed in this context"
                    ));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| bind_err!("unknown function '{name}'"))?;
                if *distinct {
                    return Err(bind_err!("DISTINCT is only valid in aggregate functions"));
                }
                let bound: Vec<BoundExpr> =
                    args.iter().map(|a| self.bind_with(a, hook)).collect::<Result<_>>()?;
                check_function_arity(func, bound.len())?;
                Ok(BoundExpr::Func { func, args: bound })
            }
            ast::Expr::Reaches(_) => Err(bind_err!(
                "REACHES is only allowed as a top-level conjunct of the WHERE clause"
            )),
        }
    }

    fn bind_binary(&self, l: BoundExpr, op: ast::BinaryOp, r: BoundExpr) -> Result<BoundExpr> {
        use ast::BinaryOp as A;
        let bop = match op {
            A::Add => BinaryOp::Add,
            A::Sub => BinaryOp::Sub,
            A::Mul => BinaryOp::Mul,
            A::Div => BinaryOp::Div,
            A::Mod => BinaryOp::Mod,
            A::Concat => BinaryOp::Concat,
            A::Eq => BinaryOp::Eq,
            A::NotEq => BinaryOp::NotEq,
            A::Lt => BinaryOp::Lt,
            A::LtEq => BinaryOp::LtEq,
            A::Gt => BinaryOp::Gt,
            A::GtEq => BinaryOp::GtEq,
            A::And => BinaryOp::And,
            A::Or => BinaryOp::Or,
        };
        match bop {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                for side in [&l, &r] {
                    if let Some(t) = side.data_type() {
                        if !t.is_numeric() {
                            return Err(bind_err!(
                                "arithmetic requires numeric operands, found {t}"
                            ));
                        }
                    }
                }
            }
            BinaryOp::And | BinaryOp::Or => {
                check_boolish(&l, "AND/OR")?;
                check_boolish(&r, "AND/OR")?;
            }
            BinaryOp::Concat => {
                for side in [&l, &r] {
                    if side.data_type() == Some(DataType::Path) {
                        return Err(bind_err!("cannot concatenate a PATH value"));
                    }
                }
            }
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                // Comparisons: allow date/string-literal coercion both ways.
                let l2 = self.coerce_compare(l, &r)?;
                let r2 = self.coerce_compare(r, &l2)?;
                check_comparable(&l2, &r2, "comparison")?;
                return Ok(BoundExpr::Binary { left: Box::new(l2), op: bop, right: Box::new(r2) });
            }
        }
        Ok(BoundExpr::Binary { left: Box::new(l), op: bop, right: Box::new(r) })
    }

    /// If `expr` is a string literal and `other` has DATE type, parse the
    /// literal into a date (so `creationDate < '2011-01-01'` works, as in
    /// the paper's appendix A.3).
    fn coerce_compare(&self, expr: BoundExpr, other: &BoundExpr) -> Result<BoundExpr> {
        if other.data_type() == Some(DataType::Date) {
            if let BoundExpr::Literal(Value::Str(s)) = &expr {
                let date = Date::parse(s).map_err(Error::Storage)?;
                return Ok(BoundExpr::Literal(Value::Date(date)));
            }
        }
        Ok(expr)
    }
}

/// Convert an AST literal to a [`Value`].
pub fn bind_literal(lit: &ast::Literal) -> Result<Value> {
    Ok(match lit {
        ast::Literal::Null => Value::Null,
        ast::Literal::Int(v) => Value::Int(*v),
        ast::Literal::Float(v) => Value::Double(*v),
        ast::Literal::String(s) => Value::Str(s.clone()),
        ast::Literal::Bool(b) => Value::Bool(*b),
        ast::Literal::Date(s) => Value::Date(Date::parse(s).map_err(Error::Storage)?),
    })
}

/// Map an AST type name to a storage type.
pub fn type_name_to_datatype(ty: ast::TypeName) -> DataType {
    match ty {
        ast::TypeName::Integer => DataType::Int,
        ast::TypeName::Double => DataType::Double,
        ast::TypeName::Varchar => DataType::Varchar,
        ast::TypeName::Boolean => DataType::Bool,
        ast::TypeName::Date => DataType::Date,
    }
}

fn check_boolish(e: &BoundExpr, ctx: &str) -> Result<()> {
    if let Some(t) = e.data_type() {
        if t != DataType::Bool {
            return Err(bind_err!("{ctx} requires a BOOLEAN operand, found {t}"));
        }
    }
    Ok(())
}

fn check_comparable(l: &BoundExpr, r: &BoundExpr, ctx: &str) -> Result<()> {
    match (l.data_type(), r.data_type()) {
        (Some(a), Some(b)) => {
            let ok = a == b || (a.is_numeric() && b.is_numeric());
            if !ok {
                return Err(bind_err!("{ctx} between incompatible types {a} and {b}"));
            }
            if a == DataType::Path {
                return Err(bind_err!("PATH values cannot be compared"));
            }
            Ok(())
        }
        _ => Ok(()), // unknown (param/NULL): checked at runtime
    }
}

fn check_function_arity(func: ScalarFunc, n: usize) -> Result<()> {
    let expected: std::ops::RangeInclusive<usize> = match func {
        ScalarFunc::Upper
        | ScalarFunc::Lower
        | ScalarFunc::Length
        | ScalarFunc::Abs
        | ScalarFunc::Round
        | ScalarFunc::Floor
        | ScalarFunc::Ceil
        | ScalarFunc::Sqrt => 1..=1,
        ScalarFunc::Nullif => 2..=2,
        ScalarFunc::Coalesce => 1..=usize::MAX,
    };
    if !expected.contains(&n) {
        return Err(bind_err!("wrong number of arguments for {func:?}: {n}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanColumn, PlanSchema};
    use gsql_parser::Lexer;
    use gsql_parser::Parser;

    fn scope() -> Scope {
        Scope::new(PlanSchema::new(vec![
            PlanColumn::new("id", DataType::Int).with_qualifier("t"),
            PlanColumn::new("name", DataType::Varchar).with_qualifier("t"),
            PlanColumn::new("born", DataType::Date).with_qualifier("t"),
        ]))
    }

    fn bind(src: &str) -> Result<BoundExpr> {
        let tokens = Lexer::new(src).tokenize().unwrap();
        let mut p = Parser::new(tokens);
        let e = p.parse_expr().unwrap();
        let s = scope();
        ExprBinder::new(&s).bind(&e)
    }

    #[test]
    fn binds_column_refs() {
        let b = bind("t.id + 1").unwrap();
        assert_eq!(b.data_type(), Some(DataType::Int));
        assert_eq!(b.referenced_columns(), vec![0]);
    }

    #[test]
    fn rejects_unknown_column() {
        assert!(bind("missing").is_err());
    }

    #[test]
    fn rejects_non_numeric_arithmetic() {
        let err = bind("name + 1").unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn rejects_incomparable_types() {
        let err = bind("id = name").unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn coerces_date_string_comparison() {
        let b = bind("born < '2011-01-01'").unwrap();
        // The string literal became a date literal.
        let mut saw_date = false;
        b.visit(&mut |e| {
            if let BoundExpr::Literal(Value::Date(_)) = e {
                saw_date = true;
            }
        });
        assert!(saw_date);
    }

    #[test]
    fn rejects_bad_date_literal_in_comparison() {
        assert!(bind("born < 'tomorrow'").is_err());
    }

    #[test]
    fn rejects_aggregates_in_scalar_context() {
        let err = bind("COUNT(id)").unwrap_err();
        assert!(err.to_string().contains("aggregate"));
    }

    #[test]
    fn binds_functions_with_arity_check() {
        assert!(bind("UPPER(name)").is_ok());
        assert!(bind("UPPER(name, name)").is_err());
        assert!(bind("COALESCE(name, 'x')").is_ok());
        assert!(bind("frobnicate(1)").is_err());
    }

    #[test]
    fn division_yields_double() {
        assert_eq!(bind("id / 2").unwrap().data_type(), Some(DataType::Double));
    }

    #[test]
    fn params_bind_with_unknown_type() {
        let b = bind("id = ?").unwrap();
        assert_eq!(b.data_type(), Some(DataType::Bool));
    }
}
