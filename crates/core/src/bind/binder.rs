//! The binder: AST statements → logical plans.
//!
//! The interesting part is the paper's §3.1 semantic phase: every
//! reachability predicate found as a top-level conjunct of `WHERE` becomes a
//! **graph select** operator; `CHEAPEST SUM` projection items attach to the
//! graph select whose tuple variable they name (or to the only one when
//! unbound), each contributing cost (and optionally path) output columns.

use crate::bind::expr::{bind_literal, type_name_to_datatype, ExprBinder};
use crate::bind::scope::Scope;
use crate::context::ExecContext;
use crate::error::{bind_err, Error};
use crate::plan::{
    AggCall, AggFunc, BoundExpr, CheapestSpec, JoinKind, LogicalPlan, PlanColumn, PlanSchema,
    SortKey,
};
use gsql_parser::ast;
use gsql_storage::{Catalog, DataType, Value};

type Result<T> = std::result::Result<T, Error>;

/// One CTE definition visible during binding.
#[derive(Debug, Clone)]
struct CteDef {
    name: String,
    columns: Option<Vec<String>>,
    query: ast::Query,
}

/// Binds parsed queries against a catalog.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    /// Stack of CTE frames; inner queries see outer CTEs.
    cte_frames: Vec<Vec<CteDef>>,
}

impl<'a> Binder<'a> {
    /// Create a binder for one statement execution context.
    pub fn new(ctx: &ExecContext<'a>) -> Binder<'a> {
        Binder::from_catalog(ctx.catalog())
    }

    /// Create a binder over a bare catalog (no session context).
    pub fn from_catalog(catalog: &'a Catalog) -> Binder<'a> {
        Binder { catalog, cte_frames: Vec::new() }
    }

    /// Bind a full query to a logical plan.
    pub fn bind_query(&mut self, q: &ast::Query) -> Result<LogicalPlan> {
        self.cte_frames.push(Vec::new());
        let result = self.bind_query_inner(q);
        self.cte_frames.pop();
        result
    }

    fn bind_query_inner(&mut self, q: &ast::Query) -> Result<LogicalPlan> {
        for cte in &q.ctes {
            let frame = self.cte_frames.last_mut().expect("frame pushed");
            if frame.iter().any(|c| c.name.eq_ignore_ascii_case(&cte.name)) {
                return Err(bind_err!("duplicate CTE name '{}'", cte.name));
            }
            frame.push(CteDef {
                name: cte.name.clone(),
                columns: cte.columns.clone(),
                query: cte.query.clone(),
            });
        }

        let mut plan = match &q.body {
            ast::SetExpr::Select(select) => {
                return self.bind_select(select, &q.order_by, q.limit.as_ref(), q.offset.as_ref())
            }
            ast::SetExpr::Values(rows) => self.bind_values(rows)?,
            ast::SetExpr::Union { .. } => self.bind_set_tree(&q.body)?,
        };

        // ORDER BY / LIMIT over a non-SELECT body: keys must be output
        // names or ordinals.
        if !q.order_by.is_empty() {
            let scope = Scope::new(plan.schema().clone());
            let mut keys = Vec::new();
            for item in &q.order_by {
                let expr = self.bind_order_key_simple(&scope, &item.expr)?;
                keys.push(SortKey { expr, asc: item.asc });
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }
        plan = self.apply_limit(plan, q.limit.as_ref(), q.offset.as_ref())?;
        Ok(plan)
    }

    fn bind_set_tree(&mut self, body: &ast::SetExpr) -> Result<LogicalPlan> {
        match body {
            ast::SetExpr::Select(select) => self.bind_select(select, &[], None, None),
            ast::SetExpr::Values(rows) => self.bind_values(rows),
            ast::SetExpr::Union { left, right, all } => {
                let l = self.bind_set_tree(left)?;
                let r = self.bind_set_tree(right)?;
                if l.schema().len() != r.schema().len() {
                    return Err(bind_err!(
                        "UNION inputs have different arities: {} vs {}",
                        l.schema().len(),
                        r.schema().len()
                    ));
                }
                let mut unified = Vec::with_capacity(l.schema().len());
                for (lc, rc) in l.schema().columns().iter().zip(r.schema().columns()) {
                    let ty = if lc.ty == rc.ty {
                        lc.ty
                    } else {
                        DataType::numeric_supertype(lc.ty, rc.ty).ok_or_else(|| {
                            bind_err!(
                                "UNION column '{}' has incompatible types {} and {}",
                                lc.name,
                                lc.ty,
                                rc.ty
                            )
                        })?
                    };
                    unified.push(ty);
                }
                // Widen whichever side needs it so the union's schema is
                // accurate (e.g. INT ∪ DOUBLE yields DOUBLE on both sides).
                let l = widen_to(l, &unified);
                let r = widen_to(r, &unified);
                // The plan-level Union is always a bag union; UNION
                // (distinct) adds a Distinct on top.
                let plan = LogicalPlan::Union { left: Box::new(l), right: Box::new(r), all: true };
                Ok(if *all { plan } else { LogicalPlan::Distinct { input: Box::new(plan) } })
            }
        }
    }

    fn bind_values(&mut self, rows: &[Vec<ast::Expr>]) -> Result<LogicalPlan> {
        if rows.is_empty() {
            return Err(bind_err!("VALUES requires at least one row"));
        }
        let arity = rows[0].len();
        let empty = Scope::empty();
        let binder = ExprBinder::new(&empty);
        let mut bound_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != arity {
                return Err(bind_err!(
                    "VALUES rows have inconsistent arities: {} vs {arity}",
                    row.len()
                ));
            }
            bound_rows.push(row.iter().map(|e| binder.bind(e)).collect::<Result<Vec<_>>>()?);
        }
        // Infer per-position types from the first row that knows them.
        let mut schema = PlanSchema::default();
        for i in 0..arity {
            let mut ty = None;
            for row in &bound_rows {
                if let Some(t) = row[i].data_type() {
                    ty = Some(match ty {
                        Some(prev) if prev == t => prev,
                        Some(prev) => DataType::numeric_supertype(prev, t).ok_or_else(|| {
                            bind_err!("VALUES column {} mixes types {prev} and {t}", i + 1)
                        })?,
                        None => t,
                    });
                }
            }
            schema
                .push(PlanColumn::new(format!("column{}", i + 1), ty.unwrap_or(DataType::Varchar)));
        }
        Ok(LogicalPlan::Values { rows: bound_rows, schema })
    }

    // -------------------------------------------------------------- FROM

    fn resolve_cte(&self, name: &str) -> Option<(usize, usize)> {
        for (fi, frame) in self.cte_frames.iter().enumerate().rev() {
            if let Some(ci) = frame.iter().position(|c| c.name.eq_ignore_ascii_case(name)) {
                return Some((fi, ci));
            }
        }
        None
    }

    fn bind_table_ref(&mut self, table: &ast::TableRef) -> Result<(LogicalPlan, Scope)> {
        match table {
            ast::TableRef::Base { name, alias } => {
                if let Some((fi, ci)) = self.resolve_cte(name) {
                    let def = self.cte_frames[fi][ci].clone();
                    // Bind the CTE body with only the frames visible at its
                    // definition point (plus earlier entries of its own
                    // frame), which rules out self-recursion.
                    let saved: Vec<Vec<CteDef>> = self.cte_frames.drain(fi + 1..).collect();
                    let tail: Vec<CteDef> = self.cte_frames[fi].drain(ci..).collect();
                    let plan = self.bind_query(&def.query);
                    self.cte_frames[fi].extend(tail);
                    self.cte_frames.extend(saved);
                    let plan = plan?;
                    let qualifier = alias.clone().unwrap_or_else(|| def.name.clone());
                    let scope = requalify(plan.schema(), &qualifier, def.columns.as_deref())?;
                    return Ok((plan, scope));
                }
                let entry = self.catalog.entry(name).map_err(Error::Storage)?;
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let mut schema = PlanSchema::default();
                for def in entry.table.schema().columns() {
                    schema.push(PlanColumn {
                        qualifier: Some(qualifier.clone()),
                        name: def.name.clone(),
                        ty: def.ty,
                        nullable: def.nullable,
                        nested: None,
                    });
                }
                let plan = LogicalPlan::Scan { table: name.clone(), schema: schema.clone() };
                Ok((plan, Scope::new(schema)))
            }
            ast::TableRef::Derived { query, alias } => {
                let plan = self.bind_query(query)?;
                let scope = requalify(plan.schema(), alias, None)?;
                Ok((plan, scope))
            }
            ast::TableRef::Join { left, right, kind, on } => {
                // LEFT JOIN UNNEST(...) is the paper's mechanism to keep
                // rows whose path is empty.
                if let ast::TableRef::Unnest { expr, with_ordinality, alias, column_aliases } =
                    right.as_ref()
                {
                    if let Some(on_expr) = on {
                        if !matches!(on_expr, ast::Expr::Literal(ast::Literal::Bool(true))) {
                            return Err(bind_err!(
                                "a join with UNNEST only supports ON TRUE (it is lateral)"
                            ));
                        }
                    }
                    let (lp, ls) = self.bind_table_ref(left)?;
                    let preserve_empty = *kind == ast::JoinKind::LeftOuter;
                    return self.bind_unnest(
                        lp,
                        ls,
                        expr,
                        *with_ordinality,
                        alias.as_deref(),
                        column_aliases.as_deref(),
                        preserve_empty,
                    );
                }
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let mut combined = ls.concat(&rs);
                let kind = match kind {
                    ast::JoinKind::Inner => JoinKind::Inner,
                    ast::JoinKind::LeftOuter => JoinKind::LeftOuter,
                    ast::JoinKind::Cross => JoinKind::Cross,
                };
                if kind == JoinKind::LeftOuter {
                    // Right side becomes nullable.
                    let n_left = ls.len();
                    let mut cols = combined.schema.columns().to_vec();
                    for c in cols.iter_mut().skip(n_left) {
                        c.nullable = true;
                    }
                    combined = Scope::new(PlanSchema::new(cols));
                }
                let on = match on {
                    Some(e) => {
                        let bound = ExprBinder::new(&combined).bind(e)?;
                        Some(bound)
                    }
                    None => {
                        if kind != JoinKind::Cross {
                            return Err(bind_err!("JOIN requires an ON condition"));
                        }
                        None
                    }
                };
                let plan = LogicalPlan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    kind,
                    on,
                    schema: combined.schema.clone(),
                };
                Ok((plan, combined))
            }
            ast::TableRef::Unnest { .. } => {
                Err(bind_err!("UNNEST must follow another FROM item (it is a lateral operator)"))
            }
        }
    }

    /// Bind `UNNEST(path_expr)` laterally against `input`.
    #[allow(clippy::too_many_arguments)]
    fn bind_unnest(
        &mut self,
        input: LogicalPlan,
        input_scope: Scope,
        expr: &ast::Expr,
        with_ordinality: bool,
        alias: Option<&str>,
        column_aliases: Option<&[String]>,
        preserve_empty: bool,
    ) -> Result<(LogicalPlan, Scope)> {
        let bound = ExprBinder::new(&input_scope).bind(expr)?;
        let BoundExpr::Column { index: path_col, ty } = bound else {
            return Err(bind_err!("UNNEST takes a nested-table (PATH) column reference"));
        };
        if ty != DataType::Path {
            return Err(bind_err!("UNNEST argument must have type PATH, found {ty}"));
        }
        let nested = input_scope
            .column(path_col)
            .nested
            .clone()
            .ok_or_else(|| bind_err!("internal: PATH column lacks a nested schema"))?;

        let n_nested = nested.len();
        let expected_aliases = n_nested + usize::from(with_ordinality);
        if let Some(aliases) = column_aliases {
            if aliases.len() != n_nested && aliases.len() != expected_aliases {
                return Err(bind_err!(
                    "UNNEST column alias list has {} names, expected {n_nested}{}",
                    aliases.len(),
                    if with_ordinality { format!(" or {expected_aliases}") } else { String::new() }
                ));
            }
        }

        let mut schema = input_scope.schema.clone();
        for (i, def) in nested.columns().iter().enumerate() {
            let name =
                column_aliases.and_then(|a| a.get(i)).cloned().unwrap_or_else(|| def.name.clone());
            schema.push(PlanColumn {
                qualifier: alias.map(str::to_string),
                name,
                ty: def.ty,
                nullable: def.nullable || preserve_empty,
                nested: None,
            });
        }
        if with_ordinality {
            let name = column_aliases
                .and_then(|a| a.get(n_nested))
                .cloned()
                .unwrap_or_else(|| "ordinality".to_string());
            schema.push(PlanColumn {
                qualifier: alias.map(str::to_string),
                name,
                ty: DataType::Int,
                nullable: preserve_empty,
                nested: None,
            });
        }
        let plan = LogicalPlan::Unnest {
            input: Box::new(input),
            path_col,
            with_ordinality,
            preserve_empty,
            schema: schema.clone(),
        };
        Ok((plan, Scope::new(schema)))
    }

    fn bind_from_list(&mut self, from: &[ast::TableRef]) -> Result<(LogicalPlan, Scope)> {
        if from.is_empty() {
            return Ok((LogicalPlan::SingleRow, Scope::empty()));
        }
        let mut acc: Option<(LogicalPlan, Scope)> = None;
        for item in from {
            match item {
                ast::TableRef::Unnest { expr, with_ordinality, alias, column_aliases } => {
                    // Comma-style lateral inner join (the paper's shortest
                    // form of lateral join).
                    let (plan, scope) = match acc.take() {
                        Some(p) => p,
                        None => (LogicalPlan::SingleRow, Scope::empty()),
                    };
                    acc = Some(self.bind_unnest(
                        plan,
                        scope,
                        expr,
                        *with_ordinality,
                        alias.as_deref(),
                        column_aliases.as_deref(),
                        false,
                    )?);
                }
                other => {
                    let (rp, rs) = self.bind_table_ref(other)?;
                    acc = Some(match acc.take() {
                        None => (rp, rs),
                        Some((lp, ls)) => {
                            let combined = ls.concat(&rs);
                            let plan = LogicalPlan::Join {
                                left: Box::new(lp),
                                right: Box::new(rp),
                                kind: JoinKind::Cross,
                                on: None,
                                schema: combined.schema.clone(),
                            };
                            (plan, combined)
                        }
                    });
                }
            }
        }
        Ok(acc.expect("from list non-empty"))
    }

    // ------------------------------------------------------------ SELECT

    #[allow(clippy::too_many_arguments)]
    fn bind_select(
        &mut self,
        select: &ast::Select,
        order_by: &[ast::OrderItem],
        limit: Option<&ast::Expr>,
        offset: Option<&ast::Expr>,
    ) -> Result<LogicalPlan> {
        let (mut plan, from_scope) = self.bind_from_list(&select.from)?;
        let n_from_cols = from_scope.len();

        // Split WHERE into reachability predicates and ordinary conjuncts.
        let mut reaches: Vec<&ast::ReachesPredicate> = Vec::new();
        let mut others: Vec<&ast::Expr> = Vec::new();
        if let Some(w) = &select.where_clause {
            collect_conjuncts(w, &mut reaches, &mut others);
        }
        if !others.is_empty() {
            let binder = ExprBinder::new(&from_scope);
            let mut predicate: Option<BoundExpr> = None;
            for c in others {
                let b = binder.bind(c)?;
                if let Some(t) = b.data_type() {
                    if t != DataType::Bool {
                        return Err(bind_err!("WHERE clause must be BOOLEAN, found {t}"));
                    }
                }
                predicate = Some(match predicate {
                    None => b,
                    Some(p) => BoundExpr::Binary {
                        left: Box::new(p),
                        op: crate::plan::BinaryOp::And,
                        right: Box::new(b),
                    },
                });
            }
            if let Some(p) = predicate {
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate: p };
            }
        }

        // Cheapest-sum items: (item index) -> (reaches index it binds to).
        let cheapest_items: Vec<(usize, &ast::SelectItem)> = select
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, ast::SelectItem::CheapestSum { .. }))
            .collect();
        if !cheapest_items.is_empty() && reaches.is_empty() {
            return Err(bind_err!("CHEAPEST SUM requires a REACHES predicate in the WHERE clause"));
        }

        // Map from select-item index to (cost ordinal, Option<path ordinal>).
        let mut cheapest_outputs: std::collections::HashMap<usize, (usize, Option<usize>)> =
            std::collections::HashMap::new();

        let mut scope = from_scope.clone();
        for (ri, r) in reaches.iter().enumerate() {
            // --- the edge table E ---
            let (edge_plan, mut edge_scope) = self.bind_table_ref(&r.edge_table)?;
            if let Some(alias) = &r.alias {
                edge_scope = requalify(&edge_scope.schema, alias, None)?;
            }
            let src_key = edge_scope.resolve(None, &r.src_col)?;
            let dst_key = edge_scope.resolve(None, &r.dst_col)?;
            let s_ty = edge_scope.column(src_key).ty;
            let d_ty = edge_scope.column(dst_key).ty;
            if s_ty != d_ty {
                return Err(bind_err!(
                    "EDGE columns must have matching types, found {s_ty} and {d_ty}"
                ));
            }
            if !s_ty.is_vertex_key() {
                return Err(bind_err!("type {s_ty} cannot be used as a graph vertex key"));
            }

            // --- X and Y over the current scope ---
            let binder = ExprBinder::new(&scope);
            let source = binder.bind(&r.source)?;
            let dest = binder.bind(&r.dest)?;
            for (side, what) in [(&source, "source"), (&dest, "destination")] {
                if let Some(t) = side.data_type() {
                    if t != s_ty {
                        return Err(bind_err!(
                            "REACHES {what} has type {t} but the EDGE key type is {s_ty}"
                        ));
                    }
                }
            }

            // --- CHEAPEST SUM specs bound to this predicate ---
            let mut specs = Vec::new();
            let mut spec_outputs = Vec::new();
            for (item_idx, item) in &cheapest_items {
                let ast::SelectItem::CheapestSum { binding, weight, aliases } = item else {
                    unreachable!("filtered above");
                };
                let matches_this = match binding {
                    Some(b) => r.alias.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(b)),
                    None => reaches.len() == 1,
                };
                if !matches_this {
                    continue;
                }
                let edge_binder = ExprBinder::new(&edge_scope);
                let weight_expr = edge_binder.bind(weight)?;
                let weight_ty = weight_expr.data_type().ok_or_else(|| {
                    bind_err!(
                        "the type of a CHEAPEST SUM weight must be known at compile time; \
                         add an explicit CAST"
                    )
                })?;
                if !weight_ty.is_numeric() {
                    return Err(bind_err!(
                        "CHEAPEST SUM weight must be numeric, found {weight_ty}"
                    ));
                }
                let (cost_name, path_name, want_path) = match aliases {
                    ast::CheapestAlias::None => ("cheapest_sum".to_string(), String::new(), false),
                    ast::CheapestAlias::Cost(c) => (c.clone(), String::new(), false),
                    ast::CheapestAlias::CostAndPath(c, p) => (c.clone(), p.clone(), true),
                };
                specs.push(CheapestSpec {
                    weight: weight_expr,
                    weight_ty,
                    want_path,
                    cost_name,
                    path_name,
                });
                spec_outputs.push(*item_idx);
            }

            // --- output schema: input ++ cost/path per spec ---
            let mut out_schema = scope.schema.clone();
            let edge_storage_schema = edge_scope.schema.to_storage_schema();
            for (spec, item_idx) in specs.iter().zip(&spec_outputs) {
                let cost_ord = out_schema.push(PlanColumn {
                    qualifier: None,
                    name: spec.cost_name.clone(),
                    ty: spec.weight_ty,
                    nullable: false,
                    nested: None,
                });
                let path_ord = if spec.want_path {
                    Some(out_schema.push(PlanColumn {
                        qualifier: None,
                        name: spec.path_name.clone(),
                        ty: DataType::Path,
                        nullable: false,
                        nested: Some(edge_storage_schema.clone()),
                    }))
                } else {
                    None
                };
                cheapest_outputs.insert(*item_idx, (cost_ord, path_ord));
            }

            plan = LogicalPlan::GraphSelect {
                input: Box::new(plan),
                edge: Box::new(edge_plan),
                src_key,
                dst_key,
                source,
                dest,
                specs,
                schema: out_schema.clone(),
            };
            scope = Scope::new(out_schema);
            let _ = ri;
        }

        // Any CHEAPEST SUM item that did not find its predicate?
        for (item_idx, item) in &cheapest_items {
            if !cheapest_outputs.contains_key(item_idx) {
                let ast::SelectItem::CheapestSum { binding, .. } = item else { unreachable!() };
                return Err(match binding {
                    Some(b) => bind_err!(
                        "CHEAPEST SUM binding '{b}' does not name the tuple variable of any \
                         REACHES predicate"
                    ),
                    None => bind_err!(
                        "CHEAPEST SUM must name a tuple variable when multiple REACHES \
                         predicates are present"
                    ),
                });
            }
        }

        // ---------------------------------------------------- aggregation
        let has_aggregates = !select.group_by.is_empty()
            || select.having.is_some()
            || select.items.iter().any(|it| match it {
                ast::SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });

        if has_aggregates && !cheapest_items.is_empty() {
            return Err(Error::Unsupported(
                "mixing CHEAPEST SUM with aggregation in one SELECT block; \
                 compute the shortest path in a derived table and aggregate outside"
                    .to_string(),
            ));
        }

        let (mut plan, mut scope, agg_info) = if has_aggregates {
            let (p, s, info) = self.plan_aggregate(plan, &scope, select)?;
            (p, s, Some(info))
        } else {
            (plan, scope, None)
        };

        // HAVING (bound over the aggregate output).
        if let Some(having) = &select.having {
            let info = agg_info
                .as_ref()
                .ok_or_else(|| bind_err!("HAVING requires GROUP BY or aggregates"))?;
            let predicate = self.bind_with_agg(having, &scope, info)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        // ---------------------------------------------------- projection
        let mut exprs: Vec<BoundExpr> = Vec::new();
        let mut out_schema = PlanSchema::default();
        let mut item_asts: Vec<Option<ast::Expr>> = Vec::new(); // for ORDER BY matching
        for (item_idx, item) in select.items.iter().enumerate() {
            match item {
                ast::SelectItem::Wildcard => {
                    if agg_info.is_some() {
                        return Err(bind_err!("SELECT * cannot be combined with GROUP BY"));
                    }
                    if n_from_cols == 0 {
                        return Err(bind_err!("SELECT * requires a FROM clause"));
                    }
                    for i in 0..n_from_cols {
                        exprs.push(BoundExpr::Column { index: i, ty: scope.column(i).ty });
                        out_schema.push(scope.column(i).clone());
                        item_asts.push(None);
                    }
                }
                ast::SelectItem::QualifiedWildcard(q) => {
                    if agg_info.is_some() {
                        return Err(bind_err!("SELECT t.* cannot be combined with GROUP BY"));
                    }
                    let cols = scope.columns_of(q);
                    let cols: Vec<usize> = cols.into_iter().filter(|&i| i < n_from_cols).collect();
                    if cols.is_empty() {
                        return Err(bind_err!("no table '{q}' in FROM clause"));
                    }
                    for i in cols {
                        exprs.push(BoundExpr::Column { index: i, ty: scope.column(i).ty });
                        out_schema.push(scope.column(i).clone());
                        item_asts.push(None);
                    }
                }
                ast::SelectItem::Expr { expr, alias } => {
                    let bound = match &agg_info {
                        Some(info) => self.bind_with_agg(expr, &scope, info)?,
                        None => ExprBinder::new(&scope).bind(expr)?,
                    };
                    let col = output_column(&bound, expr, alias.as_deref(), &scope);
                    exprs.push(bound);
                    out_schema.push(col);
                    item_asts.push(Some(expr.clone()));
                }
                ast::SelectItem::CheapestSum { .. } => {
                    let (cost_ord, path_ord) = cheapest_outputs[&item_idx];
                    exprs
                        .push(BoundExpr::Column { index: cost_ord, ty: scope.column(cost_ord).ty });
                    out_schema.push(scope.column(cost_ord).clone());
                    item_asts.push(None);
                    if let Some(p) = path_ord {
                        exprs.push(BoundExpr::Column { index: p, ty: DataType::Path });
                        out_schema.push(scope.column(p).clone());
                        item_asts.push(None);
                    }
                }
            }
        }

        // ORDER BY binding: output name → projected AST equality → hidden
        // column over the pre-projection scope.
        let mut sort_keys: Vec<(usize, bool)> = Vec::new(); // output ordinal keyed
        let mut hidden: Vec<BoundExpr> = Vec::new();
        for item in order_by {
            let ord = self.resolve_order_key(
                &item.expr,
                &out_schema,
                &item_asts,
                &scope,
                agg_info.as_ref(),
            )?;
            match ord {
                OrderTarget::Output(i) => sort_keys.push((i, item.asc)),
                OrderTarget::Hidden(expr) => {
                    if select.distinct {
                        return Err(bind_err!(
                            "ORDER BY expressions must appear in the select list when \
                             DISTINCT is used"
                        ));
                    }
                    let idx = exprs.len() + hidden.len();
                    sort_keys.push((idx, item.asc));
                    hidden.push(expr);
                }
            }
        }

        let visible = out_schema.len();
        let mut project_schema = out_schema.clone();
        let mut project_exprs = exprs;
        for (i, h) in hidden.iter().enumerate() {
            let ty = h.data_type().unwrap_or(DataType::Varchar);
            project_schema.push(PlanColumn::new(format!("__sort{i}"), ty));
            project_exprs.push(h.clone());
        }

        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: project_exprs,
            schema: project_schema.clone(),
        };
        scope = Scope::new(project_schema);

        if select.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }

        if !sort_keys.is_empty() {
            let keys = sort_keys
                .into_iter()
                .map(|(i, asc)| SortKey {
                    expr: BoundExpr::Column { index: i, ty: scope.column(i).ty },
                    asc,
                })
                .collect();
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }

        if !hidden.is_empty() {
            // Strip the hidden sort columns.
            let exprs: Vec<BoundExpr> = (0..visible)
                .map(|i| BoundExpr::Column { index: i, ty: scope.column(i).ty })
                .collect();
            let schema = PlanSchema::new(scope.schema.columns()[..visible].to_vec());
            plan = LogicalPlan::Project { input: Box::new(plan), exprs, schema };
        }

        plan = self.apply_limit(plan, limit, offset)?;
        Ok(plan)
    }

    fn apply_limit(
        &self,
        plan: LogicalPlan,
        limit: Option<&ast::Expr>,
        offset: Option<&ast::Expr>,
    ) -> Result<LogicalPlan> {
        let eval_count = |e: &ast::Expr, what: &str| -> Result<usize> {
            match e {
                ast::Expr::Literal(ast::Literal::Int(v)) if *v >= 0 => Ok(*v as usize),
                _ => Err(bind_err!("{what} must be a non-negative integer literal")),
            }
        };
        let limit = limit.map(|e| eval_count(e, "LIMIT")).transpose()?;
        let offset = offset.map(|e| eval_count(e, "OFFSET")).transpose()?.unwrap_or(0);
        if limit.is_none() && offset == 0 {
            return Ok(plan);
        }
        Ok(LogicalPlan::Limit { input: Box::new(plan), limit, offset })
    }

    // --------------------------------------------------------- aggregates

    fn plan_aggregate(
        &mut self,
        input: LogicalPlan,
        scope: &Scope,
        select: &ast::Select,
    ) -> Result<(LogicalPlan, Scope, AggInfo)> {
        let binder = ExprBinder::new(scope);
        // Bind group keys.
        let mut group_bound = Vec::new();
        for g in &select.group_by {
            group_bound.push(binder.bind(g)?);
        }
        // Collect aggregate calls (textual order, deduplicated).
        let mut agg_asts: Vec<ast::Expr> = Vec::new();
        let mut collect = |e: &ast::Expr| {
            e.visit(&mut |node| {
                if let ast::Expr::Function { name, .. } = node {
                    if AggFunc::from_name(name).is_some() && !agg_asts.iter().any(|a| a == node) {
                        agg_asts.push(node.clone());
                    }
                }
            });
        };
        for item in &select.items {
            if let ast::SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &select.having {
            collect(h);
        }

        let mut aggs = Vec::new();
        for a in &agg_asts {
            let ast::Expr::Function { name, args, distinct } = a else { unreachable!() };
            let func = AggFunc::from_name(name).expect("collected as aggregate");
            let (func, arg) = match (func, args.len()) {
                (AggFunc::Count, 0) => (AggFunc::CountStar, None),
                (_, 1) => (func, Some(binder.bind(&args[0])?)),
                (f, n) => {
                    return Err(bind_err!("wrong number of arguments for {f:?}: {n}"));
                }
            };
            let out_ty = match (func, &arg) {
                (AggFunc::CountStar | AggFunc::Count, _) => DataType::Int,
                (AggFunc::Avg, _) => DataType::Double,
                (AggFunc::Sum | AggFunc::Min | AggFunc::Max, Some(e)) => {
                    let t = e.data_type().ok_or_else(|| {
                        bind_err!("aggregate argument type must be known; add a CAST")
                    })?;
                    if func == AggFunc::Sum && !t.is_numeric() {
                        return Err(bind_err!("SUM requires a numeric argument, found {t}"));
                    }
                    t
                }
                _ => unreachable!("arity checked"),
            };
            aggs.push(AggCall { func, arg, distinct: *distinct, out_ty });
        }

        // Output scope of the aggregate: group keys then aggregates.
        let mut schema = PlanSchema::default();
        for (g_ast, g) in select.group_by.iter().zip(&group_bound) {
            let col = match g_ast {
                ast::Expr::Column { table, name } => PlanColumn {
                    qualifier: table.clone(),
                    name: name.clone(),
                    ty: g.data_type().unwrap_or(DataType::Varchar),
                    nullable: true,
                    nested: None,
                },
                other => {
                    PlanColumn::new(other.to_string(), g.data_type().unwrap_or(DataType::Varchar))
                }
            };
            schema.push(col);
        }
        for (a_ast, a) in agg_asts.iter().zip(&aggs) {
            schema.push(PlanColumn::new(a_ast.to_string(), a.out_ty));
        }

        let plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: group_bound,
            aggs,
            schema: schema.clone(),
        };
        let info = AggInfo { group_asts: select.group_by.clone(), agg_asts };
        Ok((plan, Scope::new(schema), info))
    }

    /// Bind an expression in aggregate context: whole-node matches of
    /// group-by expressions or aggregate calls become output column refs;
    /// any other bare column reference is an error (not functionally
    /// dependent on the group).
    fn bind_with_agg(
        &self,
        expr: &ast::Expr,
        agg_scope: &Scope,
        info: &AggInfo,
    ) -> Result<BoundExpr> {
        let binder = ExprBinder::new(agg_scope);
        let n_group = info.group_asts.len();
        let mut hook = |node: &ast::Expr| -> Option<Result<BoundExpr>> {
            if let Some(i) = info.group_asts.iter().position(|g| g == node) {
                return Some(Ok(BoundExpr::Column { index: i, ty: agg_scope.column(i).ty }));
            }
            if let Some(j) = info.agg_asts.iter().position(|a| a == node) {
                let idx = n_group + j;
                return Some(Ok(BoundExpr::Column { index: idx, ty: agg_scope.column(idx).ty }));
            }
            if let ast::Expr::Column { table, name } = node {
                // Allow references to group keys by (possibly qualified)
                // name even when the group expression was qualified
                // differently.
                if let Ok(i) = agg_scope.resolve(table.as_deref(), name) {
                    if i < n_group {
                        return Some(Ok(BoundExpr::Column {
                            index: i,
                            ty: agg_scope.column(i).ty,
                        }));
                    }
                }
                return Some(Err(bind_err!(
                    "column '{name}' must appear in the GROUP BY clause or be used in an \
                     aggregate function"
                )));
            }
            None
        };
        binder.bind_with(expr, &mut hook)
    }

    // ----------------------------------------------------------- ORDER BY

    fn bind_order_key_simple(&self, scope: &Scope, e: &ast::Expr) -> Result<BoundExpr> {
        if let ast::Expr::Literal(ast::Literal::Int(n)) = e {
            let i = *n as usize;
            if *n < 1 || i > scope.len() {
                return Err(bind_err!("ORDER BY position {n} is out of range"));
            }
            return Ok(BoundExpr::Column { index: i - 1, ty: scope.column(i - 1).ty });
        }
        ExprBinder::new(scope).bind(e)
    }

    fn resolve_order_key(
        &self,
        e: &ast::Expr,
        out_schema: &PlanSchema,
        item_asts: &[Option<ast::Expr>],
        pre_scope: &Scope,
        agg_info: Option<&AggInfo>,
    ) -> Result<OrderTarget> {
        // 1. ordinal
        if let ast::Expr::Literal(ast::Literal::Int(n)) = e {
            let i = *n as usize;
            if *n < 1 || i > out_schema.len() {
                return Err(bind_err!("ORDER BY position {n} is out of range"));
            }
            return Ok(OrderTarget::Output(i - 1));
        }
        // 2. output column name (aliases take priority over input columns)
        if let ast::Expr::Column { table: None, name } = e {
            if let Some(i) =
                out_schema.columns().iter().position(|c| c.name.eq_ignore_ascii_case(name))
            {
                return Ok(OrderTarget::Output(i));
            }
        }
        // 3. structural equality with a projected expression
        if let Some(i) = item_asts.iter().position(|a| a.as_ref() == Some(e)) {
            return Ok(OrderTarget::Output(i));
        }
        // 4. hidden column over the pre-projection scope
        let bound = match agg_info {
            Some(info) => self.bind_with_agg(e, pre_scope, info)?,
            None => ExprBinder::new(pre_scope).bind(e)?,
        };
        Ok(OrderTarget::Hidden(bound))
    }
}

enum OrderTarget {
    Output(usize),
    Hidden(BoundExpr),
}

/// Group/aggregate AST bookkeeping used when rebinding projections.
struct AggInfo {
    group_asts: Vec<ast::Expr>,
    agg_asts: Vec<ast::Expr>,
}

/// Split a WHERE tree into REACHES conjuncts and ordinary conjuncts.
fn collect_conjuncts<'e>(
    e: &'e ast::Expr,
    reaches: &mut Vec<&'e ast::ReachesPredicate>,
    others: &mut Vec<&'e ast::Expr>,
) {
    match e {
        ast::Expr::Binary { left, op: ast::BinaryOp::And, right } => {
            collect_conjuncts(left, reaches, others);
            collect_conjuncts(right, reaches, others);
        }
        ast::Expr::Reaches(r) => reaches.push(r),
        other => others.push(other),
    }
}

/// True when the expression contains an aggregate function call.
fn contains_aggregate(e: &ast::Expr) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if let ast::Expr::Function { name, .. } = node {
            if AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Output column metadata for a projected expression.
fn output_column(
    bound: &BoundExpr,
    ast_expr: &ast::Expr,
    alias: Option<&str>,
    scope: &Scope,
) -> PlanColumn {
    // Bare column references keep their identity (qualifier, nested schema)
    // so derived tables and UNNEST can see through projections.
    if let BoundExpr::Column { index, ty } = bound {
        let src = scope.column(*index);
        return PlanColumn {
            qualifier: if alias.is_some() { None } else { src.qualifier.clone() },
            name: alias.map(str::to_string).unwrap_or_else(|| src.name.clone()),
            ty: *ty,
            nullable: src.nullable,
            nested: src.nested.clone(),
        };
    }
    let name = alias.map(str::to_string).unwrap_or_else(|| ast_expr.to_string());
    PlanColumn {
        qualifier: None,
        name,
        ty: bound.data_type().unwrap_or(DataType::Varchar),
        nullable: true,
        nested: None,
    }
}

/// Wrap `plan` in a casting projection when any column type differs from
/// the target types (UNION type unification).
fn widen_to(plan: LogicalPlan, target: &[DataType]) -> LogicalPlan {
    let schema = plan.schema();
    if schema.columns().iter().zip(target).all(|(c, &t)| c.ty == t) {
        return plan;
    }
    let mut exprs = Vec::with_capacity(target.len());
    let mut out = PlanSchema::default();
    for (i, (col, &ty)) in schema.columns().iter().zip(target).enumerate() {
        let base = BoundExpr::Column { index: i, ty: col.ty };
        exprs.push(if col.ty == ty { base } else { BoundExpr::Cast { expr: Box::new(base), ty } });
        let mut pc = col.clone();
        pc.ty = ty;
        out.push(pc);
    }
    LogicalPlan::Project { input: Box::new(plan), exprs, schema: out }
}

/// Re-qualify all columns of a schema under one alias, optionally renaming.
fn requalify(schema: &PlanSchema, alias: &str, renames: Option<&[String]>) -> Result<Scope> {
    if let Some(renames) = renames {
        if renames.len() != schema.len() {
            return Err(bind_err!(
                "column list has {} names but the query produces {} columns",
                renames.len(),
                schema.len()
            ));
        }
    }
    let columns = schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| PlanColumn {
            qualifier: Some(alias.to_string()),
            name: renames.and_then(|r| r.get(i)).cloned().unwrap_or_else(|| c.name.clone()),
            ty: c.ty,
            nullable: c.nullable,
            nested: c.nested.clone(),
        })
        .collect();
    Ok(Scope::new(PlanSchema::new(columns)))
}

/// Evaluate a constant bound expression (literals only) — used by DML paths.
pub fn literal_value(e: &ast::Expr) -> Result<Value> {
    match e {
        ast::Expr::Literal(lit) => bind_literal(lit),
        ast::Expr::Unary { op: ast::UnaryOp::Neg, expr } => match literal_value(expr)? {
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Double(v) => Ok(Value::Double(-v)),
            other => Err(bind_err!("cannot negate {other}")),
        },
        ast::Expr::Cast { expr, ty } => {
            let v = literal_value(expr)?;
            crate::exec::expression::cast_value(v, type_name_to_datatype(*ty))
        }
        _ => Err(bind_err!("expected a literal value")),
    }
}
