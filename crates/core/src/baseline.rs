//! The "customary" SQL shortest-path baselines from the paper's
//! introduction, §1.
//!
//! > "Currently there are three customary means to perform reachability and
//! > shortest path queries in standard SQL: recursion, persistent stored
//! > modules (PSM) and, to a more limited extent, explicit chains of joins."
//!
//! We implement the relational cost models of two of them for the ablation
//! benchmarks (PSM is interpretation overhead on top of the same plan, so
//! it is not separately modelled):
//!
//! * [`seminaive_distance`] — the **recursive CTE** strategy: per BFS level,
//!   hash-join the frontier with the full edge table and deduplicate
//!   (semi-naive evaluation). Cost `O(levels × |E|)`, no early exit on the
//!   destination until the level containing it completes.
//! * [`khop_join_distance`] — the **chain of self-joins** strategy: a
//!   `UNION ALL`-style expansion that keeps duplicate intermediate rows
//!   (path multiplicities), exactly like `T ⋈ E ⋈ E ⋈ …` without DISTINCT.
//!   Blows up combinatorially, which is the point of the comparison; a row
//!   cap guards the benchmarks.

use crate::error::{exec_err, Error};
use gsql_storage::value::HashableValue;
use gsql_storage::{Table, Value};
use std::collections::{HashMap, HashSet};

type Result<T> = std::result::Result<T, Error>;

/// Unweighted shortest-path distance via semi-naive (recursive-CTE-style)
/// evaluation. Returns `None` when `dest` is unreachable from `source`.
///
/// Each level performs one full scan of the edge table (the hash-join
/// against the frontier a SQL engine would run for the recursive step).
pub fn seminaive_distance(
    edges: &Table,
    src_key: usize,
    dst_key: usize,
    source: &Value,
    dest: &Value,
) -> Result<Option<i64>> {
    if source.is_null() || dest.is_null() {
        return Ok(None);
    }
    // The paper's semantics: source/dest must be vertices of the graph.
    let src_col = edges.column(src_key);
    let dst_col = edges.column(dst_key);
    let mut is_vertex = false;
    for i in 0..edges.row_count() {
        let s = src_col.get(i);
        let d = dst_col.get(i);
        if s.sql_eq(source) || d.sql_eq(source) {
            is_vertex = true;
            break;
        }
    }
    if !is_vertex {
        return Ok(None);
    }
    if source.sql_eq(dest) {
        return Ok(Some(0));
    }

    let mut visited: HashSet<HashableValue> = HashSet::new();
    visited.insert(HashableValue(source.clone()));
    let mut frontier: HashSet<HashableValue> = visited.clone();
    let mut level: i64 = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next: HashSet<HashableValue> = HashSet::new();
        // One full edge-table scan per level: the recursive step's join.
        for i in 0..edges.row_count() {
            let s = src_col.get(i);
            if s.is_null() || !frontier.contains(&HashableValue(s)) {
                continue;
            }
            let d = dst_col.get(i);
            if d.is_null() {
                continue;
            }
            let hd = HashableValue(d);
            if !visited.contains(&hd) {
                next.insert(hd);
            }
        }
        if next.iter().any(|v| v.0.sql_eq(dest)) {
            return Ok(Some(level));
        }
        for v in &next {
            visited.insert(v.clone());
        }
        frontier = next;
    }
    Ok(None)
}

/// Unweighted shortest-path distance via an explicit chain of `k` self
/// joins without duplicate elimination (`UNION ALL` expansion).
///
/// Returns `Ok(Some(d))` when the destination first appears at hop `d <= k`,
/// `Ok(None)` when it is not reached within `k` hops, and an error when the
/// intermediate multiset exceeds `row_cap` rows (combinatorial explosion —
/// the failure mode that motivates the paper's native operator).
pub fn khop_join_distance(
    edges: &Table,
    src_key: usize,
    dst_key: usize,
    source: &Value,
    dest: &Value,
    k: usize,
    row_cap: u64,
) -> Result<Option<i64>> {
    if source.is_null() || dest.is_null() {
        return Ok(None);
    }
    if source.sql_eq(dest) {
        return Ok(Some(0));
    }
    let src_col = edges.column(src_key);
    let dst_col = edges.column(dst_key);

    // Multiset of endpoints after i joins: value -> number of paths.
    let mut frontier: HashMap<HashableValue, u64> = HashMap::new();
    frontier.insert(HashableValue(source.clone()), 1);
    for hop in 1..=k {
        let mut next: HashMap<HashableValue, u64> = HashMap::new();
        let mut total: u64 = 0;
        for i in 0..edges.row_count() {
            let s = src_col.get(i);
            if s.is_null() {
                continue;
            }
            let Some(&count) = frontier.get(&HashableValue(s)) else {
                continue;
            };
            let d = dst_col.get(i);
            if d.is_null() {
                continue;
            }
            let slot = next.entry(HashableValue(d)).or_insert(0);
            *slot = slot.saturating_add(count);
            total = total.saturating_add(count);
            if total > row_cap {
                return Err(exec_err!("k-hop join expansion exceeded {row_cap} rows at hop {hop}"));
            }
        }
        if next.keys().any(|v| v.0.sql_eq(dest)) {
            return Ok(Some(hop as i64));
        }
        if next.is_empty() {
            return Ok(None);
        }
        frontier = next;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::{ColumnDef, DataType, Schema};

    fn edges(pairs: &[(i64, i64)]) -> Table {
        let mut t = Table::empty(Schema::new(vec![
            ColumnDef::not_null("src", DataType::Int),
            ColumnDef::not_null("dst", DataType::Int),
        ]));
        for (s, d) in pairs {
            t.append_row(vec![Value::Int(*s), Value::Int(*d)]).unwrap();
        }
        t
    }

    #[test]
    fn seminaive_finds_shortest_distance() {
        let e = edges(&[(1, 2), (2, 3), (1, 3), (3, 4)]);
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(1), &Value::Int(4)).unwrap(), Some(2));
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(1), &Value::Int(3)).unwrap(), Some(1));
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(1), &Value::Int(1)).unwrap(), Some(0));
    }

    #[test]
    fn seminaive_unreachable_and_nonvertex() {
        let e = edges(&[(1, 2)]);
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(2), &Value::Int(1)).unwrap(), None);
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(99), &Value::Int(1)).unwrap(), None);
    }

    #[test]
    fn seminaive_handles_cycles() {
        let e = edges(&[(1, 2), (2, 1), (2, 3)]);
        assert_eq!(seminaive_distance(&e, 0, 1, &Value::Int(1), &Value::Int(3)).unwrap(), Some(2));
    }

    #[test]
    fn khop_matches_seminaive_within_bound() {
        let e = edges(&[(1, 2), (2, 3), (3, 4), (1, 3)]);
        for (s, d) in [(1, 2), (1, 3), (1, 4), (2, 4)] {
            let expect = seminaive_distance(&e, 0, 1, &Value::Int(s), &Value::Int(d)).unwrap();
            let got =
                khop_join_distance(&e, 0, 1, &Value::Int(s), &Value::Int(d), 8, 1 << 20).unwrap();
            assert_eq!(expect, got, "pair ({s},{d})");
        }
    }

    #[test]
    fn khop_respects_bound_k() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            khop_join_distance(&e, 0, 1, &Value::Int(1), &Value::Int(4), 2, 1 << 20).unwrap(),
            None
        );
    }

    #[test]
    fn khop_explodes_on_dense_cycles() {
        // Complete bidirectional triangle: path multiplicities grow
        // exponentially, tripping the row cap.
        let e = edges(&[(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)]);
        let r = khop_join_distance(&e, 0, 1, &Value::Int(1), &Value::Int(99), 64, 1000);
        assert!(r.is_err());
    }
}
