//! # gsql-core
//!
//! The query engine of the reproduction of *Extending SQL for Computing
//! Shortest Paths* (De Leo & Boncz, GRADES'17): an in-memory, fully
//! materializing, column-at-a-time SQL engine — the MonetDB stand-in — with
//! the paper's language extension implemented end to end:
//!
//! * the `REACHES … OVER … EDGE (S, D)` reachability predicate, compiled to
//!   the **graph select** operator (§3.1);
//! * the rewriter that unfolds cross product + graph select into a
//!   **graph join** (§3.1);
//! * `CHEAPEST SUM([e:] expr) [AS (cost, path)]` shortest-path summaries
//!   backed by BFS / Dijkstra-with-radix-queue in `gsql-graph` (§3.2);
//! * nested-table path values stored as edge-row references, flattened by
//!   `UNNEST [WITH ORDINALITY]` (§3.3 — ordinality is listed as
//!   unimplemented in the paper; we support it);
//! * `CREATE GRAPH INDEX` — the §6 future-work graph index with
//!   version-based invalidation;
//! * the §1 "customary method" baselines used by the ablation benchmarks.
//!
//! Entry point: [`Database`].
//!
//! ```
//! use gsql_core::Database;
//! use gsql_storage::Value;
//!
//! let db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL); \
//!      INSERT INTO friends VALUES (1, 2), (2, 3), (1, 3);",
//! )
//! .unwrap();
//! let out = db
//!     .query("SELECT CHEAPEST SUM(1) AS hops WHERE 1 REACHES 3 OVER friends EDGE (src, dst)")
//!     .unwrap();
//! assert_eq!(out.row(0)[0], Value::Int(1));
//! ```

pub mod baseline;
pub mod bind;
pub mod database;
pub mod error;
pub mod exec;
pub mod graph_index;
pub mod optimize;
pub mod plan;

pub use database::{Database, PreparedStatement, QueryResult};
pub use error::Error;
pub use exec::{build_graph, MaterializedGraph};
pub use graph_index::GraphIndexRegistry;
pub use plan::LogicalPlan;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
