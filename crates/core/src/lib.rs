//! # gsql-core
//!
//! The query engine of the reproduction of *Extending SQL for Computing
//! Shortest Paths* (De Leo & Boncz, GRADES'17): an in-memory, fully
//! materializing, column-at-a-time SQL engine — the MonetDB stand-in — with
//! the paper's language extension implemented end to end:
//!
//! * the `REACHES … OVER … EDGE (S, D)` reachability predicate, compiled to
//!   the **graph select** operator (§3.1);
//! * the rewriter that unfolds cross product + graph select into a
//!   **graph join** (§3.1);
//! * `CHEAPEST SUM([e:] expr) [AS (cost, path)]` shortest-path summaries
//!   backed by BFS / Dijkstra-with-radix-queue in `gsql-graph` (§3.2);
//! * nested-table path values stored as edge-row references, flattened by
//!   `UNNEST [WITH ORDINALITY]` (§3.3 — ordinality is listed as
//!   unimplemented in the paper; we support it);
//! * `CREATE GRAPH INDEX` — the §6 future-work graph index with
//!   version-based invalidation;
//! * the §1 "customary method" baselines used by the ablation benchmarks.
//!
//! ## Entry points
//!
//! A [`Database`] is the shared, thread-safe store (catalog + graph-index
//! registry). Work happens through a [`Session`], which owns connection
//! state: `SET`/`SHOW` settings, a plan cache keyed by SQL text and
//! invalidated by [`Database::schema_version`], and `EXPLAIN ANALYZE`
//! statistics. [`Session::prepare`] returns a [`PreparedStatement`] whose
//! repeated executions skip parse/bind/optimize entirely — the shape the
//! paper's repeated parameterized shortest-path workload wants.
//!
//! ```
//! use gsql_core::Database;
//! use gsql_storage::Value;
//!
//! let db = Database::new();
//! let session = db.session();
//! session
//!     .execute_script(
//!         "CREATE TABLE friends (src INTEGER NOT NULL, dst INTEGER NOT NULL); \
//!          INSERT INTO friends VALUES (1, 2), (2, 3), (1, 3); \
//!          CREATE GRAPH INDEX gi ON friends EDGE (src, dst);",
//!     )
//!     .unwrap();
//! let stmt = session
//!     .prepare("SELECT CHEAPEST SUM(1) AS hops WHERE ? REACHES ? OVER friends EDGE (src, dst)")
//!     .unwrap();
//! let out = stmt.query(&session, &[Value::Int(1), Value::Int(3)]).unwrap();
//! assert_eq!(out.row(0)[0], Value::Int(1));
//! // Executed from the cached plan: no re-parse, no re-bind.
//! assert_eq!(session.cache_stats().hits, 1);
//! ```
//!
//! [`Database::execute`] / [`Database::query`] remain as one-shot
//! conveniences that open a temporary session internally.

pub mod baseline;
pub mod bind;
pub mod context;
pub mod database;
pub mod error;
pub mod exec;
pub mod graph_index;
pub mod optimize;
pub mod path_index;
pub(crate) mod persist;
pub mod plan;
pub mod session;

pub use context::{Deadline, ExecContext, ExecStats, OpStats, SessionSettings};
pub use database::{Database, QueryResult};
pub use error::Error;
pub use exec::{build_graph, build_graph_with_threads, MaterializedGraph};
pub use graph_index::GraphIndexRegistry;
pub use path_index::{PathIndexData, PathIndexMeta, PathIndexRegistry};
pub use plan::LogicalPlan;
pub use session::{PlanCacheStats, PreparedStatement, Session, SharedPlanCache};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
