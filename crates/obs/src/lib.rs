//! # gsql-obs
//!
//! The engine's observability layer, dependency-free like the rest of the
//! workspace. Three pieces, one crate:
//!
//! * [`metrics`] — a process-wide instrument [`Registry`] of sharded atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s, rendered in
//!   Prometheus text exposition format. The hot path of every instrument is
//!   one relaxed `fetch_add` on a cache-line-padded shard selected by
//!   [`gsql_parallel::thread_slot`]; merging happens on read, never on
//!   write. [`EngineMetrics`] is the typed catalog of engine-wide
//!   instruments (queries by verb/outcome, plan cache, pipelines, per-kind
//!   traversals with settled-vertex histograms).
//! * [`trace`] — per-query hierarchical spans ([`TraceCollector`]) recorded
//!   when `SET trace = on|verbose`, rendered as a nested JSON tree.
//! * [`slowlog`] — a bounded in-memory ring ([`SlowLog`]) of structured
//!   JSON records for queries that exceeded `SET slow_query_ms`.
//!
//! Determinism contract: nothing in this crate influences query results.
//! Instruments are relaxed atomics plus monotonic clock reads; tracing
//! appends to a mutex-guarded buffer owned by a single query. Engine code
//! must never branch on an instrument's value.

pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use metrics::{
    latency_buckets_us, settled_buckets, Counter, EngineMetrics, Gauge, Histogram,
    HistogramSnapshot, QueryOutcome, QueryVerb, Registry, ACCEL_KINDS,
};
pub use slowlog::{SlowLog, SlowQueryRecord};
pub use trace::{SpanId, TraceCollector, TraceLevel, TraceValue, MAX_SPANS, NO_SPAN};

/// Escape `s` for inclusion inside a double-quoted JSON string.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
