//! Sharded atomic instruments and the Prometheus-rendering [`Registry`].
//!
//! Every instrument spreads its hot path over [`SHARDS`] cache-line-padded
//! atomic cells; a writer picks its shard with
//! `gsql_parallel::thread_slot() % SHARDS`, so pipeline workers hammering
//! the same counter never contend on one cache line. Reads merge the
//! shards — reads are rare (a `/metrics` scrape, an `EXPLAIN ANALYZE`
//! render), writes are the per-morsel / per-query hot path.

use gsql_parallel::thread_slot;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of shards per instrument. A power of two so the modulo is cheap;
/// 16 covers every realistic worker count without wasting memory.
pub const SHARDS: usize = 16;

/// One cache line of counter state, padded so neighbouring shards never
/// share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PadCell(AtomicU64);

/// A monotonically increasing counter. `inc`/`add` are one relaxed
/// `fetch_add` on the caller's shard; `get` sums all shards.
#[derive(Debug)]
pub struct Counter {
    shards: [PadCell; SHARDS],
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

impl Counter {
    /// A zeroed counter (usually obtained via [`Registry::counter`]).
    pub fn new() -> Counter {
        Counter { shards: std::array::from_fn(|_| PadCell::default()) }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_slot() % SHARDS].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Merged value across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed gauge (single atomic: gauges are set/adjusted rarely, e.g.
/// queue depth on admit/pop, cache entries after an insert).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Per-shard histogram state: one count cell per bucket (the last is the
/// overflow bucket), plus sum / count / max of observed values.
#[derive(Debug)]
struct HistShard {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (microseconds, settled
/// vertices, …). Bucket bounds are inclusive upper bounds; values above the
/// last bound land in an implicit `+Inf` bucket. Observation is three
/// relaxed `fetch_add`s and one `fetch_max` on the caller's shard.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    shards: Vec<HistShard>,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (sorted and
    /// deduplicated; must be non-empty).
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
                max: AtomicU64::new(0),
            })
            .collect();
        Histogram { bounds, shards }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let shard = &self.shards[thread_slot() % SHARDS];
        let bucket = self.bounds.partition_point(|&ub| ub < value);
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merge all shards into one consistent-enough snapshot (each cell is
    /// read once; concurrent writers may land between reads, which only
    /// ever under-reports the newest observations).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0u64;
        let mut count = 0u64;
        let mut max = 0u64;
        for shard in &self.shards {
            for (acc, cell) in counts.iter_mut().zip(&shard.counts) {
                *acc += cell.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
            count += shard.count.load(Ordering::Relaxed);
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot { bounds: self.bounds.clone(), counts, sum, count, max }
    }
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending; the final count bucket is `+Inf`.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `p`-th percentile (`0.0..=1.0`) as the upper bound of
    /// the first bucket whose cumulative count reaches `p * count`. The
    /// overflow bucket reports the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return if i < self.bounds.len() { self.bounds[i] } else { self.max };
            }
        }
        self.max
    }
}

/// Default latency buckets in microseconds: 50µs to 10s, roughly 1-2.5-5
/// per decade.
pub fn latency_buckets_us() -> Vec<u64> {
    vec![
        50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
        1_000_000, 2_500_000, 5_000_000, 10_000_000,
    ]
}

/// Default settled-vertex buckets: powers of four from 1 to ~1M.
pub fn settled_buckets() -> Vec<u64> {
    vec![1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576]
}

#[derive(Debug)]
enum InstrumentKind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Instrument {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: InstrumentKind,
}

/// An open collection of named instruments, rendered in Prometheus text
/// exposition format. Registration happens at construction time (engine
/// startup, server startup); the registry lock is never taken on a query
/// hot path.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<Vec<Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register a counter with constant labels. Same-name registrations
    /// share one `HELP`/`TYPE` block in the rendered output.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = Arc::new(Counter::new());
        self.push(name, help, labels, InstrumentKind::Counter(Arc::clone(&handle)));
        handle
    }

    /// Register an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register a gauge with constant labels. Same-name registrations
    /// share one `HELP`/`TYPE` block in the rendered output.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::new());
        self.push(name, help, labels, InstrumentKind::Gauge(Arc::clone(&handle)));
        handle
    }

    /// Register an unlabelled histogram over the given bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Register a histogram with constant labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let handle = Arc::new(Histogram::new(bounds));
        self.push(name, help, labels, InstrumentKind::Histogram(Arc::clone(&handle)));
        handle
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: InstrumentKind) {
        let labels = labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        self.instruments.lock().expect("registry poisoned").push(Instrument {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind,
        });
    }

    /// Render every instrument in Prometheus text exposition format.
    /// Instruments sharing a name are grouped under one `HELP`/`TYPE`
    /// header at the first registration's position.
    pub fn render(&self) -> String {
        let instruments = self.instruments.lock().expect("registry poisoned");
        // Group by name, preserving first-registration order.
        let mut order: Vec<&str> = Vec::new();
        for inst in instruments.iter() {
            if !order.contains(&inst.name.as_str()) {
                order.push(&inst.name);
            }
        }
        let mut out = String::new();
        for name in order {
            let group: Vec<&Instrument> = instruments.iter().filter(|i| i.name == name).collect();
            let first = group[0];
            let type_name = match first.kind {
                InstrumentKind::Counter(_) => "counter",
                InstrumentKind::Gauge(_) => "gauge",
                InstrumentKind::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n# TYPE {name} {type_name}\n", first.help));
            for inst in group {
                match &inst.kind {
                    InstrumentKind::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_set(&inst.labels, None),
                            c.get()
                        ));
                    }
                    InstrumentKind::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_set(&inst.labels, None),
                            g.get()
                        ));
                    }
                    InstrumentKind::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &c) in snap.counts.iter().enumerate() {
                            cumulative += c;
                            let le = if i < snap.bounds.len() {
                                snap.bounds[i].to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                label_set(&inst.labels, Some(&le)),
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            label_set(&inst.labels, None),
                            snap.sum
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            label_set(&inst.labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", crate::json_escape(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Statement verb, for the `gsql_queries_total{verb=…}` counter family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVerb {
    /// `SELECT` (including graph selects/joins).
    Select,
    /// `INSERT`.
    Insert,
    /// `UPDATE`.
    Update,
    /// `DELETE`.
    Delete,
    /// `CREATE`/`DROP` of tables and indexes.
    Ddl,
    /// `SET`, `SHOW`, `DESCRIBE`, `EXPLAIN`, …
    Utility,
}

const VERBS: [QueryVerb; 6] = [
    QueryVerb::Select,
    QueryVerb::Insert,
    QueryVerb::Update,
    QueryVerb::Delete,
    QueryVerb::Ddl,
    QueryVerb::Utility,
];

impl QueryVerb {
    /// The label value.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryVerb::Select => "select",
            QueryVerb::Insert => "insert",
            QueryVerb::Update => "update",
            QueryVerb::Delete => "delete",
            QueryVerb::Ddl => "ddl",
            QueryVerb::Utility => "utility",
        }
    }

    fn index(self) -> usize {
        VERBS.iter().position(|&v| v == self).expect("verb in table")
    }
}

/// Statement outcome, for the `gsql_queries_total{outcome=…}` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Completed successfully.
    Ok,
    /// Failed with any non-timeout error.
    Error,
    /// Exceeded its deadline.
    Timeout,
}

const OUTCOMES: [QueryOutcome; 3] = [QueryOutcome::Ok, QueryOutcome::Error, QueryOutcome::Timeout];

impl QueryOutcome {
    /// The label value.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Error => "error",
            QueryOutcome::Timeout => "timeout",
        }
    }

    fn index(self) -> usize {
        OUTCOMES.iter().position(|&o| o == self).expect("outcome in table")
    }
}

/// Traversal kinds recorded by [`EngineMetrics::record_traversal`]: the
/// plain fallbacks (`bfs`, `dijkstra`, `bidir-bfs`) plus the accelerated
/// point-to-point (`alt`, `ch`) and batched (`alt-multi`, `ch-m2m`) tiers.
pub const ACCEL_KINDS: [&str; 7] =
    ["bfs", "dijkstra", "bidir-bfs", "alt", "ch", "alt-multi", "ch-m2m"];

/// The typed catalog of engine-wide instruments, all registered on one
/// [`Registry`]. Owned by the `Database`; every layer records through it.
#[derive(Debug)]
pub struct EngineMetrics {
    registry: Arc<Registry>,
    queries: [[Arc<Counter>; 3]; 6],
    query_latency: Arc<Histogram>,
    /// Plan-cache hits (local and shared sessions).
    pub plan_cache_hits: Arc<Counter>,
    /// Plan-cache misses.
    pub plan_cache_misses: Arc<Counter>,
    /// Plans evicted because the schema version moved.
    pub plan_cache_invalidations: Arc<Counter>,
    /// Entries currently resident in the shared plan cache.
    pub plan_cache_entries: Arc<Gauge>,
    pipelines: Arc<Counter>,
    morsels: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    traversals: [Arc<Counter>; 7],
    settled: [Arc<Histogram>; 7],
    /// WAL records appended by the durability layer.
    pub wal_appends: Arc<Counter>,
    /// Framed bytes written to the WAL (headers included).
    pub wal_bytes: Arc<Counter>,
    /// Snapshot checkpoint wall time in microseconds.
    pub checkpoint_duration: Arc<Histogram>,
    /// WAL records replayed by the most recent `Database::open`.
    pub recovery_replayed: Arc<Gauge>,
}

impl Default for EngineMetrics {
    fn default() -> EngineMetrics {
        EngineMetrics::new()
    }
}

impl EngineMetrics {
    /// Build the catalog on a fresh registry.
    pub fn new() -> EngineMetrics {
        let registry = Arc::new(Registry::new());
        let queries = std::array::from_fn(|v| {
            std::array::from_fn(|o| {
                registry.counter_with(
                    "gsql_queries_total",
                    "Statements executed, by verb and outcome.",
                    &[("verb", VERBS[v].as_str()), ("outcome", OUTCOMES[o].as_str())],
                )
            })
        });
        let query_latency = registry.histogram(
            "gsql_query_duration_microseconds",
            "End-to-end statement latency in microseconds.",
            &latency_buckets_us(),
        );
        let plan_cache_hits =
            registry.counter("gsql_plan_cache_hits_total", "Plan-cache lookups served a plan.");
        let plan_cache_misses =
            registry.counter("gsql_plan_cache_misses_total", "Plan-cache lookups that missed.");
        let plan_cache_invalidations = registry.counter(
            "gsql_plan_cache_invalidations_total",
            "Cached plans discarded because the schema version moved.",
        );
        let plan_cache_entries =
            registry.gauge("gsql_plan_cache_entries", "Entries resident in the shared plan cache.");
        let pipelines =
            registry.counter("gsql_pipelines_total", "Fused pipelines executed to completion.");
        let morsels = registry
            .counter("gsql_pipeline_morsels_total", "Morsels processed by pipeline workers.");
        let queue_wait = registry.histogram(
            "gsql_pipeline_queue_wait_microseconds",
            "Time a morsel sat in the queue before a worker pulled it.",
            &latency_buckets_us(),
        );
        let traversals = std::array::from_fn(|k| {
            registry.counter_with(
                "gsql_traversals_total",
                "Graph traversals executed, by algorithm kind.",
                &[("kind", ACCEL_KINDS[k])],
            )
        });
        let settled = std::array::from_fn(|k| {
            registry.histogram_with(
                "gsql_traversal_settled_vertices",
                "Vertices settled per traversal, by algorithm kind.",
                &[("kind", ACCEL_KINDS[k])],
                &settled_buckets(),
            )
        });
        let wal_appends =
            registry.counter("gsql_wal_appends_total", "WAL records appended by the engine.");
        let wal_bytes = registry
            .counter("gsql_wal_bytes_total", "Framed bytes written to the WAL, headers included.");
        let checkpoint_duration = registry.histogram(
            "gsql_checkpoint_duration_microseconds",
            "Snapshot checkpoint wall time in microseconds.",
            &latency_buckets_us(),
        );
        let recovery_replayed = registry.gauge(
            "gsql_recovery_replayed_records",
            "WAL records replayed by the most recent database open.",
        );
        // The registry keeps the handle alive; the value never changes.
        registry
            .gauge_with(
                "gsql_build_info",
                "Build metadata; constant 1 with version labels.",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        EngineMetrics {
            registry,
            queries,
            query_latency,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_invalidations,
            plan_cache_entries,
            pipelines,
            morsels,
            queue_wait,
            traversals,
            settled,
            wal_appends,
            wal_bytes,
            checkpoint_duration,
            recovery_replayed,
        }
    }

    /// The registry backing this catalog (servers register their own
    /// instruments on it so one `/metrics` render covers everything).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record one finished statement.
    pub fn record_query(&self, verb: QueryVerb, outcome: QueryOutcome, micros: u64) {
        self.queries[verb.index()][outcome.index()].inc();
        self.query_latency.observe(micros);
    }

    /// Total statements recorded for a verb/outcome pair.
    pub fn queries_total(&self, verb: QueryVerb, outcome: QueryOutcome) -> u64 {
        self.queries[verb.index()][outcome.index()].get()
    }

    /// The end-to-end statement latency histogram.
    pub fn query_latency(&self) -> &Arc<Histogram> {
        &self.query_latency
    }

    /// Record a plan-cache lookup.
    pub fn record_plan_cache(&self, hit: bool) {
        if hit {
            self.plan_cache_hits.inc();
        } else {
            self.plan_cache_misses.inc();
        }
    }

    /// Record a completed pipeline and its morsel count.
    pub fn record_pipeline(&self, morsels: u64) {
        self.pipelines.inc();
        self.morsels.add(morsels);
    }

    /// Pipelines executed so far.
    pub fn pipelines_total(&self) -> u64 {
        self.pipelines.get()
    }

    /// Morsels processed so far.
    pub fn morsels_total(&self) -> u64 {
        self.morsels.get()
    }

    /// Record how long one morsel waited in the queue.
    #[inline]
    pub fn observe_queue_wait_us(&self, micros: u64) {
        self.queue_wait.observe(micros);
    }

    /// The morsel queue-wait histogram.
    pub fn queue_wait(&self) -> &Arc<Histogram> {
        &self.queue_wait
    }

    /// Record one traversal of the given kind (one of [`ACCEL_KINDS`]) and
    /// how many vertices it settled. Unknown kinds are ignored rather than
    /// panicking — observability must never take a query down.
    pub fn record_traversal(&self, kind: &str, settled: u64) {
        if let Some(k) = ACCEL_KINDS.iter().position(|&n| n == kind) {
            self.traversals[k].inc();
            self.settled[k].observe(settled);
        }
    }

    /// Traversals recorded for a kind (`0` for unknown kinds).
    pub fn traversals_total(&self, kind: &str) -> u64 {
        ACCEL_KINDS.iter().position(|&n| n == kind).map_or(0, |k| self.traversals[k].get())
    }

    /// Settled-vertex snapshot for a kind.
    pub fn settled_snapshot(&self, kind: &str) -> Option<HistogramSnapshot> {
        ACCEL_KINDS.iter().position(|&n| n == kind).map(|k| self.settled[k].snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_add_sub_set() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 99, 100, 500, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![3, 3, 1, 1]); // <=10, <=100, <=1000, +Inf
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1 + 5 + 10 + 11 + 99 + 100 + 500 + 5000);
        assert_eq!(s.max, 5000);
        assert_eq!(s.percentile(0.0), 10);
        assert_eq!(s.percentile(0.5), 100);
        assert_eq!(s.percentile(1.0), 5000); // overflow bucket reports max
        assert_eq!(s.mean(), s.sum / 8);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new(&[10]).snapshot();
        assert_eq!((s.count, s.sum, s.max, s.percentile(0.99), s.mean()), (0, 0, 0, 0, 0));
    }

    #[test]
    fn render_groups_same_name_under_one_header() {
        let r = Registry::new();
        let a = r.counter_with("x_total", "X.", &[("kind", "a")]);
        let b = r.counter_with("x_total", "X.", &[("kind", "b")]);
        a.add(2);
        b.add(3);
        let text = r.render();
        assert_eq!(text.matches("# HELP x_total X.").count(), 1);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
        assert!(text.contains("x_total{kind=\"a\"} 2\n"));
        assert!(text.contains("x_total{kind=\"b\"} 3\n"));
    }

    #[test]
    fn render_histogram_is_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "Latency.", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = r.render();
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum 555\n"));
        assert!(text.contains("lat_us_count 3\n"));
    }

    #[test]
    fn engine_metrics_catalog_renders_all_families() {
        let m = EngineMetrics::new();
        m.record_query(QueryVerb::Select, QueryOutcome::Ok, 1234);
        m.record_plan_cache(true);
        m.record_plan_cache(false);
        m.record_pipeline(17);
        m.observe_queue_wait_us(42);
        m.record_traversal("ch", 99);
        m.record_traversal("not-a-kind", 1); // ignored, not a panic
        assert_eq!(m.queries_total(QueryVerb::Select, QueryOutcome::Ok), 1);
        assert_eq!(m.traversals_total("ch"), 1);
        assert_eq!(m.traversals_total("bfs"), 0);
        assert_eq!(m.settled_snapshot("ch").unwrap().count, 1);
        let text = m.registry().render();
        for family in [
            "gsql_queries_total",
            "gsql_query_duration_microseconds",
            "gsql_plan_cache_hits_total",
            "gsql_plan_cache_misses_total",
            "gsql_plan_cache_invalidations_total",
            "gsql_plan_cache_entries",
            "gsql_pipelines_total",
            "gsql_pipeline_morsels_total",
            "gsql_pipeline_queue_wait_microseconds",
            "gsql_traversals_total",
            "gsql_traversal_settled_vertices",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "missing {family}");
        }
        assert!(text.contains("gsql_queries_total{verb=\"select\",outcome=\"ok\"} 1\n"));
        assert!(text.contains("gsql_traversals_total{kind=\"ch\"} 1\n"));
    }
}
