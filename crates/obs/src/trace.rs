//! Per-query hierarchical tracing.
//!
//! A [`TraceCollector`] is created per statement when `SET trace =
//! on|verbose`; engine layers open spans around parse/bind/optimize/
//! execute, each pipeline, and each traversal batch. Spans form a tree via
//! parent ids and render as nested JSON, returned through the session API
//! and inline in HTTP responses.
//!
//! Tracing never alters execution: collectors only append to a
//! mutex-guarded buffer, and the buffer is bounded ([`MAX_SPANS`]) so a
//! pathological plan cannot grow it without limit.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on spans per query. Past it, `begin` hands out [`NO_SPAN`] and
/// the span (plus its children) is silently dropped.
pub const MAX_SPANS: usize = 4096;

/// Sentinel id for "no span" (trace off, or the buffer is full).
pub const NO_SPAN: u32 = u32::MAX;

/// Span identifier within one collector.
pub type SpanId = u32;

/// Trace verbosity, settable via `SET trace` or the `GSQL_TRACE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No collection (the default).
    #[default]
    Off,
    /// Phase, pipeline, and traversal spans.
    On,
    /// Everything in `On` plus one span per plan operator.
    Verbose,
}

impl TraceLevel {
    /// Parse a setting value (`off`/`on`/`verbose`, plus the usual boolean
    /// spellings accepted elsewhere in the engine).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "false" | "0" => Some(TraceLevel::Off),
            "on" | "true" | "1" => Some(TraceLevel::On),
            "verbose" => Some(TraceLevel::Verbose),
            _ => None,
        }
    }

    /// Canonical setting value.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::On => "on",
            TraceLevel::Verbose => "verbose",
        }
    }

    /// True for `On` and `Verbose`.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }
}

/// A span attribute value.
#[derive(Debug, Clone)]
pub enum TraceValue {
    /// Rendered as a bare JSON number.
    Int(i64),
    /// Rendered as a JSON string.
    Str(String),
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> TraceValue {
        TraceValue::Int(v)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> TraceValue {
        TraceValue::Int(v as i64)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> TraceValue {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> TraceValue {
        TraceValue::Str(v)
    }
}

#[derive(Debug)]
struct Span {
    parent: u32,
    name: String,
    start_us: u64,
    dur_us: u64,
    attrs: Vec<(String, TraceValue)>,
}

/// Collects the span tree for one traced statement.
#[derive(Debug)]
pub struct TraceCollector {
    level: TraceLevel,
    origin: Instant,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU32,
}

impl TraceCollector {
    /// A collector at the given level, with "time zero" = now.
    pub fn new(level: TraceLevel) -> TraceCollector {
        TraceCollector {
            level,
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU32::new(0),
        }
    }

    /// The collection level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Open a span under `parent` ([`NO_SPAN`] for a root). Returns the new
    /// span's id, or [`NO_SPAN`] when the buffer is full.
    pub fn begin(&self, parent: SpanId, name: &str) -> SpanId {
        let start_us = self.origin.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().expect("trace poisoned");
        if spans.len() >= MAX_SPANS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return NO_SPAN;
        }
        let id = spans.len() as u32;
        spans.push(Span { parent, name: name.to_string(), start_us, dur_us: 0, attrs: Vec::new() });
        id
    }

    /// Close a span, recording its duration. No-op for [`NO_SPAN`].
    pub fn end(&self, id: SpanId) {
        self.end_with(id, Vec::new());
    }

    /// Close a span with attributes.
    pub fn end_with(&self, id: SpanId, attrs: Vec<(String, TraceValue)>) {
        if id == NO_SPAN {
            return;
        }
        let now_us = self.origin.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().expect("trace poisoned");
        if let Some(span) = spans.get_mut(id as usize) {
            span.dur_us = now_us.saturating_sub(span.start_us);
            span.attrs.extend(attrs);
        }
    }

    /// Attach one attribute to an open (or closed) span.
    pub fn attr(&self, id: SpanId, key: &str, value: TraceValue) {
        if id == NO_SPAN {
            return;
        }
        let mut spans = self.spans.lock().expect("trace poisoned");
        if let Some(span) = spans.get_mut(id as usize) {
            span.attrs.push((key.to_string(), value));
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("trace poisoned").len()
    }

    /// `(name, dur_us)` of every root span, in start order — the summary
    /// embedded in slow-query-log records.
    pub fn root_summary(&self) -> Vec<(String, u64)> {
        let spans = self.spans.lock().expect("trace poisoned");
        spans.iter().filter(|s| s.parent == NO_SPAN).map(|s| (s.name.clone(), s.dur_us)).collect()
    }

    /// Render the span forest as a JSON array of nested span objects:
    /// `[{"name":…,"start_us":…,"dur_us":…,"attrs":{…},"children":[…]}]`.
    pub fn to_json(&self) -> String {
        let spans = self.spans.lock().expect("trace poisoned");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            if span.parent == NO_SPAN || span.parent as usize >= spans.len() {
                roots.push(i);
            } else {
                children[span.parent as usize].push(i);
            }
        }
        let mut out = String::from("[");
        for (i, &root) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_span(&spans, &children, root, &mut out);
        }
        out.push(']');
        out
    }
}

fn render_span(spans: &[Span], children: &[Vec<usize>], i: usize, out: &mut String) {
    let span = &spans[i];
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
        crate::json_escape(&span.name),
        span.start_us,
        span.dur_us
    ));
    if !span.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (j, (key, value)) in span.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", crate::json_escape(key)));
            match value {
                TraceValue::Int(v) => out.push_str(&v.to_string()),
                TraceValue::Str(v) => out.push_str(&format!("\"{}\"", crate::json_escape(v))),
            }
        }
        out.push('}');
    }
    if !children[i].is_empty() {
        out.push_str(",\"children\":[");
        for (j, &c) in children[i].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            render_span(spans, children, c, out);
        }
        out.push(']');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_and_round_trips() {
        assert_eq!(TraceLevel::parse("on"), Some(TraceLevel::On));
        assert_eq!(TraceLevel::parse("OFF"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("verbose"), Some(TraceLevel::Verbose));
        assert_eq!(TraceLevel::parse("1"), Some(TraceLevel::On));
        assert_eq!(TraceLevel::parse("nope"), None);
        for l in [TraceLevel::Off, TraceLevel::On, TraceLevel::Verbose] {
            assert_eq!(TraceLevel::parse(l.as_str()), Some(l));
        }
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Verbose.enabled());
    }

    #[test]
    fn spans_nest_and_render_as_tree() {
        let t = TraceCollector::new(TraceLevel::On);
        let root = t.begin(NO_SPAN, "execute");
        let child = t.begin(root, "pipeline");
        t.end_with(child, vec![("morsels".to_string(), TraceValue::Int(4))]);
        let sibling = t.begin(root, "traversal");
        t.attr(sibling, "kind", TraceValue::from("ch"));
        t.end(sibling);
        t.end(root);
        let json = t.to_json();
        assert!(json.starts_with("[{\"name\":\"execute\""));
        assert!(json.contains("\"children\":[{\"name\":\"pipeline\""));
        assert!(json.contains("\"attrs\":{\"morsels\":4}"));
        assert!(json.contains("{\"name\":\"traversal\""));
        assert!(json.contains("\"attrs\":{\"kind\":\"ch\"}"));
        assert_eq!(t.root_summary().len(), 1);
        assert_eq!(t.root_summary()[0].0, "execute");
    }

    #[test]
    fn buffer_is_bounded() {
        let t = TraceCollector::new(TraceLevel::On);
        for _ in 0..MAX_SPANS + 10 {
            let id = t.begin(NO_SPAN, "s");
            t.end(id);
        }
        assert_eq!(t.span_count(), MAX_SPANS);
        // NO_SPAN operations are silent no-ops.
        t.end(NO_SPAN);
        t.attr(NO_SPAN, "k", TraceValue::Int(1));
    }

    #[test]
    fn empty_collector_renders_empty_array() {
        assert_eq!(TraceCollector::new(TraceLevel::On).to_json(), "[]");
    }
}
