//! The slow-query log: a bounded in-memory ring of structured records for
//! statements that exceeded `SET slow_query_ms`, exposed at `GET /slowlog`
//! and (optionally, `GSQL_SLOWLOG_STDERR=1`) written as JSON lines to
//! stderr.
//!
//! Records carry a *hash* of the SQL text rather than the text itself, so
//! the log can be shipped without leaking literals embedded in queries.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 128;

/// One slow statement.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Wall-clock microseconds since the Unix epoch when the statement
    /// finished.
    pub unix_us: u64,
    /// Hex hash of the SQL text.
    pub sql_hash: String,
    /// Hex hash of the bound/optimized plan (empty when no plan was built,
    /// e.g. a failed parse).
    pub plan_fingerprint: String,
    /// Statement verb label (`select`, `insert`, …).
    pub verb: String,
    /// Outcome label (`ok`, `error`, `timeout`).
    pub outcome: String,
    /// End-to-end latency in microseconds.
    pub elapsed_us: u64,
    /// Session settings in effect, as `(name, value)` pairs.
    pub settings: Vec<(String, String)>,
    /// Top-level trace spans as `(name, dur_us)` — empty when tracing was
    /// off for the statement.
    pub spans: Vec<(String, u64)>,
}

impl SlowQueryRecord {
    /// Render as one JSON object (a single line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"unix_us\":{},\"sql_hash\":\"{}\",\"plan_fingerprint\":\"{}\",\
             \"verb\":\"{}\",\"outcome\":\"{}\",\"elapsed_us\":{}",
            self.unix_us,
            crate::json_escape(&self.sql_hash),
            crate::json_escape(&self.plan_fingerprint),
            crate::json_escape(&self.verb),
            crate::json_escape(&self.outcome),
            self.elapsed_us,
        );
        out.push_str(",\"settings\":{");
        for (i, (k, v)) in self.settings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", crate::json_escape(k), crate::json_escape(v)));
        }
        out.push_str("},\"spans\":{");
        for (i, (name, dur)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{dur}", crate::json_escape(name)));
        }
        out.push_str("}}");
        out
    }
}

/// Bounded ring of [`SlowQueryRecord`]s; the oldest record is evicted when
/// a push would exceed capacity.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    stderr: bool,
    inner: Mutex<VecDeque<SlowQueryRecord>>,
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog::new(DEFAULT_CAPACITY)
    }
}

impl SlowLog {
    /// A ring of `capacity` records (clamped to at least 1); records are
    /// echoed to stderr when the `GSQL_SLOWLOG_STDERR` env var is set to a
    /// truthy value.
    pub fn new(capacity: usize) -> SlowLog {
        let stderr = std::env::var("GSQL_SLOWLOG_STDERR")
            .map(|v| matches!(v.trim(), "1" | "true" | "on"))
            .unwrap_or(false);
        SlowLog::with_stderr(capacity, stderr)
    }

    /// A ring with explicit stderr behaviour (used by tests).
    pub fn with_stderr(capacity: usize, stderr: bool) -> SlowLog {
        SlowLog { capacity: capacity.max(1), stderr, inner: Mutex::new(VecDeque::new()) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a record, evicting the oldest at capacity.
    pub fn push(&self, record: SlowQueryRecord) {
        if self.stderr {
            eprintln!("slow-query: {}", record.to_json());
        }
        let mut ring = self.inner.lock().expect("slowlog poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("slowlog poisoned").len()
    }

    /// True when no record has been logged (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone out the resident records, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryRecord> {
        self.inner.lock().expect("slowlog poisoned").iter().cloned().collect()
    }

    /// Render the ring as a JSON object: `{"count":N,"entries":[…]}`.
    pub fn render_json(&self) -> String {
        let entries = self.entries();
        let mut out = format!("{{\"count\":{},\"entries\":[", entries.len());
        for (i, r) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            unix_us: n,
            sql_hash: format!("{n:016x}"),
            plan_fingerprint: String::new(),
            verb: "select".to_string(),
            outcome: "ok".to_string(),
            elapsed_us: n * 1000,
            settings: vec![("threads".to_string(), "4".to_string())],
            spans: vec![("execute".to_string(), n * 900)],
        }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = SlowLog::with_stderr(3, false);
        for n in 1..=5 {
            log.push(record(n));
        }
        assert_eq!(log.len(), 3);
        let kept: Vec<u64> = log.entries().iter().map(|r| r.unix_us).collect();
        assert_eq!(kept, vec![3, 4, 5]);
    }

    #[test]
    fn record_renders_as_json_line() {
        let json = record(7).to_json();
        assert!(json.starts_with("{\"unix_us\":7,"));
        assert!(json.contains("\"sql_hash\":\"0000000000000007\""));
        assert!(json.contains("\"elapsed_us\":7000"));
        assert!(json.contains("\"settings\":{\"threads\":\"4\"}"));
        assert!(json.contains("\"spans\":{\"execute\":6300}"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn render_json_wraps_entries() {
        let log = SlowLog::with_stderr(8, false);
        assert_eq!(log.render_json(), "{\"count\":0,\"entries\":[]}");
        log.push(record(1));
        log.push(record(2));
        let json = log.render_json();
        assert!(json.starts_with("{\"count\":2,\"entries\":[{"));
        assert!(log.capacity() == 8 && !log.is_empty());
    }
}
