//! LDBC-SNB-like social network generator (the Table 1 datasets).

use crate::names::{FIRST_NAMES, LAST_NAMES};
use gsql_core::Database;
use gsql_storage::{Column, ColumnDef, DataType, Date, Schema, Table};
use rand::prelude::*;
use rand::rngs::SmallRng;

/// Published LDBC SNB sizes used by the paper's Table 1:
/// `(scale factor, persons, directed edges)`.
///
/// Vertices are the persons; directed edge counts are twice the undirected
/// friendship counts, as in the paper.
pub const TABLE1_SIZES: &[(f64, u64, u64)] = &[
    (1.0, 9_892, 362_000),
    (3.0, 24_000, 1_132_000),
    (10.0, 65_000, 3_894_000),
    (30.0, 165_000, 12_115_000),
    (100.0, 448_000, 39_998_000),
    (300.0, 1_128_000, 119_225_000),
];

/// Parameters for the social-network generator.
#[derive(Debug, Clone, Copy)]
pub struct SnbParams {
    /// LDBC scale factor (1, 3, 10, 30, 100, 300 reproduce Table 1;
    /// fractional values interpolate, useful for quick tests).
    pub scale_factor: f64,
    /// RNG seed — equal seeds give byte-identical datasets.
    pub seed: u64,
}

impl SnbParams {
    /// Parameters for a scale factor with the default seed.
    pub fn new(scale_factor: f64) -> SnbParams {
        SnbParams { scale_factor, seed: 0x5eed_1db0 }
    }

    /// Number of persons at this scale factor.
    pub fn person_count(&self) -> u64 {
        lookup_or_interpolate(self.scale_factor, 1)
    }

    /// Number of **directed** friendship edges at this scale factor.
    pub fn edge_count(&self) -> u64 {
        lookup_or_interpolate(self.scale_factor, 2)
    }
}

/// Exact Table 1 sizes at the canonical scale factors; power-law
/// interpolation `round(c * sf^alpha)` elsewhere, fitted on the published
/// end points.
fn lookup_or_interpolate(sf: f64, what: usize) -> u64 {
    for &(s, p, e) in TABLE1_SIZES {
        if (s - sf).abs() < 1e-9 {
            return if what == 1 { p } else { e };
        }
    }
    let (c, alpha) = if what == 1 {
        // persons: 9892 at sf 1, 1.128M at sf 300 -> alpha ~ 0.8305
        (9_892.0, 0.830_5)
    } else {
        // directed edges: 362k at sf 1, 119.225M at sf 300 -> alpha ~ 1.0168
        (362_000.0, 1.016_8)
    };
    (c * sf.max(1e-6).powf(alpha)).round() as u64
}

/// A generated social network.
#[derive(Debug)]
pub struct SnbDataset {
    /// `persons(id, firstName, lastName, gender, creationDate)`.
    pub persons: Table,
    /// `friends(src, dst, creationDate, weight)` — directed, both
    /// directions present for every friendship.
    pub friends: Table,
    /// Number of persons (the paper's |V| per Table 1).
    pub num_persons: u64,
    /// Number of directed edges (the paper's |E| per Table 1).
    pub num_edges: u64,
}

impl SnbDataset {
    /// Generate a dataset.
    ///
    /// Friendships follow a Chung-Lu-style skewed degree model: endpoint
    /// `i` is sampled with probability ∝ `(i+1)^-0.55`, duplicates and
    /// self-pairs are rejected. The result is a heavy-tailed degree
    /// distribution with a giant connected component — the traversal
    /// profile LDBC's correlated generator also produces.
    pub fn generate(params: SnbParams) -> SnbDataset {
        let mut rng = SmallRng::seed_from_u64(params.seed ^ params.scale_factor.to_bits());
        let n_persons = params.person_count();
        let n_undirected = params.edge_count() / 2;

        let persons = generate_persons(&mut rng, n_persons);
        let friends = generate_friends(&mut rng, n_persons, n_undirected);
        let num_edges = friends.row_count() as u64;
        SnbDataset { persons, friends, num_persons: n_persons, num_edges }
    }

    /// Register the dataset's tables (`persons`, `friends`) in a database.
    pub fn load_into(&self, db: &Database) -> gsql_core::Result<()> {
        db.catalog()
            .register_table("persons", self.persons.clone())
            .map_err(gsql_core::Error::Storage)?;
        db.catalog()
            .register_table("friends", self.friends.clone())
            .map_err(gsql_core::Error::Storage)?;
        Ok(())
    }

    /// A database pre-loaded with this dataset.
    pub fn into_database(&self) -> gsql_core::Result<Database> {
        let db = Database::new();
        self.load_into(&db)?;
        Ok(db)
    }
}

fn person_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("firstName", DataType::Varchar),
        ColumnDef::not_null("lastName", DataType::Varchar),
        ColumnDef::not_null("gender", DataType::Varchar),
        ColumnDef::not_null("creationDate", DataType::Date),
    ])
}

fn friends_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("src", DataType::Int),
        ColumnDef::not_null("dst", DataType::Int),
        ColumnDef::not_null("creationDate", DataType::Date),
        ColumnDef::not_null("weight", DataType::Double),
    ])
}

fn generate_persons(rng: &mut SmallRng, n: u64) -> Table {
    let mut ids = Vec::with_capacity(n as usize);
    let mut first = Vec::with_capacity(n as usize);
    let mut last = Vec::with_capacity(n as usize);
    let mut gender = Vec::with_capacity(n as usize);
    let mut created = Vec::with_capacity(n as usize);
    let epoch_2010 = Date::from_ymd(2010, 1, 1).expect("valid date").days();
    for i in 0..n {
        ids.push(i as i64 + 1);
        first.push(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string());
        last.push(LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string());
        gender.push(if rng.gen_bool(0.5) { "male".to_string() } else { "female".to_string() });
        created.push(epoch_2010 + rng.gen_range(0..4 * 365));
    }
    let n_rows = ids.len();
    Table::from_columns(
        person_schema(),
        vec![
            Column::from_ints(ids),
            Column::from_strs(first),
            Column::from_strs(last),
            Column::from_strs(gender),
            Column::Date(created, gsql_storage::Bitmap::with_value(n_rows, true)),
        ],
    )
    .expect("schema matches columns")
}

/// Sample a person index from the skewed endpoint distribution.
///
/// Uses inverse-transform sampling of the truncated power law
/// `P(i) ∝ (i+1)^-a` via the continuous approximation — O(1) per sample.
fn sample_endpoint(rng: &mut SmallRng, n: u64, a: f64) -> u64 {
    let one_minus_a = 1.0 - a;
    let max = (n as f64 + 1.0).powf(one_minus_a);
    let min = 1.0f64;
    let u: f64 = rng.gen();
    let x = (min + u * (max - min)).powf(1.0 / one_minus_a);
    (x.floor() as u64).clamp(1, n) - 1
}

fn generate_friends(rng: &mut SmallRng, n_persons: u64, n_undirected: u64) -> Table {
    let mut src = Vec::with_capacity(2 * n_undirected as usize);
    let mut dst = Vec::with_capacity(2 * n_undirected as usize);
    let mut created = Vec::with_capacity(2 * n_undirected as usize);
    let mut weight = Vec::with_capacity(2 * n_undirected as usize);
    let mut seen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(n_undirected as usize * 2);
    let epoch_2010 = Date::from_ymd(2010, 1, 1).expect("valid date").days();

    let mut produced = 0u64;
    let mut attempts = 0u64;
    let max_attempts = n_undirected.saturating_mul(40).max(1000);
    while produced < n_undirected && attempts < max_attempts {
        attempts += 1;
        let a = sample_endpoint(rng, n_persons, 0.55);
        let b = sample_endpoint(rng, n_persons, 0.55);
        if a == b {
            continue;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let key = lo * n_persons + hi;
        if !seen.insert(key) {
            continue;
        }
        produced += 1;
        let date = epoch_2010 + rng.gen_range(0..4 * 365);
        // LDBC Q14 affinity stand-in: interactions ~ geometric, affinity
        // 0.5 per interaction plus the base 0.5 — always > 0.
        let interactions = {
            let mut k = 0;
            while k < 20 && rng.gen_bool(0.45) {
                k += 1;
            }
            k
        };
        let w = 0.5 * (interactions as f64 + 1.0);
        // Both directions, as in the paper.
        let (ai, bi) = (a as i64 + 1, b as i64 + 1);
        src.push(ai);
        dst.push(bi);
        created.push(date);
        weight.push(w);
        src.push(bi);
        dst.push(ai);
        created.push(date);
        weight.push(w);
    }

    let n_rows = src.len();
    Table::from_columns(
        friends_schema(),
        vec![
            Column::from_ints(src),
            Column::from_ints(dst),
            Column::Date(created, gsql_storage::Bitmap::with_value(n_rows, true)),
            Column::from_doubles(weight),
        ],
    )
    .expect("schema matches columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsql_storage::Value;

    #[test]
    fn canonical_sizes_match_table1() {
        let p = SnbParams::new(1.0);
        assert_eq!(p.person_count(), 9_892);
        assert_eq!(p.edge_count(), 362_000);
        let p = SnbParams::new(300.0);
        assert_eq!(p.person_count(), 1_128_000);
        assert_eq!(p.edge_count(), 119_225_000);
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut prev_p = 0;
        let mut prev_e = 0;
        for sf in [0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 50.0, 200.0] {
            let p = SnbParams::new(sf);
            assert!(p.person_count() > prev_p, "persons at sf {sf}");
            assert!(p.edge_count() > prev_e, "edges at sf {sf}");
            prev_p = p.person_count();
            prev_e = p.edge_count();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = SnbParams { scale_factor: 0.01, seed: 7 };
        let a = SnbDataset::generate(params);
        let b = SnbDataset::generate(params);
        assert_eq!(a.persons.row_count(), b.persons.row_count());
        assert_eq!(a.friends.row_count(), b.friends.row_count());
        for i in (0..a.friends.row_count()).step_by(37) {
            assert_eq!(a.friends.row(i), b.friends.row(i));
        }
    }

    #[test]
    fn tiny_dataset_shape() {
        let d = SnbDataset::generate(SnbParams { scale_factor: 0.01, seed: 1 });
        assert_eq!(d.persons.row_count() as u64, d.num_persons);
        assert_eq!(d.friends.row_count() as u64, d.num_edges);
        // Both directions present: every (s, d) has a (d, s).
        let mut set = std::collections::HashSet::new();
        for i in 0..d.friends.row_count() {
            let r = d.friends.row(i);
            set.insert((r[0].as_int().unwrap(), r[1].as_int().unwrap()));
        }
        for &(s, t) in set.iter().take(200) {
            assert!(set.contains(&(t, s)), "missing reverse of ({s},{t})");
        }
        // Weights strictly positive (the CHEAPEST SUM contract).
        let (w, _) = d.friends.column(3).as_double_slice().unwrap();
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let d = SnbDataset::generate(SnbParams { scale_factor: 0.05, seed: 3 });
        let (src, _) = d.friends.column(0).as_int_slice().unwrap();
        let mut deg = std::collections::HashMap::new();
        for &s in src {
            *deg.entry(s).or_insert(0u64) += 1;
        }
        let max = *deg.values().max().unwrap();
        let mean = src.len() as f64 / deg.len() as f64;
        assert!(max as f64 > 4.0 * mean, "expected a heavy tail: max {max} vs mean {mean:.1}");
    }

    #[test]
    fn loads_into_database_and_queries() {
        let d = SnbDataset::generate(SnbParams { scale_factor: 0.01, seed: 1 });
        let db = d.into_database().unwrap();
        let count = db.query("SELECT COUNT(*) FROM persons").unwrap();
        assert_eq!(count.row(0)[0], Value::Int(d.num_persons as i64));
        // A shortest path between two well-connected persons exists (the
        // skewed model yields a giant component around low ids).
        let t = db
            .query_with_params(
                "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)",
                &[Value::Int(1), Value::Int(2)],
            )
            .unwrap();
        assert_eq!(t.row_count(), 1);
    }
}
