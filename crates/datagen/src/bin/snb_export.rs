//! Export the LDBC-SNB-like dataset as CSV files (the downstream-tool
//! equivalent of running LDBC DATAGEN).
//!
//! ```text
//! cargo run -p gsql-datagen --release --bin snb_export -- 0.1 /tmp/snb
//! # writes /tmp/snb/persons.csv and /tmp/snb/friends.csv
//! ```

use gsql_datagen::{SnbDataset, SnbParams};
use gsql_storage::csv::write_csv;
use std::io::BufWriter;

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| usage("missing or invalid scale factor"));
    let dir = args.next().unwrap_or_else(|| usage("missing output directory"));

    let t0 = std::time::Instant::now();
    let data = SnbDataset::generate(SnbParams::new(sf));
    eprintln!(
        "generated SF {sf}: {} persons, {} directed edges in {:?}",
        data.num_persons,
        data.num_edges,
        t0.elapsed()
    );

    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("mkdir {dir}: {e}")));
    for (name, table) in [("persons", &data.persons), ("friends", &data.friends)] {
        let path = format!("{dir}/{name}.csv");
        let file =
            std::fs::File::create(&path).unwrap_or_else(|e| fail(&format!("create {path}: {e}")));
        let mut out = BufWriter::new(file);
        write_csv(table, &mut out).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path} ({} rows)", table.row_count());
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: snb_export <scale-factor> <output-dir>");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
