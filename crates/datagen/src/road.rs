//! Weighted grid road networks (for the routing example and benches).

use gsql_storage::{Column, ColumnDef, DataType, Schema, Table};
use rand::prelude::*;
use rand::rngs::SmallRng;

/// Generate a `width × height` grid road network.
///
/// Intersections are numbered row-major from 1; every pair of adjacent
/// intersections is connected in both directions with an integer travel
/// time in `1..=max_cost` minutes (independent per direction, so one-way
/// congestion is representable). A small fraction of edges is removed to
/// make routing non-trivial, while rows stay fully connected left-to-right
/// so reachability holds.
///
/// Returns a table `roads(src, dst, minutes)`.
pub fn grid_network(width: u32, height: u32, max_cost: i64, seed: u64) -> Table {
    assert!(width >= 2 && height >= 1, "grid must be at least 2x1");
    assert!(max_cost >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut minutes = Vec::new();
    let id = |x: u32, y: u32| (y * width + x) as i64 + 1;
    let mut push = |rng: &mut SmallRng, a: i64, b: i64| {
        src.push(a);
        dst.push(b);
        minutes.push(rng.gen_range(1..=max_cost));
    };
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                // Horizontal roads always exist (keeps the grid connected).
                push(&mut rng, id(x, y), id(x + 1, y));
                push(&mut rng, id(x + 1, y), id(x, y));
            }
            if y + 1 < height {
                // 10% of vertical road pairs are closed.
                if rng.gen_bool(0.9) {
                    push(&mut rng, id(x, y), id(x, y + 1));
                    push(&mut rng, id(x, y + 1), id(x, y));
                }
            }
        }
    }
    let n = src.len();
    Table::from_columns(
        Schema::new(vec![
            ColumnDef::not_null("src", DataType::Int),
            ColumnDef::not_null("dst", DataType::Int),
            ColumnDef::not_null("minutes", DataType::Int),
        ]),
        vec![
            Column::from_ints(src),
            Column::from_ints(dst),
            Column::Int(minutes, gsql_storage::Bitmap::with_value(n, true)),
        ],
    )
    .expect("schema matches columns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_edge_bounds() {
        let t = grid_network(5, 4, 10, 42);
        // Horizontal: 4*4*2 = 32 always; vertical: up to 5*3*2 = 30.
        assert!(t.row_count() >= 32);
        assert!(t.row_count() <= 62);
    }

    #[test]
    fn costs_within_range_and_positive() {
        let t = grid_network(6, 6, 7, 1);
        let (m, _) = t.column(2).as_int_slice().unwrap();
        assert!(m.iter().all(|&x| (1..=7).contains(&x)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = grid_network(4, 4, 5, 9);
        let b = grid_network(4, 4, 5, 9);
        assert_eq!(a.row_count(), b.row_count());
        for i in 0..a.row_count() {
            assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "grid must be")]
    fn rejects_degenerate_grid() {
        grid_network(1, 1, 5, 0);
    }
}
