//! Name pools for synthetic persons.

/// First names sampled uniformly by the generator.
#[rustfmt::skip]
pub const FIRST_NAMES: &[&str] = &[
    "Mahinda", "Carmen", "Chen", "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "John",
    "Leslie", "Tony", "Robin", "Frances", "Niklaus", "Ken", "Dennis", "Bjarne", "James", "Guido",
    "Brian", "Margaret", "Katherine", "Annie", "Jean", "Kurt", "Alonzo", "Haskell", "Rosalind",
    "Hedy", "Radia", "Shafi", "Silvio", "Adi", "Ron", "Whitfield", "Martin", "Ralph", "Taher",
    "Ivan", "Andrew", "Butler", "Charles", "David", "Edmund", "Fernando", "Geoffrey", "Herbert",
    "Ivar", "Juris", "Kristen", "Lotfi", "Manuel", "Noam", "Ole", "Peter", "Quentin", "Raj",
    "Stephen", "Tim", "Umberto", "Vint", "William", "Xiaoyun", "Yann", "Zohar",
];

/// Last names sampled uniformly by the generator.
#[rustfmt::skip]
pub const LAST_NAMES: &[&str] = &[
    "Perera", "Lepland", "Wang", "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth",
    "Backus", "Lamport", "Hoare", "Milner", "Allen", "Wirth", "Thompson", "Ritchie",
    "Stroustrup", "Gosling", "Rossum", "Kernighan", "Hamilton", "Johnson", "Easley", "Bartik",
    "Goedel", "Church", "Curry", "Franklin", "Lamarr", "Perlman", "Goldwasser", "Micali",
    "Shamir", "Rivest", "Diffie", "Hellman", "Merkle", "Elgamal", "Sutherland", "Yao",
    "Lampson", "Bachman", "Patterson", "Clarke", "Corbato", "Hinton", "Simon", "Jacobson",
    "Hartmanis", "Nygaard", "Zadeh", "Blum", "Chomsky", "Dahl", "Naur", "Tarjan", "Reddy",
    "Cook", "Berners-Lee", "Eco", "Cerf", "Kahan", "Lai", "LeCun", "Manber",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        assert!(FIRST_NAMES.len() >= 64);
        assert!(LAST_NAMES.len() >= 64);
        let mut f: Vec<&str> = FIRST_NAMES.to_vec();
        f.sort();
        f.dedup();
        assert_eq!(f.len(), FIRST_NAMES.len());
        let mut l: Vec<&str> = LAST_NAMES.to_vec();
        l.sort();
        l.dedup();
        assert_eq!(l.len(), LAST_NAMES.len());
    }
}
