//! # gsql-datagen
//!
//! Deterministic synthetic data generators for the reproduction.
//!
//! The paper evaluates on LDBC SNB Interactive datasets produced by the
//! LDBC DATAGEN Hadoop job (friendship projection only: persons plus the
//! `knows` edges, with the Q14 precomputed affinity weights). DATAGEN and
//! its datasets are not redistributable here, so [`snb`] generates the
//! closest synthetic equivalent:
//!
//! * person and friendship counts matched to the paper's **Table 1** per
//!   scale factor (interpolated power laws for other scale factors);
//! * a skewed (Chung-Lu style) friendship degree distribution, which is the
//!   property BFS/Dijkstra traversal cost actually depends on;
//! * undirected friendships emitted as two directed edges, matching the
//!   paper's note that "the number of edges is actually double the amount
//!   of friendship relationships";
//! * per-friendship `creationDate` and a strictly positive precomputed
//!   `weight` standing in for the LDBC Q14 interaction-based affinity.
//!
//! [`road`] additionally generates weighted grid road networks for the
//! routing example.

pub mod names;
pub mod road;
pub mod snb;

pub use snb::{SnbDataset, SnbParams};
