//! A minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this local
//! crate provides exactly the API surface the workspace uses: seedable
//! generators ([`rngs::SmallRng`], [`rngs::StdRng`]) and the [`Rng`]
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic for a given seed,
//! which is all the data generators and tests rely on.
//!
//! The numeric streams differ from the real `rand` crate; nothing in the
//! workspace depends on specific values, only on determinism and rough
//! uniformity.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Deterministically seed the generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from `[0, 1)` / their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Primitive integers [`Rng::gen_range`] can sample (round-trips through
/// `i128` so one generic implementation covers signed and unsigned).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widen to `i128`.
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (the value is always in domain by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics when empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<T: SampleUniform, R: RngCore + ?Sized>(lo: T, span: u128, rng: &mut R) -> T {
    let off = (rng.next_u64() as u128 % span) as i128;
    T::from_i128(lo.to_i128() + off)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        sample_span(self.start, span, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        sample_span(lo, span, rng)
    }
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for test data.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" generator; same algorithm as [`SmallRng`] here.
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_CAFE))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The glob-import module mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
