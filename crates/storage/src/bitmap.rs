//! A packed validity bitmap used to track NULLs in columns.

/// A growable bitset packed into `u64` words.
///
/// Bit `i` set means row `i` is **valid** (non-NULL). The bitmap length is
/// tracked in bits; trailing bits of the last word beyond `len` are always
/// zero so that popcounts stay exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn with_value(len: usize, value: bool) -> Bitmap {
        let mut words = vec![if value { u64::MAX } else { 0 }; len.div_ceil(64)];
        if value && !len.is_multiple_of(64) {
            // Clear the unused high bits of the last word.
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i` to `value`. Panics if out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Append a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if value {
            let i = self.len;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
        self.len += 1;
    }

    /// Number of set (valid) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Append all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// Build a new bitmap by gathering bits at `indices`.
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::new();
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Copy the contiguous bit range `range` into a new bitmap (the
    /// positional fast path behind `Table::slice_rows`). Word-aligned
    /// starts copy whole words; unaligned starts stitch adjacent words.
    ///
    /// # Panics
    /// Panics when the range extends past the bitmap.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bitmap {
        assert!(range.end <= self.len, "slice {range:?} out of range {}", self.len);
        let out_len = range.len();
        if out_len == 0 {
            return Bitmap::new();
        }
        let shift = range.start % 64;
        let first_word = range.start / 64;
        let n_words = out_len.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        if shift == 0 {
            words.extend_from_slice(&self.words[first_word..first_word + n_words]);
        } else {
            for w in 0..n_words {
                let lo = self.words[first_word + w] >> shift;
                let hi = match self.words.get(first_word + w + 1) {
                    Some(&next) => next << (64 - shift),
                    None => 0,
                };
                words.push(lo | hi);
            }
        }
        // Clear the unused high bits of the last word so popcounts stay
        // exact (the Bitmap invariant).
        if !out_len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (out_len % 64)) - 1;
            }
        }
        Bitmap { words, len: out_len }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Bitmap {
        let mut bm = Bitmap::new();
        for bit in iter {
            bm.push(bit);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_round_trip() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn with_value_sets_uniformly() {
        let ones = Bitmap::with_value(130, true);
        assert_eq!(ones.count_ones(), 130);
        assert!(ones.all_set());
        let zeros = Bitmap::with_value(130, false);
        assert_eq!(zeros.count_ones(), 0);
    }

    #[test]
    fn with_value_true_clears_tail_bits() {
        // 65 bits => second word must only have 1 bit set.
        let bm = Bitmap::with_value(65, true);
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn take_gathers_bits() {
        let bm: Bitmap = (0..10).map(|i| i % 2 == 0).collect();
        let taken = bm.take(&[0, 1, 9, 4]);
        assert_eq!(taken.iter().collect::<Vec<_>>(), vec![true, false, false, true]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a: Bitmap = [true, false].into_iter().collect();
        let b: Bitmap = [false, true, true].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![true, false, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new().get(0);
    }

    #[test]
    fn slice_matches_bitwise_copy() {
        let bm: Bitmap = (0..300).map(|i| i % 7 == 0 || i % 11 == 0).collect();
        for (start, end) in [(0, 0), (0, 300), (0, 64), (1, 65), (63, 190), (64, 128), (130, 131)] {
            let s = bm.slice(start..end);
            assert_eq!(s.len(), end - start, "{start}..{end}");
            for i in 0..s.len() {
                assert_eq!(s.get(i), bm.get(start + i), "{start}..{end} bit {i}");
            }
            assert_eq!(s.count_ones(), (start..end).filter(|&i| bm.get(i)).count());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bitmap::with_value(10, true).slice(5..11);
    }
}
