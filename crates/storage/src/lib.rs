//! # gsql-storage
//!
//! Columnar storage substrate for the `gsql` engine — the stand-in for the
//! MonetDB kernel used by the paper *Extending SQL for Computing Shortest
//! Paths* (De Leo & Boncz, GRADES'17).
//!
//! The engine follows MonetDB's execution model: every intermediate result is
//! **fully materialized** as a set of typed columns. This crate provides:
//!
//! * [`DataType`] — the SQL type system (including the nested-table `Path`
//!   type introduced by the paper, §3.3);
//! * [`Value`] — a dynamically typed cell value;
//! * [`Column`] — a typed, contiguous column with a validity bitmap;
//! * [`Schema`] / [`ColumnDef`] — named, typed column metadata;
//! * [`Table`] — a materialized relation (schema + equal-length columns);
//! * [`Catalog`] — the named-table store with version counters used for
//!   graph-index invalidation;
//! * [`PathValue`] — a shortest path represented as *references to rows of
//!   the edge table that generated it*, exactly the representation described
//!   in §3.3 of the paper.

pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod date;
pub mod error;
pub mod persist;
pub mod schema;
pub mod table;
pub mod types;
pub mod value;

pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder};
pub use date::Date;
pub use error::StorageError;
pub use persist::{DurableStore, Recovery, SnapshotData, SnapshotTable};
pub use schema::{ColumnDef, Schema};
pub use table::Table;
pub use types::DataType;
pub use value::{PathValue, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
