//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    TableNotFound(String),
    /// No column with this name exists in the schema.
    ColumnNotFound(String),
    /// A value's type does not match the column type it is stored into.
    TypeMismatch {
        /// Type expected by the column.
        expected: String,
        /// Type actually supplied.
        found: String,
    },
    /// A NULL was stored into a column declared NOT NULL.
    NullViolation(String),
    /// Row arity differs from the schema arity.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A date literal could not be parsed.
    InvalidDate(String),
    /// An I/O failure in the durability layer (message carries the path and
    /// the OS error; `std::io::Error` itself is not `Clone`).
    Io(String),
    /// On-disk bytes failed validation (bad magic, checksum mismatch,
    /// truncated structure). Torn WAL tails are *not* errors — they are
    /// truncated silently — so this only surfaces for snapshot files or
    /// structurally impossible record contents.
    Corrupt(String),
    /// Catch-all for internal invariant violations.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table '{name}' already exists"),
            StorageError::TableNotFound(name) => write!(f, "table '{name}' does not exist"),
            StorageError::ColumnNotFound(name) => write!(f, "column '{name}' does not exist"),
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::NullViolation(col) => {
                write!(f, "NULL value in NOT NULL column '{col}'")
            }
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "row has {found} values but schema has {expected} columns")
            }
            StorageError::InvalidDate(s) => write!(f, "invalid date literal '{s}'"),
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage file: {msg}"),
            StorageError::Internal(msg) => write!(f, "internal storage error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(StorageError::TableExists("t".into()).to_string(), "table 't' already exists");
        assert_eq!(
            StorageError::TypeMismatch { expected: "INTEGER".into(), found: "VARCHAR".into() }
                .to_string(),
            "type mismatch: expected INTEGER, found VARCHAR"
        );
        assert_eq!(
            StorageError::ArityMismatch { expected: 3, found: 2 }.to_string(),
            "row has 2 values but schema has 3 columns"
        );
    }
}
