//! The named-table store.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A catalog entry: the table snapshot plus a version counter.
///
/// Tables are stored behind `Arc` and mutated copy-on-write, so a running
/// query always sees a consistent snapshot (matching MonetDB's materialized
/// execution). The version number increments on every mutation and is what
/// graph indices (paper §6 future work) use for invalidation.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Immutable snapshot of the table contents.
    pub table: Arc<Table>,
    /// Bumped on every INSERT/DELETE/UPDATE to this table.
    pub version: u64,
}

/// A thread-safe catalog of named tables.
///
/// Table names are case-insensitive (folded to lowercase internally).
///
/// Besides the per-table data versions, the catalog keeps a **structural
/// (DDL) version** — bumped whenever a table is created, registered or
/// dropped, through *any* API path. Plan caches use it to invalidate plans
/// that embedded schema information.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, TableEntry>>,
    ddl_version: AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The structural (DDL) version: increments on every table create,
    /// register, or drop.
    pub fn ddl_version(&self) -> u64 {
        self.ddl_version.load(Ordering::Acquire)
    }

    fn bump_ddl_version(&self) {
        self.ddl_version.fetch_add(1, Ordering::AcqRel);
    }

    /// Create a new empty table. Errors when the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        if tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        tables.insert(key, TableEntry { table: Arc::new(Table::empty(schema)), version: 0 });
        drop(tables);
        self.bump_ddl_version();
        Ok(())
    }

    /// Register a pre-built table (used by the data generator for bulk load).
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        if tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        tables.insert(key, TableEntry { table: Arc::new(table), version: 0 });
        drop(tables);
        self.bump_ddl_version();
        Ok(())
    }

    /// Drop a table. Errors when absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        let removed = tables.remove(&key);
        drop(tables);
        if removed.is_some() {
            self.bump_ddl_version();
            Ok(())
        } else {
            Err(StorageError::TableNotFound(name.to_string()))
        }
    }

    /// Snapshot of a table (cheap `Arc` clone). Errors when absent.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.entry(name)?.table)
    }

    /// Snapshot plus version, for index invalidation checks.
    pub fn entry(&self, name: &str) -> Result<TableEntry> {
        let key = name.to_ascii_lowercase();
        let tables = self.tables.read().expect("catalog lock poisoned");
        tables.get(&key).cloned().ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// True when a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.tables.read().expect("catalog lock poisoned").contains_key(&key)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let tables = self.tables.read().expect("catalog lock poisoned");
        let mut names: Vec<String> = tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Replace a table's contents wholesale, bumping its version.
    ///
    /// Unlike [`Catalog::update`], no copy of the current contents is made:
    /// the new table is moved in directly. This is the fast path for
    /// operations that rebuild the whole table anyway (e.g. `UPDATE`).
    pub fn replace(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        let entry =
            tables.get_mut(&key).ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        entry.table = Arc::new(table);
        entry.version += 1;
        Ok(())
    }

    /// Every entry as `(name, entry)` pairs, sorted by name. Snapshot
    /// capture uses this; the `Arc` clones are cheap.
    pub fn entries(&self) -> Vec<(String, TableEntry)> {
        let tables = self.tables.read().expect("catalog lock poisoned");
        let mut out: Vec<(String, TableEntry)> =
            tables.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Recovery-only: install a table snapshot under an explicit data
    /// version **without** bumping the DDL version. Restoring a snapshot
    /// must leave every version counter exactly where the checkpointed
    /// process had it; [`Catalog::set_ddl_version`] restores the structural
    /// counter separately.
    pub fn restore_table(&self, name: &str, table: Arc<Table>, version: u64) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        if tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        tables.insert(key, TableEntry { table, version });
        Ok(())
    }

    /// Recovery-only: force the structural (DDL) version to the value a
    /// snapshot recorded.
    pub fn set_ddl_version(&self, version: u64) {
        self.ddl_version.store(version, Ordering::Release);
    }

    /// Mutate a table through a closure, bumping its version.
    ///
    /// The closure gets a mutable `Table` (copy-on-write: running queries
    /// holding the old `Arc` are unaffected). When the closure errors, the
    /// table and its version are left unchanged.
    pub fn update<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> Result<R>) -> Result<R> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        let entry =
            tables.get_mut(&key).ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        // Work on a private copy so failures don't leave partial mutations.
        let mut working = (*entry.table).clone();
        let out = f(&mut working)?;
        entry.table = Arc::new(working);
        entry.version += 1;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::not_null("id", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("T", schema()).unwrap();
        assert!(cat.contains("t"));
        assert!(cat.get("T").unwrap().is_empty());
        cat.drop_table("t").unwrap();
        assert!(!cat.contains("T"));
        assert!(matches!(cat.get("t"), Err(StorageError::TableNotFound(_))));
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        assert!(matches!(cat.create_table("T", schema()), Err(StorageError::TableExists(_))));
    }

    #[test]
    fn update_bumps_version_and_is_snapshot_isolated() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        let before = cat.get("t").unwrap();
        assert_eq!(cat.entry("t").unwrap().version, 0);

        cat.update("t", |t| t.append_row(vec![Value::Int(1)])).unwrap();
        assert_eq!(cat.entry("t").unwrap().version, 1);
        // The old snapshot is unchanged (copy-on-write).
        assert_eq!(before.row_count(), 0);
        assert_eq!(cat.get("t").unwrap().row_count(), 1);
    }

    #[test]
    fn failed_update_rolls_back() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        let res = cat.update("t", |t| {
            t.append_row(vec![Value::Int(1)])?;
            Err::<(), _>(StorageError::Internal("boom".into()))
        });
        assert!(res.is_err());
        assert_eq!(cat.entry("t").unwrap().version, 0);
        assert_eq!(cat.get("t").unwrap().row_count(), 0);
    }

    #[test]
    fn ddl_version_counts_structural_changes_only() {
        let cat = Catalog::new();
        assert_eq!(cat.ddl_version(), 0);
        cat.create_table("a", schema()).unwrap();
        assert_eq!(cat.ddl_version(), 1);
        cat.register_table("b", Table::empty(schema())).unwrap();
        assert_eq!(cat.ddl_version(), 2);
        // Data mutation does not bump the structural version.
        cat.update("a", |t| t.append_row(vec![Value::Int(1)])).unwrap();
        cat.replace("a", Table::empty(schema())).unwrap();
        assert_eq!(cat.ddl_version(), 2);
        cat.drop_table("b").unwrap();
        assert_eq!(cat.ddl_version(), 3);
        // Failed operations do not bump.
        assert!(cat.drop_table("b").is_err());
        assert!(cat.create_table("a", schema()).is_err());
        assert_eq!(cat.ddl_version(), 3);
    }

    #[test]
    fn replace_swaps_contents_and_bumps_version() {
        let cat = Catalog::new();
        cat.create_table("t", schema()).unwrap();
        let old = cat.get("t").unwrap();
        let mut fresh = Table::empty(schema());
        fresh.append_row(vec![Value::Int(42)]).unwrap();
        cat.replace("t", fresh).unwrap();
        assert_eq!(cat.entry("t").unwrap().version, 1);
        assert_eq!(cat.get("t").unwrap().row_count(), 1);
        // Old snapshot untouched.
        assert_eq!(old.row_count(), 0);
        assert!(matches!(
            cat.replace("missing", Table::empty(schema())),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        cat.create_table("zeta", schema()).unwrap();
        cat.create_table("Alpha", schema()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
