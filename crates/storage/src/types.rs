//! SQL data types supported by the engine.

use std::fmt;

/// The SQL type system.
///
/// This mirrors the subset MonetDB exposes that the paper's prototype relies
/// on, plus the special [`DataType::Path`] nested-table type of §3.3: a path
/// is "a special type that groups together multiple rows and columns into a
/// single component" and can only be produced by `CHEAPEST SUM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER` / `BIGINT`).
    Int,
    /// 64-bit IEEE-754 floating point (`DOUBLE` / `FLOAT`).
    Double,
    /// UTF-8 string (`VARCHAR` / `TEXT`).
    Varchar,
    /// Boolean (`BOOLEAN`).
    Bool,
    /// Calendar date (`DATE`), stored as days since 1970-01-01.
    Date,
    /// Nested table holding the edges of a shortest path (paper §3.3).
    ///
    /// Values of this type cannot be created by DDL; they are produced only
    /// by `CHEAPEST SUM(…) AS (cost, path)` and consumed by `UNNEST`.
    Path,
}

impl DataType {
    /// SQL spelling of the type, as used in error messages and `DESCRIBE`.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
            DataType::Path => "PATH",
        }
    }

    /// True for types on which arithmetic is defined.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }

    /// True if a column of this type may be used as a graph vertex key
    /// (the `S`/`D`/`X`/`Y` attributes of the `REACHES` predicate).
    ///
    /// The paper requires the four attributes to have matching types; we
    /// additionally restrict keys to equality-comparable scalar types.
    pub fn is_vertex_key(&self) -> bool {
        matches!(self, DataType::Int | DataType::Varchar | DataType::Date | DataType::Bool)
    }

    /// Whether values of `self` can be implicitly widened to `other`
    /// (only `Int -> Double` in this engine, as in SQL numeric promotion).
    pub fn coerces_to(&self, other: DataType) -> bool {
        *self == other || (*self == DataType::Int && other == DataType::Double)
    }

    /// The common supertype of two numeric types, if any.
    pub fn numeric_supertype(a: DataType, b: DataType) -> Option<DataType> {
        match (a, b) {
            (DataType::Int, DataType::Int) => Some(DataType::Int),
            (DataType::Int, DataType::Double)
            | (DataType::Double, DataType::Int)
            | (DataType::Double, DataType::Double) => Some(DataType::Double),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names_round_trip() {
        for (ty, name) in [
            (DataType::Int, "INTEGER"),
            (DataType::Double, "DOUBLE"),
            (DataType::Varchar, "VARCHAR"),
            (DataType::Bool, "BOOLEAN"),
            (DataType::Date, "DATE"),
            (DataType::Path, "PATH"),
        ] {
            assert_eq!(ty.sql_name(), name);
            assert_eq!(ty.to_string(), name);
        }
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Double.is_numeric());
        assert!(!DataType::Varchar.is_numeric());
        assert!(!DataType::Path.is_numeric());
    }

    #[test]
    fn vertex_key_types() {
        assert!(DataType::Int.is_vertex_key());
        assert!(DataType::Varchar.is_vertex_key());
        assert!(!DataType::Double.is_vertex_key());
        assert!(!DataType::Path.is_vertex_key());
    }

    #[test]
    fn coercion_rules() {
        assert!(DataType::Int.coerces_to(DataType::Double));
        assert!(DataType::Int.coerces_to(DataType::Int));
        assert!(!DataType::Double.coerces_to(DataType::Int));
        assert!(!DataType::Varchar.coerces_to(DataType::Int));
    }

    #[test]
    fn numeric_supertype_rules() {
        assert_eq!(DataType::numeric_supertype(DataType::Int, DataType::Int), Some(DataType::Int));
        assert_eq!(
            DataType::numeric_supertype(DataType::Int, DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(DataType::numeric_supertype(DataType::Int, DataType::Varchar), None);
    }
}
