//! Dynamically typed cell values.

use crate::date::Date;
use crate::table::Table;
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A shortest path, represented as the paper's §3.3 nested table: a list of
/// **references to rows of the (materialized) edge table** that produced it.
///
/// `UNNEST` materializes the referenced rows; until then the path is a single
/// opaque component, satisfying the projection-operator contract ("the
/// function has to return a single component per tuple").
#[derive(Debug, Clone)]
pub struct PathValue {
    /// Snapshot of the edge table the row ids refer to. Shared by every path
    /// produced by one `CHEAPEST SUM` evaluation.
    pub edges: Arc<Table>,
    /// Row ids into `edges`, ordered from source to destination. Empty when
    /// source equals destination (cost 0).
    pub rows: Vec<u32>,
}

impl PathValue {
    /// Number of edges (hops) in the path.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True for the zero-hop path (source == destination).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl PartialEq for PathValue {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.edges, &other.edges) && self.rows == other.rows
    }
}

impl fmt::Display for PathValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[path: {} edge{}]", self.rows.len(), if self.rows.len() == 1 { "" } else { "s" })
    }
}

/// A single dynamically typed SQL value.
///
/// `Value` is used at cell granularity (literals, parameters, row access);
/// bulk data lives in [`crate::Column`]s.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (typeless).
    Null,
    /// `INTEGER` value.
    Int(i64),
    /// `DOUBLE` value.
    Double(f64),
    /// `VARCHAR` value.
    Str(String),
    /// `BOOLEAN` value.
    Bool(bool),
    /// `DATE` value.
    Date(Date),
    /// Nested-table shortest path (paper §3.3).
    Path(PathValue),
}

impl Value {
    /// The value's data type; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Varchar),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
            Value::Path(_) => Some(DataType::Path),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Floating content, promoting `Int` to `Double` (SQL numeric widening).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Date content, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Path content, if this is a `Path`.
    pub fn as_path(&self) -> Option<&PathValue> {
        match self {
            Value::Path(p) => Some(p),
            _ => None,
        }
    }

    /// SQL equality (`=`): NULL compared with anything is not equal here;
    /// three-valued logic is handled by the expression evaluator, which
    /// checks for NULL before calling this.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a == b,
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Path(a), Value::Path(b)) => a == b,
            _ => false,
        }
    }

    /// Total ordering used for ORDER BY and sort-based operators.
    ///
    /// NULL sorts first; cross-type numeric comparisons widen to double;
    /// otherwise values of different types order by type tag (this can only
    /// be observed through engine bugs, never through well-typed plans).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Path(a), Path(b)) => a.rows.cmp(&b.rows),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Hash consistent with [`Value::sql_eq`] for use in hash joins and
    /// group-by. Numeric values hash through their double representation so
    /// that `Int(1)` and `Double(1.0)` collide (they are `sql_eq`).
    pub fn hash_value<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Double(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.0.hash(state);
            }
            Value::Path(p) => {
                5u8.hash(state);
                p.rows.hash(state);
            }
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Double(_) => 1,
        Value::Str(_) => 2,
        Value::Bool(_) => 3,
        Value::Date(_) => 4,
        Value::Path(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other),
        }
    }
}

/// A hash-map key wrapper giving [`Value`] `Eq + Hash` with SQL semantics
/// (NULL == NULL, used by GROUP BY where NULLs form one group).
#[derive(Debug, Clone, PartialEq)]
pub struct HashableValue(pub Value);

impl Eq for HashableValue {}

impl Hash for HashableValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash_value(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Path(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Value {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Varchar));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(3).sql_eq(&Value::Double(3.0)));
        assert!(!Value::Int(3).sql_eq(&Value::Double(3.5)));
    }

    #[test]
    fn total_ordering_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1].as_int(), Some(1));
        assert_eq!(vals[2].as_int(), Some(2));
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Double(1.5)), Ordering::Less);
        assert_eq!(Value::Double(2.5).total_cmp(&Value::Int(2)), Ordering::Greater);
        assert_eq!(Value::Int(2).total_cmp(&Value::Double(2.0)), Ordering::Equal);
    }

    #[test]
    fn hashable_value_groups_nulls() {
        use std::collections::HashMap;
        let mut groups: HashMap<HashableValue, usize> = HashMap::new();
        for v in [Value::Null, Value::Null, Value::Int(1), Value::Double(1.0)] {
            *groups.entry(HashableValue(v)).or_default() += 1;
        }
        // NULLs group together; Int(1) and Double(1.0) group together.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&HashableValue(Value::Null)], 2);
        assert_eq!(groups[&HashableValue(Value::Int(1))], 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }

    #[test]
    fn as_double_widens_int() {
        assert_eq!(Value::Int(7).as_double(), Some(7.0));
        assert_eq!(Value::Str("x".into()).as_double(), None);
    }
}
