//! Schemas: named, typed column metadata.

use crate::error::StorageError;
use crate::types::DataType;
use crate::Result;
use std::fmt;

/// Definition of one column: a name, a type and a nullability flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (matched case-insensitively, stored as written).
    pub name: String,
    /// Column data type.
    pub ty: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column definition.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), ty, nullable: true }
    }

    /// A NOT NULL column definition.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), ty, nullable: false }
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.ty)?;
        if !self.nullable {
            write!(f, " NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered list of column definitions.
///
/// SQL identifiers are case-insensitive in this engine (they are folded at
/// lookup time, not at storage time, so `DESCRIBE` output keeps the original
/// spelling).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Schema from a list of column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        Schema { columns }
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column definition at ordinal `i`.
    pub fn column(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }

    /// Case-insensitive lookup of a column ordinal by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Case-insensitive lookup, erroring when absent.
    pub fn index_of_ok(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// Append a column definition (builder-style).
    pub fn push(&mut self, def: ColumnDef) {
        self.columns.push(def);
    }

    /// Iterator over the column names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("firstName", DataType::Varchar),
            ColumnDef::new("weight", DataType::Double),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("firstname"), Some(1));
        assert_eq!(s.index_of("FIRSTNAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn index_of_ok_errors_when_absent() {
        let s = sample();
        assert!(matches!(s.index_of_ok("nope"), Err(StorageError::ColumnNotFound(_))));
    }

    #[test]
    fn display_includes_not_null() {
        let s = sample();
        assert_eq!(s.to_string(), "(id INTEGER NOT NULL, firstName VARCHAR, weight DOUBLE)");
    }

    #[test]
    fn names_iterate_in_order() {
        let s = sample();
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["id", "firstName", "weight"]);
    }
}
