//! Minimal CSV import/export for tables.
//!
//! Supports the RFC-4180 subset needed to move datasets in and out of the
//! engine: comma separation, double-quote quoting with `""` escapes, a
//! header row, and an empty field as NULL. Values are parsed according to
//! the target schema (so a DATE column accepts `2011-01-01`).

use crate::date::Date;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;
use std::io::{BufRead, Write};

/// Render a table as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<()> {
    let io_err = |e: std::io::Error| StorageError::Internal(format!("csv write: {e}"));
    let header: Vec<String> = table.schema().names().map(quote_field).collect();
    writeln!(out, "{}", header.join(",")).map_err(io_err)?;
    for row in table.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                // A quoted empty field distinguishes '' from NULL.
                Value::Str(s) if s.is_empty() => "\"\"".to_string(),
                Value::Str(s) => quote_field(s),
                other => other.to_string(),
            })
            .collect();
        writeln!(out, "{}", fields.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Parse CSV (with a header row) into a table with the given schema.
///
/// The header is validated against the schema's column names
/// (case-insensitive, same order). Empty fields become NULL; fields are
/// converted to the column type, erroring with row/column context.
pub fn read_csv<R: BufRead>(schema: Schema, mut input: R) -> Result<Table> {
    let io_err = |e: std::io::Error| StorageError::Internal(format!("csv read: {e}"));
    let mut text = String::new();
    input.read_to_string(&mut text).map_err(io_err)?;
    let mut records = split_records(&text)?.into_iter();
    let header_line =
        records.next().ok_or_else(|| StorageError::Internal("csv input is empty".to_string()))?;
    let header = parse_record(&header_line)?;
    if header.len() != schema.len() {
        return Err(StorageError::ArityMismatch { expected: schema.len(), found: header.len() });
    }
    for ((h, _), def) in header.iter().zip(schema.columns()) {
        if !h.eq_ignore_ascii_case(&def.name) {
            return Err(StorageError::Internal(format!(
                "csv header '{h}' does not match column '{}'",
                def.name
            )));
        }
    }

    let mut table = Table::empty(schema.clone());
    for (line_no, line) in records.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line)?;
        if fields.len() != schema.len() {
            return Err(StorageError::Internal(format!(
                "csv line {}: expected {} fields, found {}",
                line_no + 2,
                schema.len(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for ((field, quoted), def) in fields.iter().zip(schema.columns()) {
            row.push(parse_field(field, *quoted, def.ty).map_err(|e| {
                StorageError::Internal(format!(
                    "csv line {}, column '{}': {e}",
                    line_no + 2,
                    def.name
                ))
            })?);
        }
        table.append_row(row)?;
    }
    Ok(table)
}

/// Split input text into records at newlines that are outside quotes
/// (RFC 4180 allows quoted fields to contain line breaks). A trailing `\r`
/// from CRLF line endings is stripped.
fn split_records(text: &str) -> Result<Vec<String>> {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            '\n' if !in_quotes => {
                if current.ends_with('\r') {
                    current.pop();
                }
                records.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    if in_quotes {
        return Err(StorageError::Internal("unterminated quote in csv input".to_string()));
    }
    if !current.is_empty() {
        records.push(current);
    }
    Ok(records)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV record, honouring quotes. Each field carries a flag for
/// whether it was quoted (a quoted empty field means '' rather than NULL).
fn parse_record(line: &str) -> Result<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut was_quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    was_quoted = true;
                }
                ',' => {
                    fields.push((std::mem::take(&mut field), was_quoted));
                    was_quoted = false;
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Internal("unterminated quote in csv record".to_string()));
    }
    fields.push((field, was_quoted));
    Ok(fields)
}

fn parse_field(field: &str, was_quoted: bool, ty: DataType) -> Result<Value> {
    if field.is_empty() && !was_quoted {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(
            field
                .trim()
                .parse::<i64>()
                .map_err(|_| StorageError::Internal(format!("'{field}' is not an INTEGER")))?,
        ),
        DataType::Double => Value::Double(
            field
                .trim()
                .parse::<f64>()
                .map_err(|_| StorageError::Internal(format!("'{field}' is not a DOUBLE")))?,
        ),
        DataType::Varchar => Value::Str(field.to_string()),
        DataType::Bool => match field.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => {
                return Err(StorageError::Internal(format!("'{field}' is not a BOOLEAN")));
            }
        },
        DataType::Date => Value::Date(Date::parse(field.trim())?),
        DataType::Path => {
            return Err(StorageError::Internal(
                "PATH columns cannot be imported from csv".to_string(),
            ));
        }
    })
}

/// Round-trip helper used by tests and the shell: export to a string.
pub fn to_csv_string(table: &Table) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf)?;
    String::from_utf8(buf).map_err(|e| StorageError::Internal(format!("utf8: {e}")))
}

/// Keep the signature symmetric with [`to_csv_string`].
pub fn from_csv_string(schema: Schema, csv: &str) -> Result<Table> {
    read_csv(schema, csv.as_bytes())
}

// Re-export under the column module path for discoverability.
pub use self::read_csv as import;
pub use self::write_csv as export;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("name", DataType::Varchar),
            ColumnDef::new("score", DataType::Double),
            ColumnDef::new("born", DataType::Date),
            ColumnDef::new("ok", DataType::Bool),
        ])
    }

    fn sample() -> Table {
        let mut t = Table::empty(schema());
        t.append_row(vec![
            Value::Int(1),
            Value::from("plain"),
            Value::Double(1.5),
            Value::Date(Date::parse("2010-03-24").unwrap()),
            Value::Bool(true),
        ])
        .unwrap();
        t.append_row(vec![
            Value::Int(2),
            Value::from("comma, quote \" and\nnewline? no"),
            Value::Null,
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_values() {
        let t = sample();
        let csv = to_csv_string(&t).unwrap();
        let back = from_csv_string(schema(), &csv).unwrap();
        assert_eq!(back.row_count(), t.row_count());
        for i in 0..t.row_count() {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
    }

    #[test]
    fn empty_fields_are_null() {
        let t = from_csv_string(schema(), "id,name,score,born,ok\n7,,,,\n").unwrap();
        let row = t.row(0);
        assert_eq!(row[0], Value::Int(7));
        assert!(row[1].is_null() && row[2].is_null() && row[3].is_null() && row[4].is_null());
    }

    #[test]
    fn header_is_validated() {
        let err = from_csv_string(schema(), "wrong,name,score,born,ok\n").unwrap_err();
        assert!(err.to_string().contains("does not match"));
        let err = from_csv_string(schema(), "id,name\n").unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn type_errors_carry_position() {
        let err = from_csv_string(schema(), "id,name,score,born,ok\nabc,x,1.0,2010-01-01,true\n")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("'id'"), "{msg}");
    }

    #[test]
    fn quoted_fields_parse() {
        let fields = parse_record("a,\"b,c\",\"d\"\"e\",f").unwrap();
        let texts: Vec<&str> = fields.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "b,c", "d\"e", "f"]);
        assert_eq!(
            fields.iter().map(|&(_, q)| q).collect::<Vec<_>>(),
            vec![false, true, true, false]
        );
        assert!(parse_record("\"unterminated").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t =
            from_csv_string(Schema::new(vec![ColumnDef::new("x", DataType::Int)]), "x\n1\n\n2\n")
                .unwrap();
        assert_eq!(t.row_count(), 2);
    }
}
