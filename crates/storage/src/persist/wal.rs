//! The append-only, checksummed write-ahead log.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "GSQLWAL1"]
//! [u32 payload_len][u32 crc32(payload)][payload] ...   (one frame per record)
//! ```
//!
//! Record payloads are opaque to this layer — the engine above encodes
//! logical statements into them. The framing is what makes the log
//! **torn-tail tolerant**: a crash mid-append leaves a final frame that is
//! short or fails its checksum, and both readers and the re-opening writer
//! stop at the last complete, checksum-valid frame. The writer physically
//! truncates the torn tail before appending again, so a recovered log is
//! always a consistent prefix of what was written.

use super::codec::crc32;
use crate::error::StorageError;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"GSQLWAL1";

/// Per-frame overhead: length prefix + checksum.
const FRAME_HEADER: usize = 8;

/// Largest accepted record payload (1 GiB) — a sanity bound so a corrupt
/// length prefix cannot drive a giant allocation.
const MAX_RECORD: usize = 1 << 30;

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{context} {}: {e}", path.display()))
}

/// Result of scanning a WAL file: the valid record payloads, the byte
/// length of the valid prefix, and how many trailing bytes were torn.
#[derive(Debug)]
pub struct WalScan {
    /// Payloads of every complete, checksum-valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset one past the last valid frame (`>= WAL_MAGIC.len()`).
    pub valid_len: u64,
    /// Bytes beyond `valid_len` (a torn append or trailing garbage).
    pub torn_bytes: u64,
}

/// Read and validate a WAL file, stopping at the first torn or corrupt
/// frame. A missing file reads as an empty log.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan { records: Vec::new(), valid_len: 0, torn_bytes: 0 });
        }
        Err(e) => return Err(io_err("reading WAL", path, e)),
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{} is not a WAL file (bad magic)",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if bytes.len() - pos < FRAME_HEADER {
            break; // torn or clean end
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD || bytes.len() - pos - FRAME_HEADER < len {
            break; // torn length or torn payload
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break; // torn or corrupt payload
        }
        records.push(payload.to_vec());
        pos += FRAME_HEADER + len;
    }
    Ok(WalScan { records, valid_len: pos as u64, torn_bytes: (bytes.len() - pos) as u64 })
}

/// The appending side of a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Create a fresh WAL file (magic only), fsynced. Errors if the file
    /// already exists — epochs never reuse a log file.
    pub fn create(path: &Path) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| io_err("creating WAL", path, e))?;
        file.write_all(WAL_MAGIC).map_err(|e| io_err("initializing WAL", path, e))?;
        file.sync_all().map_err(|e| io_err("syncing WAL", path, e))?;
        Ok(WalWriter { file, path: path.to_path_buf() })
    }

    /// Open an existing WAL for appending, truncating any torn tail first.
    /// Returns the writer and the number of torn bytes discarded. A missing
    /// file is created fresh.
    pub fn open_truncating(path: &Path) -> Result<(WalWriter, u64)> {
        if !path.exists() {
            return Ok((WalWriter::create(path)?, 0));
        }
        let scan = scan_wal(path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("opening WAL", path, e))?;
        if scan.torn_bytes > 0 {
            file.set_len(scan.valid_len).map_err(|e| io_err("truncating WAL", path, e))?;
            file.sync_all().map_err(|e| io_err("syncing WAL", path, e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seeking WAL", path, e))?;
        Ok((WalWriter { file, path: path.to_path_buf() }, scan.torn_bytes))
    }

    /// Append one record, durably (`fdatasync` before returning). Returns
    /// the number of bytes written including framing.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD {
            return Err(StorageError::Internal(format!(
                "WAL record of {} bytes exceeds the 1 GiB bound",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(|e| io_err("appending to WAL", &self.path, e))?;
        self.file.sync_data().map_err(|e| io_err("syncing WAL", &self.path, e))?;
        Ok(frame.len() as u64)
    }

    /// The log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gsql-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_and_scan_round_trip() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(b"third record").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![b"first".to_vec(), Vec::new(), b"third record".to_vec()]);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"keep me").unwrap();
        w.append(b"also keep").unwrap();
        drop(w);
        // Simulate a crash mid-append: a frame header promising more bytes
        // than exist.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"short").unwrap();
        drop(f);

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 13);

        // Reopening truncates and appends after the valid prefix.
        let (mut w, torn) = WalWriter::open_truncating(&path).unwrap();
        assert_eq!(torn, 13);
        w.append(b"after recovery").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(
            scan.records,
            vec![b"keep me".to_vec(), b"also keep".to_vec(), b"after recovery".to_vec()]
        );
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn corrupt_crc_truncates_from_that_record() {
        let path = temp_path("crc");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"good").unwrap();
        w.append(b"bad").unwrap();
        drop(w);
        // Flip a payload byte of the second record (the last 3 bytes).
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![b"good".to_vec()]);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_path("missing").with_file_name("never-created.log");
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAWAL!xxxx").unwrap();
        assert!(matches!(scan_wal(&path), Err(StorageError::Corrupt(_))));
    }
}
