//! The durable store: one data directory holding a snapshot + WAL epoch
//! pair, with atomic checkpoint rotation and crash recovery.
//!
//! On-disk layout of a data directory:
//!
//! ```text
//! data_dir/
//!   snapshot-<e>.gsnap    the epoch-e checkpoint (absent at epoch 0 when
//!                         no checkpoint has ever been taken)
//!   wal-<e>.log           statements logged since the epoch-e checkpoint
//! ```
//!
//! Checkpoint rotation (epoch `e` → `e+1`) is ordered so a crash at any
//! point recovers to a consistent prefix:
//!
//! 1. serialize the snapshot to `snapshot-<e+1>.tmp`, fsync;
//! 2. create the empty `wal-<e+1>.log`, fsync;
//! 3. rename the temp file to `snapshot-<e+1>.gsnap` (atomic);
//! 4. fsync the directory;
//! 5. switch appends to the new WAL and delete the epoch-`e` files.
//!
//! An orphan `wal-<e+1>.log` without `snapshot-<e+1>.gsnap` means the
//! crash hit between steps 2 and 3: recovery ignores and deletes it, and
//! resumes from epoch `e`. A `.tmp` file is always ignored and deleted.
//!
//! Writers and the checkpointer coordinate through a **commit lock**: every
//! mutating statement holds the shared side across apply + WAL append, and
//! a checkpoint holds the exclusive side across capture + rotation — so no
//! statement can land in both the new snapshot and the new WAL (which
//! would double-apply it on recovery).

use super::snapshot::{decode_snapshot, encode_snapshot, SnapshotData};
use super::wal::{scan_wal, WalWriter};
use crate::error::StorageError;
use crate::Result;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

fn io_err(context: &str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{context} {}: {e}", path.display()))
}

/// What recovery found in the data directory.
#[derive(Debug)]
pub struct Recovery {
    /// The latest checkpoint, if one was ever taken.
    pub snapshot: Option<SnapshotData>,
    /// Valid WAL record payloads appended since that checkpoint, in order.
    pub wal_records: Vec<Vec<u8>>,
    /// Torn trailing bytes truncated from the WAL (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// The epoch recovery resumed from.
    pub epoch: u64,
}

#[derive(Debug)]
struct StoreInner {
    epoch: u64,
    wal: WalWriter,
}

/// A durable data directory: appends statements to the current epoch's WAL
/// and rotates epochs on checkpoint.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    commit: RwLock<()>,
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch}.gsnap"))
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// Parse `prefix-<n>.suffix` into `n`.
fn parse_epoch(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn fsync_dir(dir: &Path) -> Result<()> {
    // Directory fsync makes the rename itself durable. Some filesystems
    // refuse to open directories for writing; opening read-only suffices
    // for fsync on every Unix we target.
    let f = File::open(dir).map_err(|e| io_err("opening directory", dir, e))?;
    f.sync_all().map_err(|e| io_err("syncing directory", dir, e))
}

impl DurableStore {
    /// Open (or initialize) a data directory, recovering its contents.
    ///
    /// Returns the store positioned to append after the recovered prefix,
    /// plus everything the engine needs to rebuild in-memory state.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableStore, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("creating data directory", &dir, e))?;

        // Inventory the directory.
        let mut snapshots: Vec<u64> = Vec::new();
        let mut wals: Vec<u64> = Vec::new();
        let mut tmps: Vec<PathBuf> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("listing data directory", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing data directory", &dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                tmps.push(entry.path());
            } else if let Some(e) = parse_epoch(&name, "snapshot-", ".gsnap") {
                snapshots.push(e);
            } else if let Some(e) = parse_epoch(&name, "wal-", ".log") {
                wals.push(e);
            }
        }
        // Leftover temp files are incomplete checkpoints: never valid.
        for tmp in tmps {
            let _ = fs::remove_file(tmp);
        }

        // The recovery epoch: the newest snapshot, else the newest WAL
        // (fresh directories start at epoch 0 with neither).
        let epoch = match snapshots.iter().max() {
            Some(&e) => e,
            None => wals.iter().max().copied().unwrap_or(0),
        };

        let snapshot = match snapshots.iter().max() {
            Some(&e) => {
                let path = snapshot_path(&dir, e);
                let bytes =
                    fs::read(&path).map_err(|err| io_err("reading snapshot", &path, err))?;
                Some(decode_snapshot(&bytes).map_err(|err| match err {
                    StorageError::Corrupt(msg) => {
                        StorageError::Corrupt(format!("{}: {msg}", path.display()))
                    }
                    other => other,
                })?)
            }
            None => None,
        };

        // Delete files from other epochs: older pairs are superseded; a
        // newer orphan WAL is a checkpoint that never completed.
        for &e in snapshots.iter().chain(wals.iter()) {
            if e != epoch {
                let _ = fs::remove_file(snapshot_path(&dir, e));
                let _ = fs::remove_file(wal_path(&dir, e));
            }
        }
        let wal_file = wal_path(&dir, epoch);
        let scan = scan_wal(&wal_file)?;
        let (wal, truncated_bytes) = WalWriter::open_truncating(&wal_file)?;
        debug_assert_eq!(truncated_bytes, scan.torn_bytes);

        let store = DurableStore {
            dir,
            inner: Mutex::new(StoreInner { epoch, wal }),
            commit: RwLock::new(()),
        };
        let recovery = Recovery { snapshot, wal_records: scan.records, truncated_bytes, epoch };
        Ok((store, recovery))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current epoch (bumped by every checkpoint).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("store lock poisoned").epoch
    }

    /// Acquire the shared side of the commit lock. Mutating statements hold
    /// this guard across apply + [`DurableStore::append`] so a concurrent
    /// checkpoint cannot capture the apply while the append lands in the
    /// post-rotation WAL.
    pub fn commit_shared(&self) -> RwLockReadGuard<'_, ()> {
        self.commit.read().expect("commit lock poisoned")
    }

    /// Durably append one record to the current epoch's WAL. Returns the
    /// bytes written including framing.
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        inner.wal.append(payload)
    }

    /// Take a checkpoint: capture a snapshot via `capture` (called under
    /// the exclusive commit lock, so it sees a statement-atomic state) and
    /// rotate to a fresh epoch. Returns the new epoch.
    ///
    /// Callers must **not** hold the shared commit lock (deadlock).
    pub fn checkpoint(&self, capture: impl FnOnce() -> Result<SnapshotData>) -> Result<u64> {
        let _exclusive = self.commit.write().expect("commit lock poisoned");
        let snap = capture()?;
        let bytes = encode_snapshot(&snap)?;

        let mut inner = self.inner.lock().expect("store lock poisoned");
        let old_epoch = inner.epoch;
        let new_epoch = old_epoch + 1;

        // 1. snapshot to temp, fsync.
        let tmp = self.dir.join(format!("snapshot-{new_epoch}.tmp"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("creating snapshot", &tmp, e))?;
            f.write_all(&bytes).map_err(|e| io_err("writing snapshot", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("syncing snapshot", &tmp, e))?;
        }
        // 2. fresh WAL for the new epoch, fsync.
        let new_wal_path = wal_path(&self.dir, new_epoch);
        let _ = fs::remove_file(&new_wal_path); // a dead orphan from a crashed rotation
        let new_wal = WalWriter::create(&new_wal_path)?;
        // 3. atomic publish of the snapshot.
        let final_path = snapshot_path(&self.dir, new_epoch);
        fs::rename(&tmp, &final_path).map_err(|e| io_err("publishing snapshot", &final_path, e))?;
        // 4. make the rename durable.
        fsync_dir(&self.dir)?;
        // 5. switch appends, then retire the old epoch (best effort — a
        // crash here leaves both epochs on disk and recovery picks the
        // newer snapshot).
        inner.wal = new_wal;
        inner.epoch = new_epoch;
        let _ = fs::remove_file(snapshot_path(&self.dir, old_epoch));
        let _ = fs::remove_file(wal_path(&self.dir, old_epoch));
        Ok(new_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::snapshot::SnapshotTable;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::types::DataType;
    use crate::value::Value;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsql-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_table(rows: i64) -> SnapshotData {
        let mut t = Table::empty(Schema::new(vec![ColumnDef::not_null("id", DataType::Int)]));
        for i in 0..rows {
            t.append_row(vec![Value::Int(i)]).unwrap();
        }
        SnapshotData {
            ddl_version: 1,
            tables: vec![SnapshotTable {
                name: "t".into(),
                version: rows as u64,
                table: Arc::new(t),
            }],
            sections: Vec::new(),
        }
    }

    #[test]
    fn fresh_directory_starts_empty_at_epoch_zero() {
        let dir = temp_dir("fresh");
        let (store, rec) = DurableStore::open(&dir).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.wal_records.is_empty());
        assert_eq!(rec.epoch, 0);
        assert_eq!(store.epoch(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_recover_and_checkpoints_rotate() {
        let dir = temp_dir("rotate");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store.append(b"one").unwrap();
            store.append(b"two").unwrap();
        }
        {
            let (store, rec) = DurableStore::open(&dir).unwrap();
            assert_eq!(rec.wal_records, vec![b"one".to_vec(), b"two".to_vec()]);
            let epoch = store.checkpoint(|| Ok(one_table(2))).unwrap();
            assert_eq!(epoch, 1);
            store.append(b"three").unwrap();
        }
        {
            let (store, rec) = DurableStore::open(&dir).unwrap();
            assert_eq!(rec.epoch, 1);
            let snap = rec.snapshot.expect("snapshot after checkpoint");
            assert_eq!(snap.tables[0].table.row_count(), 2);
            assert_eq!(rec.wal_records, vec![b"three".to_vec()]);
            assert_eq!(store.epoch(), 1);
            // Old epoch files are gone.
            assert!(!wal_path(&dir, 0).exists());
            assert!(!snapshot_path(&dir, 0).exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_wal_from_crashed_checkpoint_is_ignored() {
        let dir = temp_dir("orphan");
        {
            let (store, _) = DurableStore::open(&dir).unwrap();
            store.checkpoint(|| Ok(one_table(3))).unwrap();
            store.append(b"live").unwrap();
        }
        // Simulate a crash between WAL creation and snapshot rename: an
        // epoch-2 WAL with no epoch-2 snapshot, plus a leftover temp file.
        WalWriter::create(&wal_path(&dir, 2)).unwrap();
        fs::write(dir.join("snapshot-2.tmp"), b"incomplete").unwrap();
        {
            let (store, rec) = DurableStore::open(&dir).unwrap();
            assert_eq!(rec.epoch, 1);
            assert_eq!(rec.wal_records, vec![b"live".to_vec()]);
            assert!(rec.snapshot.is_some());
            assert!(!wal_path(&dir, 2).exists());
            assert!(!dir.join("snapshot-2.tmp").exists());
            // The next checkpoint reuses epoch 2 cleanly.
            assert_eq!(store.checkpoint(|| Ok(one_table(4))).unwrap(), 2);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn both_epochs_present_prefers_newer_snapshot() {
        let dir = temp_dir("bothepochs");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.append(b"a").unwrap();
        store.checkpoint(|| Ok(one_table(1))).unwrap();
        store.append(b"b").unwrap();
        drop(store);
        // Resurrect a stale epoch-0 pair as if deletion never happened.
        WalWriter::create(&wal_path(&dir, 0)).unwrap();
        fs::write(snapshot_path(&dir, 0), encode_snapshot(&one_table(99)).unwrap()).unwrap();
        let (_, rec) = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.snapshot.unwrap().tables[0].table.row_count(), 1);
        assert_eq!(rec.wal_records, vec![b"b".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_surfaces_a_named_error() {
        let dir = temp_dir("corruptsnap");
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.checkpoint(|| Ok(one_table(1))).unwrap();
        drop(store);
        let path = snapshot_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = DurableStore::open(&dir).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
