//! Durability: write-ahead logging, snapshot checkpoints, crash recovery.
//!
//! The layering is deliberate: this module knows how to persist **tables
//! and bytes**, not engine semantics. WAL record payloads are opaque (the
//! engine encodes logical statements into them) and snapshots carry named
//! opaque *sections* next to the catalog tables (the engine serializes its
//! index registries and built acceleration structures into those). That
//! keeps `gsql-storage` dependency-free and lets the engine evolve its
//! record formats without touching the on-disk framing.
//!
//! * [`codec`] — little-endian primitives + CRC-32, shared by every format;
//! * [`wal`] — the append-only, checksummed, torn-tail-tolerant log;
//! * [`snapshot`] — the versioned snapshot file format;
//! * [`store`] — the data directory: epoch rotation + crash recovery.

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{crc32, ByteReader, ByteWriter};
pub use snapshot::{decode_snapshot, encode_snapshot, SnapshotData, SnapshotTable};
pub use store::{DurableStore, Recovery};
pub use wal::{scan_wal, WalScan, WalWriter};
