//! Byte-level encoding primitives shared by the WAL and snapshot formats.
//!
//! Everything on disk is little-endian and length-prefixed; there is no
//! schema evolution magic beyond the format-version byte each container
//! writes up front. The checksum is plain CRC-32 (IEEE), table-driven.

use crate::error::StorageError;
use crate::Result;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// An append-only byte buffer with typed little-endian writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` (two's-complement little-endian).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` through its IEEE-754 bit pattern (NaN-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over encoded bytes; every read is bounds-checked and a short
/// buffer surfaces as [`StorageError::Corrupt`] rather than a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("truncated while reading {what}"))
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Read an `i32`.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4, "i32")?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that cannot fit.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| StorageError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("invalid UTF-8 in string".into()))
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_usize()?;
        Ok(self.take(len, "bytes")?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn round_trips_every_type() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_i32(-7);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_i32().unwrap(), -7);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(StorageError::Corrupt(_))));
        // A huge declared length must not allocate or panic.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
