//! The versioned on-disk snapshot format.
//!
//! A snapshot is a single self-contained file:
//!
//! ```text
//! [8-byte magic "GSQLSNP1"][u32 format_version]
//! [payload]                 (catalog + tables + opaque sections)
//! [u32 crc32(payload)]
//! ```
//!
//! The payload serializes the catalog's structural version, every table
//! (name, data version, schema, columns with validity bitmaps) and a list
//! of named **opaque sections** — byte blobs the engine above uses to
//! persist registry state and built acceleration indexes without this
//! crate knowing their shape. Snapshots are always written to a temp file,
//! fsynced, and renamed into place (see [`super::store`]), so a file that
//! exists under its final name is complete; the trailing CRC guards
//! against bit rot, not torn writes.

use super::codec::{crc32, ByteReader, ByteWriter};
use crate::column::Column;
use crate::error::StorageError;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::types::DataType;
use crate::Result;
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GSQLSNP1";

/// Current snapshot format version.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// One table captured in a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotTable {
    /// Catalog name (lowercase).
    pub name: String,
    /// The table's data version at capture time.
    pub version: u64,
    /// The table contents.
    pub table: Arc<Table>,
}

/// Everything a snapshot carries.
#[derive(Debug, Default)]
pub struct SnapshotData {
    /// The catalog's structural (DDL) version at capture time.
    pub ddl_version: u64,
    /// Every table, sorted by name for deterministic bytes.
    pub tables: Vec<SnapshotTable>,
    /// Named opaque sections (engine registry state, serialized indexes).
    pub sections: Vec<(String, Vec<u8>)>,
}

fn type_tag(ty: DataType) -> Result<u8> {
    Ok(match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Varchar => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
        DataType::Path => {
            return Err(StorageError::Internal(
                "PATH columns cannot be persisted (they only exist in query results)".into(),
            ))
        }
    })
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Varchar,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(StorageError::Corrupt(format!("unknown column type tag {other}"))),
    })
}

/// Pack `len` booleans into bytes, LSB-first (8 per byte).
fn put_bools(w: &mut ByteWriter, len: usize, bools: impl Iterator<Item = bool>) {
    w.put_usize(len);
    let mut byte = 0u8;
    let mut filled = 0u8;
    let mut written = 0usize;
    for b in bools.take(len) {
        written += 1;
        if b {
            byte |= 1 << filled;
        }
        filled += 1;
        if filled == 8 {
            w.put_u8(byte);
            byte = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        w.put_u8(byte);
    }
    debug_assert_eq!(written, len, "bitmap iterator shorter than its declared length");
}

fn get_bools(r: &mut ByteReader<'_>) -> Result<Vec<bool>> {
    let len = r.get_usize()?;
    let mut out = Vec::with_capacity(len);
    let mut byte = 0u8;
    for i in 0..len {
        if i % 8 == 0 {
            byte = r.get_u8()?;
        }
        out.push(byte & (1 << (i % 8)) != 0);
    }
    Ok(out)
}

fn encode_column(w: &mut ByteWriter, col: &Column) -> Result<()> {
    w.put_u8(type_tag(col.data_type())?);
    match col {
        Column::Int(vals, validity) => {
            put_bools(w, validity.len(), validity.iter());
            w.put_usize(vals.len());
            for &v in vals {
                w.put_i64(v);
            }
        }
        Column::Double(vals, validity) => {
            put_bools(w, validity.len(), validity.iter());
            w.put_usize(vals.len());
            for &v in vals {
                w.put_f64(v);
            }
        }
        Column::Str(vals, validity) => {
            put_bools(w, validity.len(), validity.iter());
            w.put_usize(vals.len());
            for v in vals {
                w.put_str(v);
            }
        }
        Column::Bool(vals, validity) => {
            put_bools(w, validity.len(), validity.iter());
            put_bools(w, vals.len(), vals.iter().copied());
        }
        Column::Date(vals, validity) => {
            put_bools(w, validity.len(), validity.iter());
            w.put_usize(vals.len());
            for &v in vals {
                w.put_i32(v);
            }
        }
        Column::Path(_) => {
            return Err(StorageError::Internal("PATH columns cannot be persisted".into()))
        }
    }
    Ok(())
}

fn decode_column(r: &mut ByteReader<'_>) -> Result<Column> {
    let ty = tag_type(r.get_u8()?)?;
    let validity: crate::bitmap::Bitmap = get_bools(r)?.into_iter().collect();
    Ok(match ty {
        DataType::Int => {
            let n = r.get_usize()?;
            let mut vals = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                vals.push(r.get_i64()?);
            }
            Column::Int(vals, validity)
        }
        DataType::Double => {
            let n = r.get_usize()?;
            let mut vals = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                vals.push(r.get_f64()?);
            }
            Column::Double(vals, validity)
        }
        DataType::Varchar => {
            let n = r.get_usize()?;
            let mut vals = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                vals.push(r.get_str()?);
            }
            Column::Str(vals, validity)
        }
        DataType::Bool => Column::Bool(get_bools(r)?, validity),
        DataType::Date => {
            let n = r.get_usize()?;
            let mut vals = Vec::with_capacity(n.min(1 << 24));
            for _ in 0..n {
                vals.push(r.get_i32()?);
            }
            Column::Date(vals, validity)
        }
        DataType::Path => unreachable!("rejected by tag_type"),
    })
}

/// Serialize a snapshot to its complete file bytes (magic + version +
/// payload + trailing CRC).
pub fn encode_snapshot(snap: &SnapshotData) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    w.put_u64(snap.ddl_version);
    w.put_usize(snap.tables.len());
    for t in &snap.tables {
        w.put_str(&t.name);
        w.put_u64(t.version);
        let schema = t.table.schema();
        w.put_usize(schema.len());
        for def in schema.columns() {
            w.put_str(&def.name);
            w.put_u8(type_tag(def.ty)?);
            w.put_u8(def.nullable as u8);
        }
        w.put_usize(t.table.row_count());
        for col in t.table.columns() {
            encode_column(&mut w, col)?;
        }
    }
    w.put_usize(snap.sections.len());
    for (name, bytes) in &snap.sections {
        w.put_str(name);
        w.put_bytes(bytes);
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_FORMAT.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    Ok(out)
}

/// Parse and validate complete snapshot file bytes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotData> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StorageError::Corrupt("not a snapshot file (bad magic)".into()));
    }
    let format = u32::from_le_bytes(
        bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4].try_into().unwrap(),
    );
    if format != SNAPSHOT_FORMAT {
        return Err(StorageError::Corrupt(format!(
            "snapshot format {format} is not supported (expected {SNAPSHOT_FORMAT})"
        )));
    }
    let payload = &bytes[SNAPSHOT_MAGIC.len() + 4..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(StorageError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = ByteReader::new(payload);
    let ddl_version = r.get_u64()?;
    let n_tables = r.get_usize()?;
    let mut tables = Vec::with_capacity(n_tables.min(1 << 16));
    for _ in 0..n_tables {
        let name = r.get_str()?;
        let version = r.get_u64()?;
        let n_cols = r.get_usize()?;
        let mut defs = Vec::with_capacity(n_cols.min(1 << 12));
        for _ in 0..n_cols {
            let col_name = r.get_str()?;
            let ty = tag_type(r.get_u8()?)?;
            let nullable = r.get_u8()? != 0;
            let mut def = ColumnDef::new(col_name, ty);
            def.nullable = nullable;
            defs.push(def);
        }
        let row_count = r.get_usize()?;
        let mut columns = Vec::with_capacity(n_cols.min(1 << 12));
        for _ in 0..n_cols {
            let col = decode_column(&mut r)?;
            if col.len() != row_count {
                return Err(StorageError::Corrupt(format!(
                    "table '{name}': column has {} rows, expected {row_count}",
                    col.len()
                )));
            }
            columns.push(col);
        }
        let table = Table::from_columns(Schema::new(defs), columns)?;
        tables.push(SnapshotTable { name, version, table: Arc::new(table) });
    }
    let n_sections = r.get_usize()?;
    let mut sections = Vec::with_capacity(n_sections.min(1 << 12));
    for _ in 0..n_sections {
        let name = r.get_str()?;
        let data = r.get_bytes()?;
        sections.push((name, data));
    }
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt("trailing bytes after snapshot payload".into()));
    }
    Ok(SnapshotData { ddl_version, tables, sections })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("score", DataType::Double),
            ColumnDef::new("label", DataType::Varchar),
            ColumnDef::new("flag", DataType::Bool),
            ColumnDef::new("day", DataType::Date),
        ]);
        let mut t = Table::empty(schema);
        t.append_row(vec![
            Value::Int(1),
            Value::Double(1.5),
            Value::Str("a".into()),
            Value::Bool(true),
            Value::Date(crate::Date(19000)),
        ])
        .unwrap();
        t.append_row(vec![Value::Int(2), Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn snapshot_round_trips_tables_and_sections() {
        let snap = SnapshotData {
            ddl_version: 7,
            tables: vec![SnapshotTable {
                name: "t".into(),
                version: 3,
                table: Arc::new(sample_table()),
            }],
            sections: vec![("idx".into(), vec![1, 2, 3]), ("empty".into(), Vec::new())],
        };
        let bytes = encode_snapshot(&snap).unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.ddl_version, 7);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.tables[0].name, "t");
        assert_eq!(back.tables[0].version, 3);
        let orig = sample_table();
        let got = &back.tables[0].table;
        assert_eq!(got.row_count(), orig.row_count());
        for i in 0..orig.row_count() {
            assert_eq!(got.row(i), orig.row(i), "row {i}");
        }
        assert_eq!(back.sections, snap.sections);
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let snap = SnapshotData {
            ddl_version: 1,
            tables: vec![SnapshotTable {
                name: "t".into(),
                version: 0,
                table: Arc::new(sample_table()),
            }],
            sections: Vec::new(),
        };
        let mut bytes = encode_snapshot(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(decode_snapshot(&bytes), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode_snapshot(&SnapshotData::default()).unwrap();
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.ddl_version, 0);
        assert!(back.tables.is_empty());
        assert!(back.sections.is_empty());
    }
}
