//! Calendar dates stored as days since the Unix epoch (1970-01-01).
//!
//! Uses the standard civil-from-days / days-from-civil algorithms
//! (Howard Hinnant, "chrono-compatible low-level date algorithms") so no
//! external date crate is required.

use crate::error::StorageError;
use std::fmt;

/// A calendar date, internally the number of days since 1970-01-01
/// (negative for earlier dates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a `(year, month, day)` civil triple.
    ///
    /// Returns an error when the triple is not a real calendar date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Date, StorageError> {
        if !(1..=12).contains(&month) {
            return Err(StorageError::InvalidDate(format!("{year:04}-{month:02}-{day:02}")));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(StorageError::InvalidDate(format!("{year:04}-{month:02}-{day:02}")));
        }
        Ok(Date(days_from_civil(year, month, day)))
    }

    /// Parse an ISO `YYYY-MM-DD` literal.
    pub fn parse(s: &str) -> Result<Date, StorageError> {
        let err = || StorageError::InvalidDate(s.to_string());
        let bytes = s.as_bytes();
        // Accept exactly YYYY-MM-DD (4-2-2 digits).
        if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
            return Err(err());
        }
        let year: i32 = s[0..4].parse().map_err(|_| err())?;
        let month: u32 = s[5..7].parse().map_err(|_| err())?;
        let day: u32 = s[8..10].parse().map_err(|_| err())?;
        Date::from_ymd(year, month, day)
    }

    /// Decompose into a `(year, month, day)` civil triple.
    pub fn ymd(&self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Days since the epoch (the raw representation).
    pub fn days(&self) -> i32 {
        self.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01 for a civil date.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Hinnant's `civil_from_days`: civil date for days since 1970-01-01.
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["2010-03-24", "2011-01-01", "1969-12-31", "2000-02-29", "2024-02-29"] {
            let d = Date::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed_literals() {
        for s in
            ["2010-3-24", "2010/03/24", "20100324", "2010-13-01", "2010-02-30", "abcd-ef-gh", ""]
        {
            assert!(Date::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn rejects_non_leap_feb_29() {
        assert!(Date::parse("2023-02-29").is_err());
        assert!(Date::parse("1900-02-29").is_err()); // century non-leap
        assert!(Date::parse("2000-02-29").is_ok()); // 400-year leap
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::parse("2010-03-24").unwrap();
        let b = Date::parse("2010-12-02").unwrap();
        let c = Date::parse("2011-01-01").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn days_round_trip_over_range() {
        // Every 97 days across ±100 years round-trips through civil form.
        let mut day = -36524;
        while day < 36524 {
            let d = Date(day);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap().days(), day);
            day += 97;
        }
    }
}
